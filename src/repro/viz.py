"""Terminal renderings of the paper's figures (word clouds, curves, graphs).

Everything here is plain-text: the repository is meant to run headless, so
the figures are rendered as ASCII (sparklines, proportional bars, aligned
tables).  Benches and examples use these to print the same *content* the
paper's figures display.
"""

from __future__ import annotations

import numpy as np

from .core.diffusion import CommunityDiffusionGraph
from .core.influence import PentagonEmbedding

_SPARK_LEVELS = " .:-=+*#%@"


class VizError(ValueError):
    """Raised for invalid rendering inputs."""


def sparkline(values: np.ndarray | list[float], width: int | None = None) -> str:
    """Render a series as a one-line density sparkline.

    ``width`` resamples the series by block-averaging; ``None`` keeps one
    character per value.
    """
    series = np.asarray(values, dtype=np.float64)
    if series.size == 0:
        raise VizError("cannot sparkline an empty series")
    if width is not None:
        if width <= 0:
            raise VizError("width must be positive")
        chunks = np.array_split(series, min(width, series.size))
        series = np.asarray([chunk.mean() for chunk in chunks])
    low, high = series.min(), series.max()
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * series.size
    levels = ((series - low) / span * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[level] for level in levels)


def word_cloud(words: list[tuple[str, float]], columns: int = 4) -> str:
    """Render a Fig.-8 style word cloud: weight-scaled uppercase emphasis.

    The heaviest words are rendered in UPPERCASE with a weight marker;
    lighter words in lowercase — a text stand-in for font size.
    """
    if not words:
        raise VizError("cannot render an empty word cloud")
    if columns <= 0:
        raise VizError("columns must be positive")
    peak = max(weight for _, weight in words) or 1.0
    cells = []
    for token, weight in words:
        ratio = weight / peak
        if ratio > 0.66:
            cells.append(f"[{token.upper()}]")
        elif ratio > 0.33:
            cells.append(f" {token.capitalize()} ")
        else:
            cells.append(f"  {token.lower()}  ")
    width = max(len(cell) for cell in cells)
    lines = []
    for start in range(0, len(cells), columns):
        row = cells[start : start + columns]
        lines.append(" ".join(cell.ljust(width) for cell in row))
    return "\n".join(lines)


def bar_chart(
    labels: list[str], values: np.ndarray | list[float], width: int = 40
) -> str:
    """Horizontal proportional bar chart with value annotations."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != len(values):
        raise VizError("labels and values must have equal length")
    if len(labels) == 0:
        raise VizError("cannot render an empty bar chart")
    peak = values.max() if values.max() > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.4g}")
    return "\n".join(lines)


def diffusion_graph_summary(
    graph: CommunityDiffusionGraph, topic_label: str | None = None
) -> str:
    """Fig.-5 text rendering: pie-node interests, timelines, top edges."""
    label = topic_label or f"topic {graph.topic}"
    lines = [f"Community-level diffusion of {label}"]
    for position, community in enumerate(graph.communities):
        pie = ", ".join(
            f"k{topic}:{weight:.3f}" for topic, weight in graph.top_topics[position]
        )
        timeline = sparkline(graph.timelines[position])
        lines.append(
            f"  C{community:<3} interest={graph.interest[position]:.4f}  "
            f"pie[{pie}]"
        )
        lines.append(f"       timeline |{timeline}|")
    lines.append("  strongest influence edges:")
    for edge in graph.edges[:8]:
        lines.append(
            f"    C{edge.source} -> C{edge.target}  zeta={edge.strength:.3e}"
        )
    return "\n".join(lines)


def pentagon_summary(embedding: PentagonEmbedding, top_users: int = 10) -> str:
    """Fig.-16 text rendering: corner communities + most influential users."""
    lines = [
        f"Influential communities at topic {embedding.topic}: "
        + ", ".join(f"C{c}" for c in embedding.corner_communities)
        + " (+ other)"
    ]
    order = np.argsort(embedding.user_scores)[::-1][:top_users]
    for rank, user_index in enumerate(order, start=1):
        x, y = embedding.positions[user_index]
        corner = int(embedding.weights[user_index].argmax())
        corner_name = (
            f"C{embedding.corner_communities[corner]}" if corner < 4 else "other"
        )
        lines.append(
            f"  #{rank:<2} user@({x:+.2f},{y:+.2f}) "
            f"score={embedding.user_scores[user_index]:.3f} main={corner_name}"
        )
    return "\n".join(lines)


def curve_table(
    x_values: list[int] | np.ndarray,
    series: dict[str, np.ndarray],
    x_label: str = "x",
) -> str:
    """Aligned multi-series table (the text form of Figs. 7, 9, 11...)."""
    if not series:
        raise VizError("need at least one series")
    x_values = list(x_values)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise VizError(f"series {name!r} length mismatch")
    names = list(series)
    header = [x_label] + names
    rows = [header]
    for idx, x in enumerate(x_values):
        rows.append([str(x)] + [f"{series[name][idx]:.4f}" for name in names])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) for row in rows
    )
