"""Synthetic Weibo-like corpus generator (planted COLD process).

The paper evaluates on two crawled Sina Weibo datasets which are not
redistributable.  This module substitutes them with a generator that *plants*
ground-truth COLD parameters (``pi``, ``theta``, ``phi``, ``psi``, ``eta``)
and runs the paper's generative process (Algorithm 1) forward to produce a
:class:`~repro.datasets.corpus.SocialCorpus`.

The substitution preserves everything the evaluation needs:

* short, single-topic posts with community-dependent temporal dynamics;
* a sparse directed interaction network with block (community) structure;
* known ground truth, which additionally enables recovery tests that the
  original evaluation could not run.

Link generation note: Algorithm 1 draws a Bernoulli for every ordered user
pair, which is O(U^2).  Real interaction networks are sparse, so we instead
draw a per-user out-degree and sample each link's endpoint communities and
target user proportionally to the same ``pi`` / ``eta`` factors.  This keeps
the planted block structure (the quantity COLD estimates) while producing a
sparse network directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from pathlib import Path

from .._compat import keyword_only
from .corpus import Post, SocialCorpus
from .packed import PackedCorpus, PackedCorpusWriter
from .vocabulary import Vocabulary

#: Thematic word banks used to label synthetic topics with readable tokens.
#: Loosely mirrors the communities surfaced in the paper's Figure 5 (movie,
#: sports, music, literature, traffic, finance...).
THEMED_WORDS: dict[str, list[str]] = {
    "movie": [
        "film", "box_office", "director", "premiere", "cinema", "trailer",
        "actor", "actress", "sequel", "screening", "oscar", "blockbuster",
        "journey_west", "ticket", "studio", "script", "scene", "cast",
        "release", "critic",
    ],
    "sports": [
        "match", "league", "goal", "coach", "team", "season", "playoff",
        "champion", "score", "stadium", "transfer", "injury", "derby",
        "final", "training", "referee", "fans", "tournament", "record",
        "medal",
    ],
    "music": [
        "album", "concert", "singer", "tour", "single", "chart", "band",
        "lyrics", "stage", "festival", "melody", "studio_session", "vocal",
        "debut", "encore", "playlist", "grammy", "acoustic", "remix",
        "soundtrack",
    ],
    "literature": [
        "novel", "author", "poem", "chapter", "publisher", "essay",
        "bookstore", "manuscript", "translation", "prose", "anthology",
        "fiction", "memoir", "critique", "serial", "classic", "verse",
        "preface", "paperback", "librarian",
    ],
    "traffic": [
        "road", "accident", "congestion", "highway", "detour", "police",
        "signal", "lane", "rush_hour", "closure", "subway", "bridge",
        "violation", "speed_limit", "crosswalk", "bus_route", "parking",
        "toll", "checkpoint", "commute",
    ],
    "finance": [
        "market", "stock", "investor", "earnings", "dividend", "index",
        "portfolio", "bond", "rally", "regulator", "ipo", "futures",
        "hedge", "liquidity", "valuation", "broker", "yield", "margin",
        "takeover", "audit",
    ],
    "technology": [
        "startup", "gadget", "smartphone", "chip", "software", "update",
        "launch_event", "battery", "platform", "cloud", "app", "beta",
        "patent", "hardware", "network", "algorithm", "interface", "sensor",
        "firmware", "developer",
    ],
    "food": [
        "restaurant", "recipe", "dumpling", "noodle", "chef", "banquet",
        "spicy", "dessert", "tea_house", "street_food", "hotpot", "menu",
        "tasting", "cuisine", "snack", "festival_food", "kitchen", "flavor",
        "ingredient", "delicacy",
    ],
    "travel": [
        "itinerary", "flight", "hotel", "scenery", "passport", "beach",
        "mountain", "museum_visit", "tour_guide", "luggage", "visa",
        "landmark", "holiday", "resort", "backpack", "souvenir", "cruise",
        "temple", "roadtrip", "homestay",
    ],
    "news": [
        "headline", "report", "press", "statement", "breaking", "interview",
        "coverage", "editorial", "bulletin", "correspondent", "summit",
        "policy", "announcement", "briefing", "broadcast", "scandal",
        "investigation", "spokesperson", "dispatch", "feature",
    ],
}


class SyntheticError(ValueError):
    """Raised for invalid synthetic-corpus configurations."""


@keyword_only
@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the planted COLD process.

    The defaults produce a small corpus suitable for unit tests; the
    :func:`dataset1` / :func:`dataset2` presets mirror (at laptop scale) the
    paper's two Weibo datasets.
    """

    num_users: int = 60
    num_communities: int = 4
    num_topics: int = 6
    num_time_slices: int = 24
    vocab_size: int = 400
    mean_posts_per_user: float = 8.0
    mean_words_per_post: float = 9.0
    mean_links_per_user: float = 5.0
    #: Dirichlet concentration of user memberships pi_i.  Small -> users
    #: concentrate on one or two communities (matches Fig 16's observation).
    membership_concentration: float = 0.15
    #: Dirichlet concentration of community interests theta_c.  Small ->
    #: each community has a few dominant topics plus a long tail.
    interest_concentration: float = 0.25
    #: Dirichlet concentration of topic-word distributions phi_k.
    word_concentration: float = 0.05
    #: Number of anchor words per topic boosted in phi_k (makes topics
    #: separable and word clouds readable).
    anchors_per_topic: int = 12
    #: Extra probability mass concentrated on the anchors.
    anchor_strength: float = 0.55
    #: Range of temporal bumps per (topic, community) pair: psi_kc is a
    #: mixture of 1..max_temporal_modes discretised Gaussians, yielding the
    #: multimodal dynamics §3.3 argues for.
    max_temporal_modes: int = 3
    #: Width of each temporal bump, as a fraction of the time span.
    temporal_width: float = 0.06
    #: Uniform smoothing mass of psi (keeps every slice reachable).
    temporal_floor: float = 0.05
    #: Within-community link probability scale (diagonal of eta).
    eta_within: float = 0.7
    #: Cross-community link probability scale (off-diagonal of eta).
    eta_between: float = 0.08
    #: Use the themed word banks for topic anchors (human-readable tokens).
    themed: bool = False
    seed: int = 0

    def validate(self) -> None:
        positive_ints = {
            "num_users": self.num_users,
            "num_communities": self.num_communities,
            "num_topics": self.num_topics,
            "num_time_slices": self.num_time_slices,
            "vocab_size": self.vocab_size,
        }
        for name, value in positive_ints.items():
            if value <= 0:
                raise SyntheticError(f"{name} must be positive, got {value}")
        if self.num_users < 2:
            raise SyntheticError("need at least 2 users to form links")
        if self.anchors_per_topic * self.num_topics > self.vocab_size:
            raise SyntheticError(
                "vocab_size too small for the requested anchors_per_topic"
            )
        for name in (
            "mean_posts_per_user",
            "mean_words_per_post",
            "membership_concentration",
            "interest_concentration",
            "word_concentration",
            "temporal_width",
        ):
            if getattr(self, name) <= 0:
                raise SyntheticError(f"{name} must be positive")
        if self.mean_links_per_user < 0:
            raise SyntheticError("mean_links_per_user must be >= 0")
        if not 0 < self.eta_within <= 1 or not 0 <= self.eta_between <= 1:
            raise SyntheticError("eta_within/eta_between must lie in (0, 1]")


@dataclass
class GroundTruth:
    """The planted parameters, in the paper's notation.

    All arrays are proper (rows sum to one where applicable):

    * ``pi``    — ``(U, C)`` user community memberships;
    * ``theta`` — ``(C, K)`` community topic interests;
    * ``phi``   — ``(K, V)`` topic word distributions;
    * ``psi``   — ``(K, C, T)`` community-specific temporal distributions;
    * ``eta``   — ``(C, C)`` inter-community link probabilities;
    * ``post_communities`` / ``post_topics`` — the latent ``c_ij`` / ``z_ij``
      actually drawn for each generated post (aligned with corpus.posts).
    """

    pi: np.ndarray
    theta: np.ndarray
    phi: np.ndarray
    psi: np.ndarray
    eta: np.ndarray
    post_communities: np.ndarray = field(default_factory=lambda: np.zeros(0, int))
    post_topics: np.ndarray = field(default_factory=lambda: np.zeros(0, int))

    @property
    def num_communities(self) -> int:
        return self.pi.shape[1]

    @property
    def num_topics(self) -> int:
        return self.theta.shape[1]

    def zeta(self) -> np.ndarray:
        """Planted topic-sensitive influence, Eq. (4): ``(K, C, C)``."""
        theta_k_c = self.theta.T  # (K, C)
        return theta_k_c[:, :, None] * theta_k_c[:, None, :] * self.eta[None, :, :]


def _sample_simplex(rng: np.random.Generator, concentration: float, shape: tuple[int, ...]) -> np.ndarray:
    """Rows of symmetric-Dirichlet draws with the trailing axis normalised."""
    draws = rng.gamma(concentration, 1.0, size=shape)
    draws = np.maximum(draws, 1e-12)
    return draws / draws.sum(axis=-1, keepdims=True)


def _plant_phi(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Topic-word distributions with disjoint boosted anchor blocks."""
    phi = _sample_simplex(
        rng, config.word_concentration, (config.num_topics, config.vocab_size)
    )
    anchors = config.anchors_per_topic
    for k in range(config.num_topics):
        block = slice(k * anchors, (k + 1) * anchors)
        boost = rng.dirichlet(np.full(anchors, 2.0)) * config.anchor_strength
        phi[k] *= 1.0 - config.anchor_strength
        phi[k, block] += boost
    return phi / phi.sum(axis=1, keepdims=True)


def _plant_psi(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Multimodal (topic, community)-specific temporal distributions."""
    T = config.num_time_slices
    grid = np.arange(T, dtype=np.float64)
    width = max(config.temporal_width * T, 0.5)
    psi = np.zeros((config.num_topics, config.num_communities, T))
    for k in range(config.num_topics):
        for c in range(config.num_communities):
            modes = rng.integers(1, config.max_temporal_modes + 1)
            density = np.zeros(T)
            for _ in range(modes):
                center = rng.uniform(0, T - 1)
                weight = rng.uniform(0.4, 1.0)
                density += weight * np.exp(-0.5 * ((grid - center) / width) ** 2)
            density += config.temporal_floor * density.max() + 1e-9
            psi[k, c] = density / density.sum()
    return psi


def _plant_eta(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Assortative block link probabilities with mild random variation."""
    C = config.num_communities
    eta = rng.uniform(0.5, 1.0, size=(C, C)) * config.eta_between
    diagonal = rng.uniform(0.8, 1.0, size=C) * config.eta_within
    np.fill_diagonal(eta, diagonal)
    return np.clip(eta, 1e-6, 1.0)


def plant_parameters(config: SyntheticConfig, rng: np.random.Generator) -> GroundTruth:
    """Draw the planted parameters of the generative process."""
    pi = _sample_simplex(
        rng, config.membership_concentration, (config.num_users, config.num_communities)
    )
    theta = _sample_simplex(
        rng, config.interest_concentration, (config.num_communities, config.num_topics)
    )
    phi = _plant_phi(config, rng)
    psi = _plant_psi(config, rng)
    eta = _plant_eta(config, rng)
    return GroundTruth(pi=pi, theta=theta, phi=phi, psi=psi, eta=eta)


def _themed_vocabulary(config: SyntheticConfig) -> Vocabulary:
    """Vocabulary whose anchor ids carry thematic tokens, rest are generic."""
    tokens: list[str] = []
    themes = list(THEMED_WORDS)
    anchors = config.anchors_per_topic
    for k in range(config.num_topics):
        theme = themes[k % len(themes)]
        bank = THEMED_WORDS[theme]
        for a in range(anchors):
            word = bank[a % len(bank)]
            suffix = "" if a < len(bank) else f"_{a // len(bank)}"
            tokens.append(f"{word}{suffix}" if suffix else word)
    # De-duplicate across topics that share a theme.
    seen: dict[str, int] = {}
    for idx, token in enumerate(tokens):
        if token in seen:
            tokens[idx] = f"{token}_{idx}"
        seen[tokens[idx]] = idx
    for v in range(len(tokens), config.vocab_size):
        tokens.append(f"term{v:05d}")
    return Vocabulary(tokens).freeze()


def _generic_vocabulary(config: SyntheticConfig) -> Vocabulary:
    return Vocabulary(f"term{v:05d}" for v in range(config.vocab_size)).freeze()


def generate_posts(
    config: SyntheticConfig, truth: GroundTruth, rng: np.random.Generator
) -> tuple[list[Post], np.ndarray, np.ndarray]:
    """Run steps 3(b) of Algorithm 1 for every user."""
    posts: list[Post] = []
    communities: list[int] = []
    topics: list[int] = []
    C, K = config.num_communities, config.num_topics
    for user in range(config.num_users):
        num_posts = max(1, int(rng.poisson(config.mean_posts_per_user)))
        cs = rng.choice(C, size=num_posts, p=truth.pi[user])
        for c in cs:
            k = rng.choice(K, p=truth.theta[c])
            length = max(1, int(rng.poisson(config.mean_words_per_post)))
            words = rng.choice(config.vocab_size, size=length, p=truth.phi[k])
            t = rng.choice(config.num_time_slices, p=truth.psi[k, c])
            posts.append(
                Post(author=user, words=tuple(int(w) for w in words), timestamp=int(t))
            )
            communities.append(int(c))
            topics.append(int(k))
    return posts, np.asarray(communities), np.asarray(topics)


def generate_links(
    config: SyntheticConfig, truth: GroundTruth, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Sparse link sampling preserving the planted block structure.

    For each link of user ``i``: draw source community ``s ~ pi_i``, then a
    destination community ``c' ~ eta_{s,.}`` (normalised), then a target user
    ``i' ~ pi_{.,c'}`` (normalised over users).  This is the sparse analogue
    of Algorithm 1 step 3(c).
    """
    C = config.num_communities
    # Per-community user-selection weights: column-normalised memberships.
    column_weights = truth.pi / truth.pi.sum(axis=0, keepdims=True)
    target_cdfs = _target_cdfs(column_weights)
    links: set[tuple[int, int]] = set()
    for user in range(config.num_users):
        degree = int(rng.poisson(config.mean_links_per_user))
        for _ in range(degree):
            s = rng.choice(C, p=truth.pi[user])
            row = truth.eta[s] / truth.eta[s].sum()
            c_dst = rng.choice(C, p=row)
            target = _draw_target(target_cdfs, c_dst, rng)
            if target != user:
                links.add((user, target))
    return sorted(links)


def _target_cdfs(column_weights: np.ndarray) -> np.ndarray:
    """Per-community target-user CDFs, precomputed once.

    ``rng.choice(num_users, p=w)`` rebuilds ``w.cumsum()`` on every call —
    O(num_users) per *link*, which turns the link pass quadratic in users.
    Hoisting the cumsum keeps each draw O(log num_users).  The arithmetic
    (cumsum, then divide by the last entry) replicates ``Generator.choice``
    exactly, so draws are bit-identical to the historical per-call path.
    """
    cdfs = column_weights.cumsum(axis=0)
    cdfs /= cdfs[-1, :]
    return cdfs


def _draw_target(target_cdfs: np.ndarray, community: int, rng) -> int:
    """One target-user draw, bit-identical to ``rng.choice(U, p=w_c)``."""
    return int(
        target_cdfs[:, community].searchsorted(rng.random(), side="right")
    )


def generate_corpus(
    config: SyntheticConfig | None = None, seed: int | None = None
) -> tuple[SocialCorpus, GroundTruth]:
    """Generate a corpus and its planted ground truth.

    ``seed`` overrides ``config.seed`` when given, which keeps call sites
    that sweep seeds readable.
    """
    config = config or SyntheticConfig()
    config.validate()
    if seed is not None:
        config = replace(config, seed=seed)
    rng = np.random.default_rng(config.seed)
    truth = plant_parameters(config, rng)
    posts, post_communities, post_topics = generate_posts(config, truth, rng)
    links = generate_links(config, truth, rng)
    vocabulary = (
        _themed_vocabulary(config) if config.themed else _generic_vocabulary(config)
    )
    corpus = SocialCorpus(
        num_users=config.num_users,
        num_time_slices=config.num_time_slices,
        posts=posts,
        links=links,
        vocabulary=vocabulary,
    )
    truth.post_communities = post_communities
    truth.post_topics = post_topics
    return corpus, truth


def generate_packed_corpus(
    config: SyntheticConfig | None = None,
    path: str | Path = "corpus.coldpack",
    seed: int | None = None,
    chunk_tokens: int = 1 << 20,
    keep_latents: bool = False,
) -> tuple[PackedCorpus, GroundTruth]:
    """Stream the planted COLD process to a ``.coldpack`` file.

    Runs the *same RNG call sequence* as :func:`generate_corpus` — plant,
    then per-user posts, then per-user links — but streams every post to
    a :class:`~repro.datasets.packed.PackedCorpusWriter` in
    ``chunk_tokens``-sized flushes instead of materialising ``Post``
    objects, so peak RSS is bounded by the planted parameter tensors
    (O(users x communities)) regardless of how many tokens are
    generated.  At equal seed the resulting corpus is bit-identical to
    the in-RAM path: same posts, same links, same vocabulary.

    Links are deduplicated per user, which equals the in-RAM path's
    global dedup because every link's source *is* the current user, and
    ``sorted(links)`` orders by source first — so emitting each user's
    sorted link set in user order reproduces the global sorted order.

    ``keep_latents=True`` records the drawn per-post community/topic
    latents on the returned :class:`GroundTruth` (two O(posts) arrays —
    leave it off at million-user scale).
    """
    config = config or SyntheticConfig()
    config.validate()
    if seed is not None:
        config = replace(config, seed=seed)
    rng = np.random.default_rng(config.seed)
    truth = plant_parameters(config, rng)
    vocabulary = (
        _themed_vocabulary(config) if config.themed else _generic_vocabulary(config)
    )
    C, K = config.num_communities, config.num_topics
    communities: list[int] = []
    topics: list[int] = []
    writer = PackedCorpusWriter(
        path,
        num_users=config.num_users,
        num_time_slices=config.num_time_slices,
        vocab_size=config.vocab_size,
        vocabulary=vocabulary,
        chunk_tokens=chunk_tokens,
    )
    try:
        # Posts pass — RNG calls exactly as generate_posts().
        for user in range(config.num_users):
            num_posts = max(1, int(rng.poisson(config.mean_posts_per_user)))
            cs = rng.choice(C, size=num_posts, p=truth.pi[user])
            for c in cs:
                k = rng.choice(K, p=truth.theta[c])
                length = max(1, int(rng.poisson(config.mean_words_per_post)))
                words = rng.choice(config.vocab_size, size=length, p=truth.phi[k])
                t = rng.choice(config.num_time_slices, p=truth.psi[k, c])
                writer.add_post(user, int(t), words)
                if keep_latents:
                    communities.append(int(c))
                    topics.append(int(k))
        # Links pass — RNG calls exactly as generate_links().
        column_weights = truth.pi / truth.pi.sum(axis=0, keepdims=True)
        target_cdfs = _target_cdfs(column_weights)
        for user in range(config.num_users):
            degree = int(rng.poisson(config.mean_links_per_user))
            user_links: set[tuple[int, int]] = set()
            for _ in range(degree):
                s = rng.choice(C, p=truth.pi[user])
                row = truth.eta[s] / truth.eta[s].sum()
                c_dst = rng.choice(C, p=row)
                target = _draw_target(target_cdfs, c_dst, rng)
                if target != user:
                    user_links.add((user, target))
            for src, dst in sorted(user_links):
                writer.add_link(src, dst)
        packed_path = writer.finalize()
    except BaseException:
        writer.abort()
        raise
    if keep_latents:
        truth.post_communities = np.asarray(communities)
        truth.post_topics = np.asarray(topics)
    return PackedCorpus.open(packed_path), truth


def dataset1(scale: float = 1.0, seed: int = 11) -> tuple[SocialCorpus, GroundTruth]:
    """Laptop-scale analogue of the paper's Weibo dataset 1.

    The paper's dataset 1 has 53K users / 11M posts / 2.7M links over a
    three-month hourly grid.  We keep the *ratios* (about 200 posts and 50
    links per user, short posts) at ``scale``-adjustable laptop size.
    """
    config = SyntheticConfig(
        num_users=max(20, int(120 * scale)),
        num_communities=6,
        num_topics=10,
        num_time_slices=48,
        vocab_size=600,
        mean_posts_per_user=12.0,
        mean_words_per_post=8.0,
        mean_links_per_user=6.0,
        themed=True,
        seed=seed,
    )
    return generate_corpus(config)


def benchmark_world(
    seed: int = 3, **overrides: object
) -> tuple[SocialCorpus, GroundTruth]:
    """The calibrated evaluation world used by the benchmark suite.

    Chosen (see EXPERIMENTS.md) so that every signal the paper relies on is
    present and the method ordering is identifiable at laptop scale: sharp
    overlapping memberships, separable topics over a sparse vocabulary,
    multimodal community-specific dynamics, and an assortative network.
    """
    config = SyntheticConfig(
        num_users=100,
        num_communities=4,
        num_topics=8,
        num_time_slices=24,
        vocab_size=4000,
        anchors_per_topic=120,
        anchor_strength=0.75,
        mean_posts_per_user=25.0,
        mean_words_per_post=8.0,
        mean_links_per_user=12.0,
        membership_concentration=0.08,
        interest_concentration=0.2,
        seed=seed,
    )
    if overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    return generate_corpus(config)


def dataset2(scale: float = 1.0, seed: int = 23) -> tuple[SocialCorpus, GroundTruth]:
    """Laptop-scale analogue of the paper's (larger, sparser) dataset 2."""
    config = SyntheticConfig(
        num_users=max(40, int(400 * scale)),
        num_communities=8,
        num_topics=12,
        num_time_slices=48,
        vocab_size=900,
        mean_posts_per_user=5.0,
        mean_words_per_post=8.0,
        mean_links_per_user=4.0,
        themed=False,
        seed=seed,
    )
    return generate_corpus(config)
