"""Train/test splitting utilities for the paper's cross-validation protocols.

Two protocols appear in §6:

* **Post splits** (perplexity, time-stamp prediction): "at each time
  interval, 80% of the posts as the train set, while the remaining 20% posts
  and all links as test set" — i.e. the split is stratified by time slice so
  every slice keeps training mass.
* **Link splits** (link prediction): 20% of positive links held out per
  fold, evaluated against a random 1% sample of negative links; models train
  on the remaining links and all posts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .corpus import SocialCorpus


class SplitError(ValueError):
    """Raised for invalid split parameters."""


@dataclass(frozen=True)
class PostSplit:
    """One fold of a post-level split: corpora sharing users/links/vocab."""

    train: SocialCorpus
    test: SocialCorpus


@dataclass(frozen=True)
class LinkSplit:
    """One fold of a link-level split.

    ``train`` keeps all posts and the training links.  ``held_out_links``
    are the positive test links; ``negative_links`` is the random sample of
    non-links used as negatives in the AUC.
    """

    train: SocialCorpus
    held_out_links: list[tuple[int, int]]
    negative_links: list[tuple[int, int]]


def _fold_bounds(num_items: int, num_folds: int) -> list[np.ndarray]:
    """Indices 0..num_items-1 partitioned into num_folds near-equal chunks."""
    return [chunk for chunk in np.array_split(np.arange(num_items), num_folds)]


def post_splits(
    corpus: SocialCorpus, num_folds: int = 5, seed: int = 0
) -> list[PostSplit]:
    """K-fold post splits stratified by time slice.

    Within every time slice, posts are shuffled once and dealt into
    ``num_folds`` test chunks, so each fold tests on ~1/num_folds of each
    slice's posts and trains on the rest (plus all links).
    """
    if num_folds < 2:
        raise SplitError(f"num_folds must be >= 2, got {num_folds}")
    rng = np.random.default_rng(seed)
    by_slice: dict[int, list[int]] = {}
    for idx, post in enumerate(corpus.posts):
        by_slice.setdefault(post.timestamp, []).append(idx)

    fold_test: list[list[int]] = [[] for _ in range(num_folds)]
    for slice_posts in by_slice.values():
        order = rng.permutation(len(slice_posts))
        shuffled = [slice_posts[int(i)] for i in order]
        for fold, chunk in enumerate(_fold_bounds(len(shuffled), num_folds)):
            fold_test[fold].extend(shuffled[int(i)] for i in chunk)

    splits: list[PostSplit] = []
    all_posts = set(range(corpus.num_posts))
    for test_indices in fold_test:
        test_set = set(test_indices)
        train_indices = sorted(all_posts - test_set)
        if not train_indices or not test_indices:
            raise SplitError(
                "a fold ended up empty; corpus too small for this many folds"
            )
        splits.append(
            PostSplit(
                train=corpus.subset_posts(train_indices),
                test=corpus.subset_posts(sorted(test_indices)),
            )
        )
    return splits


def sample_negative_links(
    corpus: SocialCorpus,
    num_samples: int,
    rng: np.random.Generator,
    max_attempts_factor: int = 50,
) -> list[tuple[int, int]]:
    """Uniformly sample ordered user pairs that are not positive links.

    Rejection sampling; raises if the graph is so dense that the requested
    count cannot plausibly be found.
    """
    if num_samples <= 0:
        return []
    if corpus.num_negative_links < num_samples:
        raise SplitError(
            f"requested {num_samples} negatives but only "
            f"{corpus.num_negative_links} exist"
        )
    positives = corpus.link_set()
    found: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = max_attempts_factor * num_samples
    while len(found) < num_samples and attempts < max_attempts:
        attempts += 1
        src = int(rng.integers(corpus.num_users))
        dst = int(rng.integers(corpus.num_users))
        if src == dst:
            continue
        pair = (src, dst)
        if pair in positives or pair in found:
            continue
        found.add(pair)
    if len(found) < num_samples:
        raise SplitError("could not sample enough negative links")
    return sorted(found)


def link_splits(
    corpus: SocialCorpus,
    num_folds: int = 5,
    negative_fraction: float = 0.01,
    seed: int = 0,
) -> list[LinkSplit]:
    """K-fold link splits following the §6.2 link-prediction protocol.

    Each fold holds out ~1/num_folds of positive links and pairs them with a
    ``negative_fraction`` sample of the non-links (the paper uses 1%, we use
    the same fraction subject to a floor of the positive count so AUC stays
    well-conditioned on tiny graphs).
    """
    if num_folds < 2:
        raise SplitError(f"num_folds must be >= 2, got {num_folds}")
    if corpus.num_links < num_folds:
        raise SplitError("fewer links than folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(corpus.num_links)
    splits: list[LinkSplit] = []
    for chunk in _fold_bounds(corpus.num_links, num_folds):
        held_idx = set(int(order[int(i)]) for i in chunk)
        train_idx = [i for i in range(corpus.num_links) if i not in held_idx]
        held_links = [corpus.links[i] for i in sorted(held_idx)]
        num_negatives = max(
            len(held_links),
            int(round(negative_fraction * corpus.num_negative_links)),
        )
        num_negatives = min(num_negatives, corpus.num_negative_links)
        negatives = sample_negative_links(corpus, num_negatives, rng)
        splits.append(
            LinkSplit(
                train=corpus.subset_links(train_idx),
                held_out_links=held_links,
                negative_links=negatives,
            )
        )
    return splits
