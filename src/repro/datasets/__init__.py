"""Data substrate: corpora, vocabularies, synthetic generation, splits, I/O.

This package replaces the paper's proprietary Sina Weibo crawls with a
planted-parameter generator (see DESIGN.md §2 for the substitution
rationale) and provides the containers and splitting protocols every model
and benchmark in the repository consumes.
"""

from .cascades import (
    CascadeError,
    RetweetTuple,
    generate_retweet_tuples,
    retweet_training_events,
    split_tuples,
)
from .corpus import CorpusError, Post, SocialCorpus
from .io import (
    CorpusIOError,
    load_corpus,
    load_retweet_tuples,
    save_corpus,
    save_retweet_tuples,
)
from .packed import (
    PackedChecksumError,
    PackedCorpus,
    PackedCorpusError,
    PackedCorpusWriter,
    PackedFormatError,
    PackedVersionError,
    write_packed,
)
from .splits import (
    LinkSplit,
    PostSplit,
    SplitError,
    link_splits,
    post_splits,
    sample_negative_links,
)
from .stream import CorpusStreamBuilder, LinkEvent, PostEvent, StreamError
from .synthetic import (
    THEMED_WORDS,
    GroundTruth,
    SyntheticConfig,
    SyntheticError,
    benchmark_world,
    dataset1,
    dataset2,
    generate_corpus,
    generate_packed_corpus,
    plant_parameters,
)
from .vocabulary import Vocabulary, VocabularyError, build_vocabulary

__all__ = [
    "CascadeError",
    "CorpusError",
    "CorpusIOError",
    "CorpusStreamBuilder",
    "GroundTruth",
    "LinkEvent",
    "LinkSplit",
    "PackedChecksumError",
    "PackedCorpus",
    "PackedCorpusError",
    "PackedCorpusWriter",
    "PackedFormatError",
    "PackedVersionError",
    "Post",
    "PostEvent",
    "PostSplit",
    "RetweetTuple",
    "SocialCorpus",
    "SplitError",
    "StreamError",
    "SyntheticConfig",
    "SyntheticError",
    "THEMED_WORDS",
    "Vocabulary",
    "VocabularyError",
    "benchmark_world",
    "build_vocabulary",
    "dataset1",
    "dataset2",
    "generate_corpus",
    "generate_packed_corpus",
    "generate_retweet_tuples",
    "link_splits",
    "load_corpus",
    "load_retweet_tuples",
    "plant_parameters",
    "post_splits",
    "retweet_training_events",
    "sample_negative_links",
    "save_corpus",
    "save_retweet_tuples",
    "split_tuples",
    "write_packed",
]
