"""Corpus containers: posts, links, and the :class:`SocialCorpus` aggregate.

These are the observed inputs of the COLD model (paper §3.1, Table 1):

* a set of ``U`` users;
* per user, time-stamped short posts (bags of word ids over a vocabulary);
* a directed interaction network ``E`` where ``(i, i')`` means information
  flowed from ``i`` to ``i'`` (e.g. ``i'`` retweeted ``i``);
* a discretisation of the full time span into ``T`` slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vocabulary import Vocabulary


class CorpusError(ValueError):
    """Raised for structurally invalid corpora (bad ids, empty posts...)."""


class CorpusValidationError(CorpusError):
    """Raised when corpus *contents* fail validation: out-of-range word,
    user, or time ids; dangling link endpoints; negative counts.

    A subclass of :class:`CorpusError`, so existing ``except CorpusError``
    handlers keep working; ingest paths raise it at construction time so
    bad data fails loudly instead of crashing samplers with an
    ``IndexError`` deep in a sweep.
    """


@dataclass(frozen=True)
class Post:
    """One time-stamped post (paper's :math:`d_{ij}`).

    Attributes
    ----------
    author:
        User id of the author (paper's ``i``).
    words:
        Word ids of the post body, ``w_{ij1..ijL}``.  Order is irrelevant
        (bag of words) but preserved for round-tripping.
    timestamp:
        Discrete time-slice index ``t_{ij}`` in ``[0, T)``.
    """

    author: int
    words: tuple[int, ...]
    timestamp: int

    def __post_init__(self) -> None:
        if self.author < 0:
            raise CorpusValidationError(f"author id must be >= 0, got {self.author}")
        if self.timestamp < 0:
            raise CorpusValidationError(f"timestamp must be >= 0, got {self.timestamp}")
        if len(self.words) == 0:
            raise CorpusError("posts must contain at least one word")
        if any(w < 0 for w in self.words):
            raise CorpusValidationError("word ids must be >= 0")

    def __len__(self) -> int:
        return len(self.words)

    def word_counts(self) -> dict[int, int]:
        """Multiset of word ids: ``{v: n_{ij}^{(v)}}`` (Eq. 3's counts)."""
        counts: dict[int, int] = {}
        for w in self.words:
            counts[w] = counts.get(w, 0) + 1
        return counts


@dataclass
class SocialCorpus:
    """The full observed dataset: users, posts, links, and the time grid.

    Parameters
    ----------
    num_users:
        Number of users ``U``; user ids are ``0..U-1``.
    num_time_slices:
        Number of discrete time slices ``T``.
    posts:
        All posts (any order).  Post indices into this list are the canonical
        post ids used by samplers and splits.
    links:
        Directed positive interaction links ``(i, i')`` meaning content flows
        from ``i`` to ``i'``.  Stored deduplicated, in insertion order.
    vocabulary:
        Optional token mapping.  Models only need ``vocab_size``; keeping the
        mapping enables human-readable analysis output (word clouds).
    vocab_size:
        Size of the word-id space ``V``.  Derived from ``vocabulary`` when one
        is given.
    """

    num_users: int
    num_time_slices: int
    posts: list[Post] = field(default_factory=list)
    links: list[tuple[int, int]] = field(default_factory=list)
    vocabulary: Vocabulary | None = None
    vocab_size: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise CorpusError(f"num_users must be positive, got {self.num_users}")
        if self.num_time_slices <= 0:
            raise CorpusError(
                f"num_time_slices must be positive, got {self.num_time_slices}"
            )
        if self.vocabulary is not None:
            if len(self.vocabulary) == 0:
                raise CorpusError(
                    "supplied vocabulary is empty; omit it to derive "
                    "vocab_size from the posts"
                )
            if self.vocab_size not in (0, len(self.vocabulary)):
                raise CorpusError(
                    "vocab_size disagrees with the supplied vocabulary"
                )
            self.vocab_size = len(self.vocabulary)
        self._validate_posts()
        self.links = self._validate_links(self.links)

    def _validate_posts(self) -> None:
        # One pass building id columns, then vectorised range checks — on a
        # large ingest this replaces three Python comparisons per post with
        # three array comparisons, and the same maxima derive vocab_size.
        if not self.posts:
            return
        count = len(self.posts)
        authors = np.fromiter(
            (post.author for post in self.posts), np.int64, count=count
        )
        times = np.fromiter(
            (post.timestamp for post in self.posts), np.int64, count=count
        )
        word_maxima = np.fromiter(
            (max(post.words) for post in self.posts), np.int64, count=count
        )
        bad = authors >= self.num_users
        if bad.any():
            idx = int(np.argmax(bad))
            raise CorpusValidationError(
                f"post {idx}: author {int(authors[idx])} >= "
                f"num_users {self.num_users}"
            )
        bad = times >= self.num_time_slices
        if bad.any():
            idx = int(np.argmax(bad))
            raise CorpusValidationError(
                f"post {idx}: timestamp {int(times[idx])} >= "
                f"num_time_slices {self.num_time_slices}"
            )
        if self.vocab_size:
            bad = word_maxima >= self.vocab_size
            if bad.any():
                idx = int(np.argmax(bad))
                raise CorpusValidationError(
                    f"post {idx}: word id {int(word_maxima[idx])} >= "
                    f"vocab_size {self.vocab_size}"
                )
        else:
            self.vocab_size = 1 + int(word_maxima.max())

    def _validate_links(self, links: list[tuple[int, int]]) -> list[tuple[int, int]]:
        seen: set[tuple[int, int]] = set()
        unique: list[tuple[int, int]] = []
        for src, dst in links:
            if not (0 <= src < self.num_users and 0 <= dst < self.num_users):
                raise CorpusValidationError(
                    f"link ({src}, {dst}) has dangling endpoint: user ids must "
                    f"lie in [0, {self.num_users})"
                )
            if src == dst:
                raise CorpusError(f"self-link ({src}, {dst}) is not allowed")
            edge = (int(src), int(dst))
            if edge not in seen:
                seen.add(edge)
                unique.append(edge)
        return unique

    # -- sizes (paper Table 1 quantities) ------------------------------------

    @property
    def num_posts(self) -> int:
        """Total number of posts (sum of ``D_i``)."""
        return len(self.posts)

    @property
    def num_links(self) -> int:
        """Number of positive links (sum of ``E_i``)."""
        return len(self.links)

    @property
    def num_words(self) -> int:
        """Total word tokens in the corpus."""
        return sum(len(post) for post in self.posts)

    @property
    def num_negative_links(self) -> int:
        """``n_neg = U(U-1) - |E|`` — used for the lambda_0 prior rule."""
        return self.num_users * (self.num_users - 1) - self.num_links

    # -- views ----------------------------------------------------------------

    def posts_by_user(self) -> list[list[int]]:
        """Post indices grouped by author: ``result[i]`` lists user i's posts."""
        grouped: list[list[int]] = [[] for _ in range(self.num_users)]
        for idx, post in enumerate(self.posts):
            grouped[post.author].append(idx)
        return grouped

    def out_links(self) -> list[list[int]]:
        """``result[i]`` = users that i links to (i's 'followers' who
        retweeted i, i.e. potential spreaders of i's content)."""
        adjacency: list[list[int]] = [[] for _ in range(self.num_users)]
        for src, dst in self.links:
            adjacency[src].append(dst)
        return adjacency

    def in_links(self) -> list[list[int]]:
        """``result[i']`` = users whose content reached i'."""
        adjacency: list[list[int]] = [[] for _ in range(self.num_users)]
        for src, dst in self.links:
            adjacency[dst].append(src)
        return adjacency

    def link_array(self) -> np.ndarray:
        """Links as an ``(E, 2)`` int array (empty -> shape ``(0, 2)``)."""
        if not self.links:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(self.links, dtype=np.int64)

    def link_set(self) -> set[tuple[int, int]]:
        """Links as a set for O(1) membership tests."""
        return set(self.links)

    def word_count_matrix(self) -> np.ndarray:
        """Dense ``(U, V)`` user-word count matrix (for feature baselines)."""
        matrix = np.zeros((self.num_users, self.vocab_size), dtype=np.int64)
        for post in self.posts:
            for w in post.words:
                matrix[post.author, w] += 1
        return matrix

    def timestamps(self) -> np.ndarray:
        """Per-post time slices as an int array."""
        return np.asarray([post.timestamp for post in self.posts], dtype=np.int64)

    def subset_posts(self, indices: "np.ndarray | list[int]") -> "SocialCorpus":
        """A corpus containing only the selected posts (links unchanged)."""
        selected = [self.posts[int(i)] for i in indices]
        return SocialCorpus(
            num_users=self.num_users,
            num_time_slices=self.num_time_slices,
            posts=selected,
            links=list(self.links),
            vocabulary=self.vocabulary,
            vocab_size=self.vocab_size,
        )

    def subset_links(self, indices: "np.ndarray | list[int]") -> "SocialCorpus":
        """A corpus containing only the selected links (posts unchanged)."""
        selected = [self.links[int(i)] for i in indices]
        return SocialCorpus(
            num_users=self.num_users,
            num_time_slices=self.num_time_slices,
            posts=list(self.posts),
            links=selected,
            vocabulary=self.vocabulary,
            vocab_size=self.vocab_size,
        )

    def describe(self) -> dict[str, int]:
        """Summary statistics in the style of the paper's §6.1 dataset table."""
        return {
            "users": self.num_users,
            "posts": self.num_posts,
            "words": self.num_words,
            "links": self.num_links,
            "vocab": self.vocab_size,
            "time_slices": self.num_time_slices,
        }

    def __repr__(self) -> str:
        stats = self.describe()
        inner = ", ".join(f"{key}={value}" for key, value in stats.items())
        return f"SocialCorpus({inner})"
