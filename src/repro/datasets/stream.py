"""Streaming corpus construction from a time-ordered event feed.

The paper's datasets are sampled from Sina Weibo's **streaming API**: posts
and retweet interactions arrive as a time-ordered event stream and are
accumulated into the corpus.  :class:`CorpusStreamBuilder` reproduces that
ingestion path: feed it raw events (token lists with wall-clock stamps,
interaction pairs), and it handles vocabulary growth, user interning, time
discretisation into ``T`` slices, and low-activity-user filtering — the
§6.1 preprocessing — before emitting a :class:`SocialCorpus`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from .corpus import Post, SocialCorpus
from .vocabulary import Vocabulary


class StreamError(ValueError):
    """Raised for invalid stream events or build requests."""


@dataclass(frozen=True)
class PostEvent:
    """A raw post event: external author key, tokens, wall-clock time."""

    author_key: str
    tokens: tuple[str, ...]
    time: float


@dataclass(frozen=True)
class LinkEvent:
    """A raw interaction: content flowed from ``source_key`` to ``target_key``
    (e.g. target retweeted source) at ``time``."""

    source_key: str
    target_key: str
    time: float


@dataclass
class CorpusStreamBuilder:
    """Accumulates a time-ordered event stream into a corpus.

    Parameters
    ----------
    num_time_slices:
        Grid resolution ``T``; wall-clock stamps are binned uniformly over
        the observed span at build time.
    min_posts_per_user:
        The §6.1 "low active users" filter: users with fewer posts are
        dropped (together with their posts and links).
    stopwords:
        Tokens removed before vocabulary interning.
    """

    num_time_slices: int = 24
    min_posts_per_user: int = 1
    stopwords: frozenset[str] = frozenset()
    _post_events: list[PostEvent] = field(default_factory=list)
    _link_events: list[LinkEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_time_slices <= 0:
            raise StreamError("num_time_slices must be positive")
        if self.min_posts_per_user < 1:
            raise StreamError("min_posts_per_user must be >= 1")
        self.stopwords = frozenset(self.stopwords)

    # -- ingestion ---------------------------------------------------------------

    def add_post(
        self, author_key: str, tokens: Sequence[str], time: float
    ) -> None:
        """Ingest one post event; empty-after-stopwords posts are dropped."""
        if not author_key:
            raise StreamError("author_key must be non-empty")
        kept = tuple(t for t in tokens if t and t not in self.stopwords)
        if not kept:
            return
        self._post_events.append(PostEvent(author_key, kept, float(time)))

    def add_link(self, source_key: str, target_key: str, time: float) -> None:
        """Ingest one interaction event (self-interactions are dropped)."""
        if not source_key or not target_key:
            raise StreamError("link keys must be non-empty")
        if source_key == target_key:
            return
        self._link_events.append(LinkEvent(source_key, target_key, float(time)))

    @property
    def num_events(self) -> int:
        return len(self._post_events) + len(self._link_events)

    # -- build -------------------------------------------------------------------

    def build(self) -> SocialCorpus:
        """Discretise, filter and intern the accumulated events."""
        if not self._post_events:
            raise StreamError("no post events ingested")

        # Active-user filter on raw post counts.
        post_counts: dict[str, int] = {}
        for event in self._post_events:
            post_counts[event.author_key] = post_counts.get(event.author_key, 0) + 1
        active = {
            key for key, count in post_counts.items()
            if count >= self.min_posts_per_user
        }
        if not active:
            raise StreamError(
                "min_posts_per_user filtered out every user"
            )
        kept_posts = [e for e in self._post_events if e.author_key in active]
        kept_links = [
            e
            for e in self._link_events
            if e.source_key in active and e.target_key in active
        ]

        # Deterministic user interning: first-activity order.
        user_ids: dict[str, int] = {}
        for event in kept_posts:
            user_ids.setdefault(event.author_key, len(user_ids))
        for event in kept_links:
            user_ids.setdefault(event.source_key, len(user_ids))
            user_ids.setdefault(event.target_key, len(user_ids))

        # Time discretisation over the observed post-time span.
        times = [e.time for e in kept_posts]
        low, high = min(times), max(times)
        span = max(high - low, 1e-12)

        def slice_of(time: float) -> int:
            fraction = (time - low) / span
            return min(int(fraction * self.num_time_slices), self.num_time_slices - 1)

        vocabulary = Vocabulary()
        posts = [
            Post(
                author=user_ids[event.author_key],
                words=tuple(vocabulary.add(token) for token in event.tokens),
                timestamp=slice_of(event.time),
            )
            for event in kept_posts
        ]
        links = [
            (user_ids[e.source_key], user_ids[e.target_key]) for e in kept_links
        ]
        return SocialCorpus(
            num_users=len(user_ids),
            num_time_slices=self.num_time_slices,
            posts=posts,
            links=links,
            vocabulary=vocabulary.freeze(),
        )
