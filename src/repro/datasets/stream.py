"""Streaming corpus construction from a time-ordered event feed.

The paper's datasets are sampled from Sina Weibo's **streaming API**: posts
and retweet interactions arrive as a time-ordered event stream and are
accumulated into the corpus.  :class:`CorpusStreamBuilder` reproduces that
ingestion path: feed it raw events (token lists with wall-clock stamps,
interaction pairs), and it handles vocabulary growth, user interning, time
discretisation into ``T`` slices, and low-activity-user filtering — the
§6.1 preprocessing — before emitting a :class:`SocialCorpus`.

**Incremental mode** (``build(incremental=True)``) keeps the builder live
after the initial corpus: the time grid's origin and slice width are
frozen from the built span, user and vocabulary interning stay open
(append-only ids, so existing model tensors keep their meaning), and
further events accumulate until :meth:`CorpusStreamBuilder.pop_increment`
converts them into a :class:`CorpusIncrement` for
:meth:`repro.COLDModel.update`.  Two ingestion edge cases are typed
errors here instead of corrupted slice assignments downstream: events
stamped *before* the fitted grid's origin raise :class:`StaleEventError`,
and events beyond its end follow the configured rollover policy
(:class:`RolloverError` under ``"error"``).  Users first seen in a
:class:`LinkEvent` are interned like any other (the low-activity filter
applies only to the initial build — a streaming increment is too small a
sample to judge activity on).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from .corpus import Post, SocialCorpus
from .vocabulary import Vocabulary


class StreamError(ValueError):
    """Raised for invalid stream events or build requests."""


class StaleEventError(StreamError):
    """An incremental event is stamped before the fitted time grid.

    The grid origin is frozen at the initial ``build(incremental=True)``;
    an earlier stamp has no slice (the naive fraction would go negative
    and silently corrupt the assignment), so it fails loudly.  Callers
    that want to keep such stragglers can clamp their stamps to the grid
    origin before ingesting.
    """


class RolloverError(StreamError):
    """An incremental event lies beyond the time grid under ``rollover="error"``,
    or a ``"grow"`` rollover would exceed ``max_new_slices``."""


@dataclass(frozen=True)
class CorpusIncrement:
    """One batch of new corpus content in the *global* id space.

    Produced by :meth:`CorpusStreamBuilder.pop_increment`; consumed by
    :meth:`repro.COLDModel.update`.  ``num_users`` / ``vocab_size`` /
    ``num_time_slices`` are the totals *after* this increment (ids are
    append-only, so they can only grow).  ``new_tokens`` lists the tokens
    appended to the vocabulary, in id order.
    """

    posts: tuple[Post, ...]
    links: tuple[tuple[int, int], ...]
    num_users: int
    vocab_size: int
    num_time_slices: int
    new_tokens: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.posts and not self.links


@dataclass(frozen=True)
class PostEvent:
    """A raw post event: external author key, tokens, wall-clock time."""

    author_key: str
    tokens: tuple[str, ...]
    time: float


@dataclass(frozen=True)
class LinkEvent:
    """A raw interaction: content flowed from ``source_key`` to ``target_key``
    (e.g. target retweeted source) at ``time``."""

    source_key: str
    target_key: str
    time: float


@dataclass
class CorpusStreamBuilder:
    """Accumulates a time-ordered event stream into a corpus.

    Parameters
    ----------
    num_time_slices:
        Grid resolution ``T``; wall-clock stamps are binned uniformly over
        the observed span at build time.
    min_posts_per_user:
        The §6.1 "low active users" filter: users with fewer posts are
        dropped (together with their posts and links).
    stopwords:
        Tokens removed before vocabulary interning.
    """

    num_time_slices: int = 24
    min_posts_per_user: int = 1
    stopwords: frozenset[str] = frozenset()
    _post_events: list[PostEvent] = field(default_factory=list)
    _link_events: list[LinkEvent] = field(default_factory=list)
    # Incremental-mode state, populated by build(incremental=True): open
    # interning tables plus the frozen time-grid geometry.
    _user_ids: dict[str, int] | None = field(default=None, repr=False)
    _vocabulary: Vocabulary | None = field(default=None, repr=False)
    _origin: float = field(default=0.0, repr=False)
    _span: float = field(default=0.0, repr=False)
    _built_high: float = field(default=0.0, repr=False)
    _initial_slices: int = field(default=0, repr=False)
    _current_slices: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.num_time_slices <= 0:
            raise StreamError("num_time_slices must be positive")
        if self.min_posts_per_user < 1:
            raise StreamError("min_posts_per_user must be >= 1")
        self.stopwords = frozenset(self.stopwords)

    # -- ingestion ---------------------------------------------------------------

    def add_post(
        self, author_key: str, tokens: Sequence[str], time: float
    ) -> None:
        """Ingest one post event; empty-after-stopwords posts are dropped."""
        if not author_key:
            raise StreamError("author_key must be non-empty")
        kept = tuple(t for t in tokens if t and t not in self.stopwords)
        if not kept:
            return
        self._post_events.append(PostEvent(author_key, kept, float(time)))

    def add_link(self, source_key: str, target_key: str, time: float) -> None:
        """Ingest one interaction event (self-interactions are dropped)."""
        if not source_key or not target_key:
            raise StreamError("link keys must be non-empty")
        if source_key == target_key:
            return
        self._link_events.append(LinkEvent(source_key, target_key, float(time)))

    @property
    def num_events(self) -> int:
        return len(self._post_events) + len(self._link_events)

    @property
    def incremental(self) -> bool:
        """True once ``build(incremental=True)`` has run."""
        return self._user_ids is not None

    # -- build -------------------------------------------------------------------

    def build(self, incremental: bool = False) -> SocialCorpus:
        """Discretise, filter and intern the accumulated events.

        With ``incremental=True`` the builder stays live afterwards: the
        time grid is frozen from the observed span, interning tables stay
        open, the event buffers are cleared, and subsequent
        ``add_post``/``add_link`` calls accumulate towards
        :meth:`pop_increment`.
        """
        if self.incremental:
            raise StreamError(
                "builder is already incremental; use pop_increment() for "
                "further events"
            )
        if not self._post_events:
            raise StreamError("no post events ingested")

        # Active-user filter on raw post counts.
        post_counts: dict[str, int] = {}
        for event in self._post_events:
            post_counts[event.author_key] = post_counts.get(event.author_key, 0) + 1
        active = {
            key for key, count in post_counts.items()
            if count >= self.min_posts_per_user
        }
        if not active:
            raise StreamError(
                "min_posts_per_user filtered out every user"
            )
        kept_posts = [e for e in self._post_events if e.author_key in active]
        kept_links = [
            e
            for e in self._link_events
            if e.source_key in active and e.target_key in active
        ]

        # Deterministic user interning: first-activity order.
        user_ids: dict[str, int] = {}
        for event in kept_posts:
            user_ids.setdefault(event.author_key, len(user_ids))
        for event in kept_links:
            user_ids.setdefault(event.source_key, len(user_ids))
            user_ids.setdefault(event.target_key, len(user_ids))

        # Time discretisation over the observed post-time span.
        times = [e.time for e in kept_posts]
        low, high = min(times), max(times)
        span = max(high - low, 1e-12)

        def slice_of(time: float) -> int:
            fraction = (time - low) / span
            return min(int(fraction * self.num_time_slices), self.num_time_slices - 1)

        vocabulary = Vocabulary()
        posts = [
            Post(
                author=user_ids[event.author_key],
                words=tuple(vocabulary.add(token) for token in event.tokens),
                timestamp=slice_of(event.time),
            )
            for event in kept_posts
        ]
        links = [
            (user_ids[e.source_key], user_ids[e.target_key]) for e in kept_links
        ]
        if incremental:
            # Freeze the grid geometry; keep interning open for increments.
            self._user_ids = user_ids
            self._vocabulary = Vocabulary(vocabulary.to_list())
            self._origin = low
            self._span = span
            self._built_high = high
            self._initial_slices = self.num_time_slices
            self._current_slices = self.num_time_slices
            self._post_events = []
            self._link_events = []
        return SocialCorpus(
            num_users=len(user_ids),
            num_time_slices=self.num_time_slices,
            posts=posts,
            links=links,
            vocabulary=vocabulary.freeze(),
        )

    # -- incremental mode --------------------------------------------------------

    def _slice_of_incremental(self, time: float) -> int:
        """Map a wall-clock stamp onto the frozen grid (pre-rollover).

        Stamps within the initially built span reproduce the batch
        binning exactly; later stamps extend the grid at the same slice
        width.  Stamps before the grid origin raise
        :class:`StaleEventError` — the naive fraction would go negative
        and corrupt the slice assignment.
        """
        if time < self._origin:
            raise StaleEventError(
                f"event time {time} predates the fitted time grid origin "
                f"{self._origin}; clamp or drop stale events before ingesting"
            )
        if time <= self._built_high:
            fraction = (time - self._origin) / self._span
            return min(
                int(fraction * self._initial_slices), self._initial_slices - 1
            )
        width = self._span / self._initial_slices
        return int((time - self._origin) / width)

    def pop_increment(
        self,
        rollover: str = "grow",
        max_new_slices: int | None = None,
    ) -> CorpusIncrement:
        """Convert the buffered events into a :class:`CorpusIncrement`.

        New users and tokens are interned append-only (existing ids never
        change); the low-activity filter does not apply — streaming
        increments are too small a sample to judge activity on, and a
        user first seen in a :class:`LinkEvent` is interned like any
        other.  ``rollover`` decides the fate of stamps beyond the fitted
        grid: ``"grow"`` appends slices (at most ``max_new_slices`` per
        call when given), ``"clamp"`` maps them into the last slice,
        ``"error"`` raises :class:`RolloverError`.  Buffers are cleared
        on success; on an ingestion error they are left intact so the
        caller can repair and retry.
        """
        if not self.incremental:
            raise StreamError(
                "pop_increment() requires incremental mode; call "
                "build(incremental=True) first"
            )
        if rollover not in ("grow", "clamp", "error"):
            raise StreamError(
                f"rollover must be 'grow', 'clamp', or 'error', got {rollover!r}"
            )
        assert self._user_ids is not None and self._vocabulary is not None
        user_ids = self._user_ids
        vocabulary = self._vocabulary
        vocab_before = len(vocabulary)
        slices = self._current_slices

        def slice_with_rollover(time: float) -> int:
            nonlocal slices
            raw = self._slice_of_incremental(time)
            if raw < slices:
                return raw
            if rollover == "clamp":
                return slices - 1
            if rollover == "error":
                raise RolloverError(
                    f"event time {time} falls in slice {raw}, beyond the "
                    f"current {slices}-slice grid (rollover='error')"
                )
            grown = raw + 1
            limit = max_new_slices
            if limit is not None and grown - self._current_slices > limit:
                raise RolloverError(
                    f"event time {time} would grow the time grid by "
                    f"{grown - self._current_slices} slices, over the "
                    f"max_new_slices={limit} bound (bad clock or wrong units?)"
                )
            slices = grown
            return raw

        posts = []
        for event in self._post_events:
            timestamp = slice_with_rollover(event.time)
            author = user_ids.setdefault(event.author_key, len(user_ids))
            posts.append(
                Post(
                    author=author,
                    words=tuple(vocabulary.add(t) for t in event.tokens),
                    timestamp=timestamp,
                )
            )
        links = []
        for event in self._link_events:
            source = user_ids.setdefault(event.source_key, len(user_ids))
            target = user_ids.setdefault(event.target_key, len(user_ids))
            links.append((source, target))

        self._current_slices = slices
        new_tokens = tuple(vocabulary.to_list()[vocab_before:])
        self._post_events = []
        self._link_events = []
        return CorpusIncrement(
            posts=tuple(posts),
            links=tuple(links),
            num_users=len(user_ids),
            vocab_size=len(vocabulary),
            num_time_slices=self._current_slices,
            new_tokens=new_tokens,
        )
