"""Vocabulary: a bidirectional token <-> integer-id mapping.

The COLD paper works over a fixed vocabulary extracted from the corpus after
stop-word removal (89K terms on Weibo dataset 1).  This module provides the
small substrate every text model in the repository shares: a frozen,
append-only mapping with deterministic ids, optional stop-word filtering and
minimum-frequency pruning.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence


class VocabularyError(ValueError):
    """Raised on invalid vocabulary operations (unknown token, frozen add)."""


class Vocabulary:
    """Token <-> id bijection with optional freezing.

    Ids are assigned densely in first-seen order, which keeps the mapping
    deterministic for a fixed token stream and makes word-count arrays
    directly indexable by id.

    Parameters
    ----------
    tokens:
        Optional initial tokens, added in order.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._frozen = False
        for token in tokens:
            self.add(token)

    # -- construction ------------------------------------------------------

    def add(self, token: str) -> int:
        """Add ``token`` (if new) and return its id.

        Raises :class:`VocabularyError` when the vocabulary is frozen and the
        token is unknown.
        """
        if not isinstance(token, str) or not token:
            raise VocabularyError(f"tokens must be non-empty strings, got {token!r}")
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        if self._frozen:
            raise VocabularyError(f"vocabulary is frozen; cannot add {token!r}")
        new_id = len(self._id_to_token)
        self._token_to_id[token] = new_id
        self._id_to_token.append(token)
        return new_id

    def add_all(self, tokens: Iterable[str]) -> list[int]:
        """Add every token and return their ids in order."""
        return [self.add(token) for token in tokens]

    def freeze(self) -> "Vocabulary":
        """Disallow further additions; returns self for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- lookup ------------------------------------------------------------

    def id_of(self, token: str) -> int:
        """Return the id of ``token``; raises for unknown tokens."""
        try:
            return self._token_to_id[token]
        except KeyError:
            raise VocabularyError(f"unknown token {token!r}") from None

    def get(self, token: str, default: int | None = None) -> int | None:
        """Return the id of ``token`` or ``default`` when unknown."""
        return self._token_to_id.get(token, default)

    def token_of(self, token_id: int) -> str:
        """Return the token with id ``token_id``; raises for out-of-range ids."""
        if not 0 <= token_id < len(self._id_to_token):
            raise VocabularyError(f"token id {token_id} out of range [0, {len(self)})")
        return self._id_to_token[token_id]

    def encode(self, tokens: Sequence[str], skip_unknown: bool = False) -> list[int]:
        """Map tokens to ids.

        When ``skip_unknown`` is true, unknown tokens are silently dropped
        (the standard treatment of out-of-vocabulary words at test time);
        otherwise an unknown token raises.
        """
        if skip_unknown:
            ids = []
            for token in tokens:
                token_id = self._token_to_id.get(token)
                if token_id is not None:
                    ids.append(token_id)
            return ids
        return [self.id_of(token) for token in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        """Map ids back to tokens."""
        return [self.token_of(token_id) for token_id in ids]

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: object) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._id_to_token == other._id_to_token

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "open"
        return f"Vocabulary({len(self)} tokens, {state})"

    # -- serialisation -----------------------------------------------------

    def to_list(self) -> list[str]:
        """Tokens in id order (a copy, safe to mutate)."""
        return list(self._id_to_token)

    @classmethod
    def from_list(cls, tokens: Sequence[str], frozen: bool = True) -> "Vocabulary":
        """Rebuild a vocabulary from an id-ordered token list."""
        vocab = cls(tokens)
        if len(vocab) != len(tokens):
            raise VocabularyError("token list contains duplicates")
        if frozen:
            vocab.freeze()
        return vocab


def build_vocabulary(
    documents: Iterable[Sequence[str]],
    min_count: int = 1,
    stopwords: Iterable[str] = (),
    max_size: int | None = None,
) -> Vocabulary:
    """Build a frozen vocabulary from tokenised documents.

    Mirrors the paper's preprocessing: stop-word removal and pruning of rare
    terms.  Tokens are ranked by (count desc, token asc) before ``max_size``
    truncation so the result is deterministic.
    """
    if min_count < 1:
        raise VocabularyError(f"min_count must be >= 1, got {min_count}")
    stop = set(stopwords)
    counts: Counter[str] = Counter()
    for doc in documents:
        counts.update(token for token in doc if token not in stop)
    kept = [(token, count) for token, count in counts.items() if count >= min_count]
    kept.sort(key=lambda item: (-item[1], item[0]))
    if max_size is not None:
        kept = kept[:max_size]
    return Vocabulary(token for token, _count in kept).freeze()
