"""Retweet cascades: ground-truth diffusion events for prediction evaluation.

The paper's diffusion-prediction protocol (§6.3) evaluates on tuples
``RT_id = (i, d, U_id, Ubar_id)`` — for a post ``d`` by user ``i``, the set
of i's followers who retweeted it versus those who ignored it.  The Weibo
crawl observes these directly; our synthetic substitute simulates them from
the planted parameters so that the *signal* the predictors must recover
(topic-sensitive community-level influence) genuinely drives the labels.

A follower ``i'`` of ``i`` retweets post ``d`` with probability proportional
to the planted ``P(i, i', d)`` of Eq. (7):

    P(i, i', d) = sum_k P(k | d, i) * sum_{c, c'} pi_ic pi_i'c' zeta_kcc'

scaled so the mean retweet probability matches ``base_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .corpus import SocialCorpus
from .synthetic import GroundTruth


class CascadeError(ValueError):
    """Raised for invalid cascade-generation inputs."""


@dataclass(frozen=True)
class RetweetTuple:
    """One evaluation tuple ``(i, d, U_id, Ubar_id)`` of §6.3.

    ``post_index`` refers into ``corpus.posts``.  ``retweeters`` and
    ``ignorers`` partition the author's followers who were exposed.
    """

    author: int
    post_index: int
    retweeters: tuple[int, ...]
    ignorers: tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.retweeters) & set(self.ignorers)
        if overlap:
            raise CascadeError(f"users {sorted(overlap)} both retweeted and ignored")

    @property
    def num_exposed(self) -> int:
        return len(self.retweeters) + len(self.ignorers)


def planted_diffusion_probability(
    truth: GroundTruth,
    author: int,
    followers: np.ndarray,
    topic_posterior: np.ndarray,
) -> np.ndarray:
    """Planted ``P(i, i', d)`` for every follower, vectorised.

    ``topic_posterior`` is ``P(k | d, i)`` over topics (sums to one).
    """
    zeta = truth.zeta()  # (K, C, C)
    # influence[k, c'] = sum_c pi_ic * zeta_kcc'
    influence = np.einsum("c,kcd->kd", truth.pi[author], zeta)
    # score[k, follower] = sum_c' pi_{i'c'} influence[k, c']
    per_topic = influence @ truth.pi[followers].T  # (K, F)
    return topic_posterior @ per_topic  # (F,)


def topic_posterior_for_post(
    truth: GroundTruth, corpus: SocialCorpus, post_index: int
) -> np.ndarray:
    """Planted ``P(k | d, i)`` (Eq. 5) using the true phi/pi/theta."""
    post = corpus.posts[post_index]
    log_word = np.log(truth.phi[:, list(post.words)] + 1e-300).sum(axis=1)
    prior = truth.pi[post.author] @ truth.theta  # (K,)
    log_post = log_word + np.log(prior + 1e-300)
    log_post -= log_post.max()
    weights = np.exp(log_post)
    return weights / weights.sum()


def generate_retweet_tuples(
    corpus: SocialCorpus,
    truth: GroundTruth,
    base_rate: float = 0.35,
    min_followers: int = 2,
    max_tuples: int | None = None,
    exposure_rate: float = 1.0,
    seed: int = 0,
) -> list[RetweetTuple]:
    """Simulate retweet decisions for every post with enough exposed followers.

    Parameters
    ----------
    base_rate:
        Target mean retweet probability across all (post, follower) pairs;
        the planted scores are rescaled to this mean, then clipped to
        ``[0.01, 0.95]`` so both labels stay reachable everywhere.
    min_followers:
        Posts whose author has fewer exposed followers are skipped (an AUC
        needs at least one positive and one negative candidate).
    max_tuples:
        Optional cap on the number of tuples returned (first-come order).
    exposure_rate:
        Probability that a given follower sees a given post.  Real feeds
        expose only a fraction of followers, which keeps *individual* pair
        histories sparse — the paper's stated reason individual-level
        predictors (WTM, TI) underperform.  1.0 exposes everyone.
    """
    if not 0 < base_rate < 1:
        raise CascadeError(f"base_rate must be in (0, 1), got {base_rate}")
    if not 0 < exposure_rate <= 1:
        raise CascadeError(f"exposure_rate must be in (0, 1], got {exposure_rate}")
    rng = np.random.default_rng(seed)
    followers_of = corpus.out_links()
    tuples: list[RetweetTuple] = []

    # First pass: raw planted scores, to compute the global scaling factor.
    raw: list[tuple[int, np.ndarray, np.ndarray]] = []
    for post_index, post in enumerate(corpus.posts):
        followers = np.asarray(followers_of[post.author], dtype=np.int64)
        if exposure_rate < 1.0 and followers.size:
            exposed = rng.random(followers.size) < exposure_rate
            followers = followers[exposed]
        if followers.size < min_followers:
            continue
        posterior = topic_posterior_for_post(truth, corpus, post_index)
        scores = planted_diffusion_probability(truth, post.author, followers, posterior)
        raw.append((post_index, followers, scores))
    if not raw:
        return []
    mean_score = float(np.mean(np.concatenate([scores for _, _, scores in raw])))
    scale = base_rate / max(mean_score, 1e-12)

    for post_index, followers, scores in raw:
        probs = np.clip(scores * scale, 0.01, 0.95)
        flips = rng.random(followers.size) < probs
        retweeters = tuple(int(u) for u in followers[flips])
        ignorers = tuple(int(u) for u in followers[~flips])
        if not retweeters or not ignorers:
            continue
        tuples.append(
            RetweetTuple(
                author=corpus.posts[post_index].author,
                post_index=post_index,
                retweeters=retweeters,
                ignorers=ignorers,
            )
        )
        if max_tuples is not None and len(tuples) >= max_tuples:
            break
    return tuples


def split_tuples(
    tuples: list[RetweetTuple], test_fraction: float = 0.2, seed: int = 0
) -> tuple[list[RetweetTuple], list[RetweetTuple]]:
    """Random train/test split of retweet tuples (paper holds out 20%)."""
    if not 0 < test_fraction < 1:
        raise CascadeError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(tuples))
    num_test = max(1, int(round(test_fraction * len(tuples)))) if tuples else 0
    test_idx = set(int(i) for i in order[:num_test])
    train = [t for idx, t in enumerate(tuples) if idx not in test_idx]
    test = [t for idx, t in enumerate(tuples) if idx in test_idx]
    return train, test


def retweet_training_events(
    tuples: list[RetweetTuple],
) -> list[tuple[int, int, int]]:
    """Flatten tuples into ``(author, retweeter, post_index)`` events.

    Individual-level baselines (WTM, TI) train on these observed events, the
    same interaction history the paper's baselines consume.
    """
    events: list[tuple[int, int, int]] = []
    for t in tuples:
        for retweeter in t.retweeters:
            events.append((t.author, retweeter, t.post_index))
    return events
