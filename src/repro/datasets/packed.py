"""The ``.coldpack`` on-disk corpus: packed columns behind one mmap.

:class:`SocialCorpus` keeps every post as a Python object, which caps
benchmarks at laptop scale — ~100 bytes per token once tuples and object
headers are paid for, times one copy per worker process.  This module
stores the same observed data as packed int64 columns in a single
versioned, checksummed file and reads it back through one read-only
memory map:

* ``PackedCorpusWriter`` streams posts and links to disk in bounded
  memory (the chunked synthetic generator and ``write_packed`` both use
  it), validating every id against the declared dimensions at build time;
* ``PackedCorpus`` opens the file and exposes the :class:`SocialCorpus`
  read surface over zero-copy mmap views — including
  :meth:`PackedCorpus.post_table`, which hands the Gibbs samplers their
  :class:`~repro.core.state.PostTable` without materialising a single
  ``Post``;
* the ``processes`` executor maps node shards straight from the file
  (workers re-open it read-only), so dispatching a million-post corpus
  to N workers costs no pickling and no N-fold copy — the kernel page
  cache backs every process.

On-disk layout (all integers little-endian)::

    bytes 0..8    magic  b"COLDPACK"
    bytes 8..12   u32 format version
    bytes 12..16  u32 header JSON length
    bytes 16..20  u32 CRC32 of the header JSON
    bytes 20..    header JSON (dims, array layout, per-array CRC32)
    data_start..  64-byte-aligned array regions (offsets relative to
                  data_start — the ArraySpec convention of
                  :mod:`repro.parallel.shm`)

Columns: ``post_authors``/``post_times``/``post_lengths`` (D,), raw
``tokens`` (N,) with ``token_offsets`` (D+1,), the per-post unique-word
CSR ``unique_words``/``unique_counts`` with ``unique_offsets`` (D+1,) in
first-appearance order (bit-identical to ``Post.word_counts()``, which
is what makes a packed fit draw the same chain as an in-RAM one),
``links`` (E, 2), and the optional vocabulary as a UTF-8 blob plus
offsets.

Failure modes are typed and name the file: :class:`PackedFormatError`
for truncation or a foreign magic, :class:`PackedVersionError` for a
future format version, :class:`PackedChecksumError` for header or array
corruption (:meth:`PackedCorpus.verify` re-hashes every array in bounded
memory).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import zlib
from pathlib import Path

import numpy as np

from ..core.state import PostTable
from .corpus import CorpusError, CorpusValidationError, Post, SocialCorpus
from .vocabulary import Vocabulary

#: First 8 bytes of every packed corpus file.
MAGIC = b"COLDPACK"

#: Current format version; bumped on any layout change.
FORMAT_VERSION = 1

#: Byte alignment of each array region (matches repro.parallel.shm).
_ALIGNMENT = 64

#: Bytes per chunk for streamed checksumming / spool copies.
_IO_CHUNK = 4 * 1024 * 1024

#: ``(magic, version, header_len, header_crc)`` prefix.
_PREFIX = struct.Struct("<8sIII")

#: Fixed column order inside the data region.
_COLUMNS = (
    "post_authors",
    "post_times",
    "post_lengths",
    "token_offsets",
    "tokens",
    "unique_offsets",
    "unique_words",
    "unique_counts",
    "links",
    "vocab_offsets",
    "vocab_blob",
)


class PackedCorpusError(CorpusError):
    """Base error for the packed corpus format."""


class PackedFormatError(PackedCorpusError):
    """The file is not a readable coldpack: truncated, foreign magic,
    malformed header, or a layout that disagrees with the file size."""


class PackedVersionError(PackedFormatError):
    """The file's format version is not supported by this reader."""


class PackedChecksumError(PackedCorpusError):
    """A stored CRC32 (header or array) does not match the bytes read."""


def _align(offset: int) -> int:
    return -(-offset // _ALIGNMENT) * _ALIGNMENT


def _file_crc32(handle, start: int, length: int) -> int:
    """CRC32 of ``length`` bytes at ``start``, read in bounded chunks."""
    handle.seek(start)
    crc = 0
    remaining = length
    while remaining > 0:
        chunk = handle.read(min(_IO_CHUNK, remaining))
        if not chunk:
            break
        crc = zlib.crc32(chunk, crc)
        remaining -= len(chunk)
    return crc & 0xFFFFFFFF


class _ColumnSpool:
    """One column streamed to a temp file in fixed-size flushes."""

    def __init__(self, directory: Path, name: str, dtype: np.dtype) -> None:
        self.name = name
        self.dtype = np.dtype(dtype)
        self.path = directory / f"{name}.col"
        self._handle = open(self.path, "wb")
        self.items = 0

    def append(self, values) -> None:
        array = np.asarray(values, dtype=self.dtype)
        self.items += array.size
        array.tofile(self._handle)

    def finish(self) -> None:
        self._handle.close()

    @property
    def nbytes(self) -> int:
        return self.items * self.dtype.itemsize


class PackedCorpusWriter:
    """Stream a corpus into a ``.coldpack`` file in bounded memory.

    Posts and links are buffered a chunk at a time (``chunk_tokens``
    tokens of post data) and spooled to per-column temp files;
    :meth:`finalize` assembles the checksummed container and atomically
    replaces ``path``.  Every id is validated against the declared
    dimensions as it arrives — a wild token/user/slice id raises
    :class:`~repro.datasets.corpus.CorpusValidationError` at build time
    instead of surfacing as an index error deep inside a sweep.

    The writer does not deduplicate links (that would need O(E) memory);
    callers stream links already deduplicated, as both the chunked
    generator and :func:`write_packed` do.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        num_users: int,
        num_time_slices: int,
        vocab_size: int,
        vocabulary: Vocabulary | None = None,
        chunk_tokens: int = 1 << 20,
    ) -> None:
        if num_users <= 0:
            raise PackedCorpusError(f"num_users must be positive, got {num_users}")
        if num_time_slices <= 0:
            raise PackedCorpusError(
                f"num_time_slices must be positive, got {num_time_slices}"
            )
        if vocabulary is not None:
            if vocab_size not in (0, len(vocabulary)):
                raise PackedCorpusError(
                    "vocab_size disagrees with the supplied vocabulary"
                )
            vocab_size = len(vocabulary)
        if vocab_size <= 0:
            raise PackedCorpusError(
                "packed corpora need an explicit positive vocab_size "
                "(or a vocabulary)"
            )
        if chunk_tokens <= 0:
            raise PackedCorpusError("chunk_tokens must be positive")
        self.path = Path(path)
        self.num_users = num_users
        self.num_time_slices = num_time_slices
        self.vocab_size = vocab_size
        self.vocabulary = vocabulary
        self._chunk_tokens = chunk_tokens
        self._finalized = False
        self.num_posts = 0
        self.num_links = 0
        self.num_tokens = 0
        self._unique_total = 0
        self._spool_dir = Path(
            tempfile.mkdtemp(
                prefix=f".{self.path.name}.spool-",
                dir=self.path.parent if self.path.parent.name else ".",
            )
        )
        int64 = np.dtype(np.int64)
        self._spools = {
            "post_authors": _ColumnSpool(self._spool_dir, "post_authors", int64),
            "post_times": _ColumnSpool(self._spool_dir, "post_times", int64),
            "post_lengths": _ColumnSpool(self._spool_dir, "post_lengths", int64),
            "token_offsets": _ColumnSpool(self._spool_dir, "token_offsets", int64),
            "tokens": _ColumnSpool(self._spool_dir, "tokens", int64),
            "unique_offsets": _ColumnSpool(self._spool_dir, "unique_offsets", int64),
            "unique_words": _ColumnSpool(self._spool_dir, "unique_words", int64),
            "unique_counts": _ColumnSpool(self._spool_dir, "unique_counts", int64),
            "links": _ColumnSpool(self._spool_dir, "links", int64),
        }
        # CSR offset columns start with their leading zero.
        self._spools["token_offsets"].append([0])
        self._spools["unique_offsets"].append([0])
        # Post chunk buffers (flushed when the token buffer fills).
        self._buf_authors: list[int] = []
        self._buf_times: list[int] = []
        self._buf_lengths: list[int] = []
        self._buf_token_offsets: list[int] = []
        self._buf_tokens: list[int] = []
        self._buf_unique_offsets: list[int] = []
        self._buf_unique_words: list[int] = []
        self._buf_unique_counts: list[int] = []
        self._buf_links: list[int] = []

    # -- ingest ----------------------------------------------------------------

    def add_post(self, author: int, timestamp: int, words) -> None:
        """Append one post; validates ids against the declared dimensions."""
        self._require_open()
        author = int(author)
        timestamp = int(timestamp)
        if not 0 <= author < self.num_users:
            raise CorpusValidationError(
                f"post {self.num_posts}: author {author} out of range "
                f"[0, {self.num_users})"
            )
        if not 0 <= timestamp < self.num_time_slices:
            raise CorpusValidationError(
                f"post {self.num_posts}: timestamp {timestamp} out of range "
                f"[0, {self.num_time_slices})"
            )
        tokens = [int(w) for w in words]
        if not tokens:
            raise PackedCorpusError(
                f"post {self.num_posts}: posts must contain at least one word"
            )
        # First-appearance-order unique multiset — the exact semantics of
        # Post.word_counts(), which the samplers' PostTable is built on.
        counts: dict[int, int] = {}
        for token in tokens:
            if not 0 <= token < self.vocab_size:
                raise CorpusValidationError(
                    f"post {self.num_posts}: word id {token} out of range "
                    f"[0, {self.vocab_size})"
                )
            counts[token] = counts.get(token, 0) + 1
        self._buf_authors.append(author)
        self._buf_times.append(timestamp)
        self._buf_lengths.append(len(tokens))
        self._buf_tokens.extend(tokens)
        self.num_tokens += len(tokens)
        self._buf_token_offsets.append(self.num_tokens)
        self._buf_unique_words.extend(counts.keys())
        self._buf_unique_counts.extend(counts.values())
        self._unique_total += len(counts)
        self._buf_unique_offsets.append(self._unique_total)
        self.num_posts += 1
        if len(self._buf_tokens) >= self._chunk_tokens:
            self._flush_posts()

    def add_posts(self, posts) -> None:
        """Append an iterable of :class:`~repro.datasets.corpus.Post`-likes."""
        for post in posts:
            self.add_post(post.author, post.timestamp, post.words)

    def add_link(self, src: int, dst: int) -> None:
        """Append one directed link; validates endpoints."""
        self._require_open()
        src = int(src)
        dst = int(dst)
        if not (0 <= src < self.num_users and 0 <= dst < self.num_users):
            raise CorpusValidationError(
                f"link ({src}, {dst}) has dangling endpoint: user ids must "
                f"lie in [0, {self.num_users})"
            )
        if src == dst:
            raise PackedCorpusError(f"self-link ({src}, {dst}) is not allowed")
        self._buf_links.extend((src, dst))
        self.num_links += 1
        if len(self._buf_links) >= self._chunk_tokens:
            self._flush_links()

    def add_links(self, links) -> None:
        for src, dst in links:
            self.add_link(src, dst)

    # -- assembly --------------------------------------------------------------

    def finalize(self) -> Path:
        """Assemble the checksummed file and atomically replace ``path``."""
        self._require_open()
        self._finalized = True
        self._flush_posts()
        self._flush_links()
        for spool in self._spools.values():
            spool.finish()
        try:
            self._write_vocabulary_spools()
            layout = self._build_layout()
            header = {
                "format": "coldpack",
                "num_users": self.num_users,
                "num_time_slices": self.num_time_slices,
                "vocab_size": self.vocab_size,
                "num_posts": self.num_posts,
                "num_links": self.num_links,
                "num_tokens": self.num_tokens,
                "has_vocabulary": self.vocabulary is not None,
                "arrays": layout,
            }
            self._write_container(header)
        finally:
            self._cleanup_spools()
        return self.path

    def _require_open(self) -> None:
        if self._finalized:
            raise PackedCorpusError("writer is finalized; no further appends")

    def _flush_posts(self) -> None:
        self._spools["post_authors"].append(self._buf_authors)
        self._spools["post_times"].append(self._buf_times)
        self._spools["post_lengths"].append(self._buf_lengths)
        self._spools["token_offsets"].append(self._buf_token_offsets)
        self._spools["tokens"].append(self._buf_tokens)
        self._spools["unique_offsets"].append(self._buf_unique_offsets)
        self._spools["unique_words"].append(self._buf_unique_words)
        self._spools["unique_counts"].append(self._buf_unique_counts)
        self._buf_authors = []
        self._buf_times = []
        self._buf_lengths = []
        self._buf_token_offsets = []
        self._buf_tokens = []
        self._buf_unique_offsets = []
        self._buf_unique_words = []
        self._buf_unique_counts = []

    def _flush_links(self) -> None:
        self._spools["links"].append(self._buf_links)
        self._buf_links = []

    def _write_vocabulary_spools(self) -> None:
        if self.vocabulary is None:
            return
        blob = _ColumnSpool(self._spool_dir, "vocab_blob", np.uint8)
        offsets = _ColumnSpool(self._spool_dir, "vocab_offsets", np.int64)
        offsets.append([0])
        total = 0
        pending: list[int] = []
        for token in self.vocabulary.to_list():
            encoded = token.encode("utf-8")
            blob.append(np.frombuffer(encoded, dtype=np.uint8))
            total += len(encoded)
            pending.append(total)
            if len(pending) >= 65536:
                offsets.append(pending)
                pending = []
        offsets.append(pending)
        blob.finish()
        offsets.finish()
        self._spools["vocab_blob"] = blob
        self._spools["vocab_offsets"] = offsets

    def _column_shape(self, name: str, spool: _ColumnSpool) -> tuple[int, ...]:
        if name == "links":
            return (self.num_links, 2)
        return (spool.items,)

    def _build_layout(self) -> dict:
        """Per-array placement + CRC32, offsets relative to the data start."""
        layout: dict[str, dict] = {}
        offset = 0
        for name in _COLUMNS:
            spool = self._spools.get(name)
            if spool is None:
                continue
            offset = _align(offset)
            with open(spool.path, "rb") as handle:
                crc = _file_crc32(handle, 0, spool.nbytes)
            layout[name] = {
                "offset": offset,
                "shape": list(self._column_shape(name, spool)),
                "dtype": spool.dtype.str,
                "crc32": crc,
            }
            offset += spool.nbytes
        return layout

    def _write_container(self, header: dict) -> None:
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        data_start = _align(_PREFIX.size + len(header_bytes))
        data_size = 0
        for spec in header["arrays"].values():
            nbytes = int(np.prod(spec["shape"], dtype=np.int64)) * np.dtype(
                spec["dtype"]
            ).itemsize
            data_size = max(data_size, spec["offset"] + nbytes)
        # data_start depends only on the header length, which is already
        # final (offsets are relative to data_start), so re-encode with it.
        header["data_start"] = data_start
        header["data_size"] = data_size
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        data_start = _align(_PREFIX.size + len(header_bytes))
        header["data_start"] = data_start
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        assert _align(_PREFIX.size + len(header_bytes)) == data_start

        tmp_path = self.path.with_name(self.path.name + ".tmp")
        with open(tmp_path, "wb") as out:
            out.write(
                _PREFIX.pack(
                    MAGIC,
                    FORMAT_VERSION,
                    len(header_bytes),
                    zlib.crc32(header_bytes) & 0xFFFFFFFF,
                )
            )
            out.write(header_bytes)
            out.write(b"\0" * (data_start - _PREFIX.size - len(header_bytes)))
            position = 0
            for name in _COLUMNS:
                spec = header["arrays"].get(name)
                if spec is None:
                    continue
                out.write(b"\0" * (spec["offset"] - position))
                position = spec["offset"]
                with open(self._spools[name].path, "rb") as spool:
                    while True:
                        chunk = spool.read(_IO_CHUNK)
                        if not chunk:
                            break
                        out.write(chunk)
                        position += len(chunk)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp_path, self.path)

    def _cleanup_spools(self) -> None:
        for spool in self._spools.values():
            try:
                spool.finish()
            except ValueError:  # pragma: no cover - already closed
                pass
            spool.path.unlink(missing_ok=True)
        try:
            self._spool_dir.rmdir()
        except OSError:  # pragma: no cover - leftover foreign file
            pass

    def abort(self) -> None:
        """Drop the spools without writing the container (idempotent)."""
        if not self._finalized:
            self._finalized = True
            for spool in self._spools.values():
                spool.finish()
            self._cleanup_spools()

    def __enter__(self) -> "PackedCorpusWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._finalized:
            self.finalize()
        else:
            self.abort()


def write_packed(corpus: SocialCorpus, path: str | Path) -> Path:
    """Pack an in-RAM :class:`SocialCorpus` into a ``.coldpack`` file."""
    writer = PackedCorpusWriter(
        path,
        num_users=corpus.num_users,
        num_time_slices=corpus.num_time_slices,
        vocab_size=corpus.vocab_size,
        vocabulary=corpus.vocabulary,
    )
    try:
        writer.add_posts(corpus.posts)
        writer.add_links(corpus.links)
        return writer.finalize()
    except BaseException:
        writer.abort()
        raise


class _PackedPostsView:
    """Read-only sequence adapter: packed columns -> ``Post`` on demand."""

    def __init__(self, corpus: "PackedCorpus") -> None:
        self._corpus = corpus

    def __len__(self) -> int:
        return self._corpus.num_posts

    def _materialize(self, index: int) -> Post:
        c = self._corpus
        lo, hi = c._token_offsets[index], c._token_offsets[index + 1]
        return Post(
            author=int(c._post_authors[index]),
            words=tuple(int(w) for w in c._tokens[lo:hi]),
            timestamp=int(c._post_times[index]),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialize(i) for i in range(*index.indices(len(self)))]
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"post index {index} out of range")
        return self._materialize(index)

    def __iter__(self):
        for index in range(len(self)):
            yield self._materialize(index)


class _PackedLinksView:
    """Read-only sequence adapter over the ``(E, 2)`` link column."""

    def __init__(self, links: np.ndarray) -> None:
        self._links = links

    def __len__(self) -> int:
        return len(self._links)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                (int(s), int(d)) for s, d in self._links[index]
            ]
        src, dst = self._links[int(index)]
        return (int(src), int(dst))

    def __iter__(self):
        for src, dst in self._links:
            yield (int(src), int(dst))


class PackedCorpus:
    """A ``.coldpack`` file opened read-only through one memory map.

    Exposes the :class:`SocialCorpus` read surface (sizes, posts, links,
    derived views) over zero-copy numpy views of the mapped file; the
    views are read-only, so accidental mutation raises instead of
    corrupting the file.  ``posts`` materialises ``Post`` objects lazily
    — samplers never touch it, because :meth:`post_table` (picked up by
    ``PostTable.from_corpus``) and :meth:`link_array` feed them straight
    from the map.
    """

    def __init__(self, path: Path, header: dict, mapped: mmap.mmap) -> None:
        self.path = path
        self._header = header
        self._mmap = mapped
        self._closed = False
        self._vocab: Vocabulary | None = None
        data_start = header["data_start"]
        self._arrays: dict[str, np.ndarray] = {}
        for name, spec in header["arrays"].items():
            dtype = np.dtype(spec["dtype"])
            count = int(np.prod(spec["shape"], dtype=np.int64))
            self._arrays[name] = np.frombuffer(
                mapped, dtype=dtype, count=count, offset=data_start + spec["offset"]
            ).reshape(spec["shape"])
        self._post_authors = self._arrays["post_authors"]
        self._post_times = self._arrays["post_times"]
        self._post_lengths = self._arrays["post_lengths"]
        self._token_offsets = self._arrays["token_offsets"]
        self._tokens = self._arrays["tokens"]
        self._links = self._arrays["links"]

    # -- opening ---------------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, verify: bool = False) -> "PackedCorpus":
        """Map ``path``; cheap structural validation always runs.

        ``verify=True`` additionally re-checksums every array
        (:meth:`verify`) before returning.
        """
        path = Path(path)
        header = cls._read_header(path)
        size = path.stat().st_size
        expected = header["data_start"] + header["data_size"]
        if size < expected:
            raise PackedFormatError(
                f"{path}: truncated packed corpus — file is {size} bytes, "
                f"layout needs {expected}"
            )
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        corpus = cls(path, header, mapped)
        try:
            corpus._check_structure()
            if verify:
                corpus.verify()
        except BaseException:
            corpus.close()
            raise
        return corpus

    @staticmethod
    def _read_header(path: Path) -> dict:
        try:
            with open(path, "rb") as handle:
                prefix = handle.read(_PREFIX.size)
                if len(prefix) < _PREFIX.size:
                    raise PackedFormatError(
                        f"{path}: truncated packed corpus — "
                        f"{len(prefix)} byte(s), expected at least "
                        f"{_PREFIX.size}"
                    )
                magic, version, header_len, header_crc = _PREFIX.unpack(prefix)
                if magic != MAGIC:
                    raise PackedFormatError(
                        f"{path}: not a packed corpus (magic {magic!r})"
                    )
                if version != FORMAT_VERSION:
                    raise PackedVersionError(
                        f"{path}: packed corpus format version {version} is "
                        f"not supported (this reader understands "
                        f"{FORMAT_VERSION})"
                    )
                header_bytes = handle.read(header_len)
        except OSError as exc:
            raise PackedFormatError(f"{path}: cannot read ({exc})") from exc
        if len(header_bytes) < header_len:
            raise PackedFormatError(
                f"{path}: truncated packed corpus — header cut short"
            )
        if zlib.crc32(header_bytes) & 0xFFFFFFFF != header_crc:
            raise PackedChecksumError(
                f"{path}: header checksum mismatch — the file is corrupt"
            )
        try:
            header = json.loads(header_bytes)
        except json.JSONDecodeError as exc:
            raise PackedFormatError(
                f"{path}: malformed packed-corpus header ({exc})"
            ) from exc
        return header

    def _check_structure(self) -> None:
        header = self._header
        required = set(_COLUMNS) - {"vocab_offsets", "vocab_blob"}
        missing = sorted(required - set(header["arrays"]))
        if missing:
            raise PackedFormatError(
                f"{self.path}: header missing arrays: {', '.join(missing)}"
            )
        D, E, N = header["num_posts"], header["num_links"], header["num_tokens"]
        shapes = {
            "post_authors": (D,),
            "post_times": (D,),
            "post_lengths": (D,),
            "token_offsets": (D + 1,),
            "tokens": (N,),
            "unique_offsets": (D + 1,),
            "links": (E, 2),
        }
        for name, expected in shapes.items():
            actual = tuple(header["arrays"][name]["shape"])
            if actual != expected:
                raise PackedFormatError(
                    f"{self.path}: array {name} has shape {actual}, "
                    f"header dimensions imply {expected}"
                )
        if D and int(self._token_offsets[-1]) != N:
            raise PackedFormatError(
                f"{self.path}: token_offsets end at "
                f"{int(self._token_offsets[-1])}, header says {N} tokens"
            )

    def verify(self) -> None:
        """Re-checksum every array region against the header (bounded RSS).

        Reads the file in chunks through ordinary file I/O rather than
        faulting the whole map in; raises :class:`PackedChecksumError`
        naming the file and the first corrupt array.
        """
        self._require_open()
        data_start = self._header["data_start"]
        with open(self.path, "rb") as handle:
            for name, spec in self._header["arrays"].items():
                nbytes = int(
                    np.prod(spec["shape"], dtype=np.int64)
                ) * np.dtype(spec["dtype"]).itemsize
                crc = _file_crc32(handle, data_start + spec["offset"], nbytes)
                if crc != spec["crc32"]:
                    raise PackedChecksumError(
                        f"{self.path}: checksum mismatch in array {name!r} "
                        f"— the file is corrupt"
                    )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drop the numpy views and unmap the file (idempotent).

        Any externally held view keeps the pages alive until it dies; the
        map itself is released with the last exporter, exactly like the
        shared-memory blocks.
        """
        if self._closed:
            return
        self._closed = True
        self._arrays = {}
        self._post_authors = self._post_times = self._post_lengths = None
        self._token_offsets = self._tokens = self._links = None
        try:
            self._mmap.close()
        except BufferError:
            pass

    def _require_open(self) -> None:
        if self._closed:
            raise PackedCorpusError(f"{self.path}: packed corpus is closed")

    def __enter__(self) -> "PackedCorpus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- sizes -----------------------------------------------------------------

    @property
    def num_users(self) -> int:
        return self._header["num_users"]

    @property
    def num_time_slices(self) -> int:
        return self._header["num_time_slices"]

    @property
    def vocab_size(self) -> int:
        return self._header["vocab_size"]

    @property
    def num_posts(self) -> int:
        return self._header["num_posts"]

    @property
    def num_links(self) -> int:
        return self._header["num_links"]

    @property
    def num_words(self) -> int:
        return self._header["num_tokens"]

    @property
    def num_negative_links(self) -> int:
        return self.num_users * (self.num_users - 1) - self.num_links

    @property
    def packed_path(self) -> Path:
        """The backing file — the marker the ``processes`` executor keys on
        to map shards from disk instead of copying arrays into shm."""
        return self.path

    # -- sampler feeds (zero-copy) ---------------------------------------------

    def post_table(self) -> PostTable:
        """The samplers' :class:`PostTable`, as views of the mapped file.

        ``PostTable.from_corpus`` calls this when present, so
        ``CountState.initialize`` on a packed corpus never loops over
        Python posts — and draws are bit-identical to the in-RAM path
        because the stored unique-word CSR uses the same
        first-appearance order as ``Post.word_counts()``.
        """
        self._require_open()
        return PostTable(
            authors=self._post_authors,
            times=self._post_times,
            lengths=self._post_lengths,
            offsets=self._arrays["unique_offsets"],
            unique_words=self._arrays["unique_words"],
            unique_counts=self._arrays["unique_counts"],
        )

    def link_array(self) -> np.ndarray:
        """Links as a read-only ``(E, 2)`` int64 view of the map."""
        self._require_open()
        return self._links

    @property
    def post_authors(self) -> np.ndarray:
        """Per-post author ids (read-only view; graph fast path)."""
        self._require_open()
        return self._post_authors

    @property
    def post_times(self) -> np.ndarray:
        """Per-post time slices (read-only view; graph fast path)."""
        self._require_open()
        return self._post_times

    # -- SocialCorpus read surface ---------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary | None:
        """The stored vocabulary, decoded lazily on first access."""
        self._require_open()
        if not self._header.get("has_vocabulary"):
            return None
        if self._vocab is None:
            offsets = self._arrays["vocab_offsets"]
            blob = self._arrays["vocab_blob"].tobytes()
            self._vocab = Vocabulary(
                blob[offsets[v] : offsets[v + 1]].decode("utf-8")
                for v in range(self.vocab_size)
            ).freeze()
        return self._vocab

    @property
    def posts(self) -> _PackedPostsView:
        self._require_open()
        return _PackedPostsView(self)

    @property
    def links(self) -> _PackedLinksView:
        self._require_open()
        return _PackedLinksView(self._links)

    def link_set(self) -> set[tuple[int, int]]:
        self._require_open()
        return {(int(s), int(d)) for s, d in self._links}

    def timestamps(self) -> np.ndarray:
        self._require_open()
        return self._post_times.copy()

    def posts_by_user(self) -> list[list[int]]:
        self._require_open()
        grouped: list[list[int]] = [[] for _ in range(self.num_users)]
        for idx, author in enumerate(self._post_authors.tolist()):
            grouped[author].append(idx)
        return grouped

    def out_links(self) -> list[list[int]]:
        self._require_open()
        adjacency: list[list[int]] = [[] for _ in range(self.num_users)]
        for src, dst in self._links.tolist():
            adjacency[src].append(dst)
        return adjacency

    def in_links(self) -> list[list[int]]:
        self._require_open()
        adjacency: list[list[int]] = [[] for _ in range(self.num_users)]
        for src, dst in self._links.tolist():
            adjacency[dst].append(src)
        return adjacency

    def word_count_matrix(self) -> np.ndarray:
        """Dense ``(U, V)`` user-word counts, built from the unique CSR."""
        self._require_open()
        matrix = np.zeros((self.num_users, self.vocab_size), dtype=np.int64)
        offsets = self._arrays["unique_offsets"]
        per_post = np.diff(offsets)
        authors = np.repeat(self._post_authors, per_post)
        np.add.at(
            matrix,
            (authors, self._arrays["unique_words"]),
            self._arrays["unique_counts"],
        )
        return matrix

    def to_social_corpus(self) -> SocialCorpus:
        """Materialise the full in-RAM :class:`SocialCorpus` equivalent.

        O(posts) Python objects — only sensible at test/debug scale.  The
        result carries ``packed_source`` so the processes executor can
        warn when it is about to pickle data that is already packed on
        disk.
        """
        self._require_open()
        corpus = SocialCorpus(
            num_users=self.num_users,
            num_time_slices=self.num_time_slices,
            posts=list(self.posts),
            links=list(self.links),
            vocabulary=self.vocabulary,
            vocab_size=self.vocab_size,
        )
        corpus.packed_source = self.path
        return corpus

    def subset_posts(self, indices) -> SocialCorpus:
        """An in-RAM corpus of the selected posts (links unchanged)."""
        self._require_open()
        view = self.posts
        return SocialCorpus(
            num_users=self.num_users,
            num_time_slices=self.num_time_slices,
            posts=[view[int(i)] for i in indices],
            links=list(self.links),
            vocabulary=self.vocabulary,
            vocab_size=self.vocab_size,
        )

    def subset_links(self, indices) -> SocialCorpus:
        """An in-RAM corpus of the selected links (posts unchanged)."""
        self._require_open()
        links = self.links
        return SocialCorpus(
            num_users=self.num_users,
            num_time_slices=self.num_time_slices,
            posts=list(self.posts),
            links=[links[int(i)] for i in indices],
            vocabulary=self.vocabulary,
            vocab_size=self.vocab_size,
        )

    def describe(self) -> dict[str, int]:
        return {
            "users": self.num_users,
            "posts": self.num_posts,
            "words": self.num_words,
            "links": self.num_links,
            "vocab": self.vocab_size,
            "time_slices": self.num_time_slices,
        }

    def __repr__(self) -> str:
        stats = self.describe()
        inner = ", ".join(f"{key}={value}" for key, value in stats.items())
        return f"PackedCorpus({inner}, path={str(self.path)!r})"


def is_packed_file(path: str | Path) -> bool:
    """True iff ``path`` exists and starts with the coldpack magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
