"""JSONL persistence for corpora and retweet tuples.

A corpus is stored as one JSON-lines file with typed records::

    {"type": "header", "num_users": ..., "num_time_slices": ..., "vocab_size": ...}
    {"type": "vocab", "tokens": [...]}            # optional
    {"type": "post", "author": ..., "words": [...], "timestamp": ...}
    {"type": "link", "src": ..., "dst": ...}

The format is line-appendable and streams well, which is how real crawl
pipelines (the paper's Weibo streaming-API sampler) persist data.

Robustness contract: writers are atomic (temp file + ``os.replace`` via
:func:`repro.resilience.checkpoint.atomic_write`, so a crash mid-save never
leaves a half-written file), and loaders raise typed errors —
:class:`CorpusIOError` for malformed records,
:class:`~repro.datasets.corpus.CorpusValidationError` (a
:class:`~repro.datasets.corpus.CorpusError`) for out-of-range ids or
dangling link endpoints — never a bare ``KeyError``/``IndexError``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..resilience.checkpoint import atomic_write
from .cascades import RetweetTuple
from .corpus import CorpusError, CorpusValidationError, Post, SocialCorpus
from .vocabulary import Vocabulary


class CorpusIOError(ValueError):
    """Raised when a corpus file is malformed."""


class CorpusIOValidationError(CorpusIOError, CorpusValidationError):
    """A readable corpus file whose *contents* fail validation.

    Raised when the JSONL parses fine but carries out-of-range ids,
    dangling link endpoints, or similar; catchable both as an I/O problem
    (:class:`CorpusIOError`) and as a data problem
    (:class:`~repro.datasets.corpus.CorpusValidationError`).
    """


def _wrap_corpus_error(exc: CorpusError, message: str) -> CorpusIOError:
    """Preserve the validation flavour of ``exc`` while adding file context."""
    if isinstance(exc, CorpusValidationError):
        return CorpusIOValidationError(message)
    return CorpusIOError(message)


def _require_field(record: dict, key: str, path: Path, line_number: int):
    try:
        return record[key]
    except KeyError:
        raise CorpusIOError(
            f"{path}:{line_number}: {record.get('type', '?')} record "
            f"missing field {key!r}"
        ) from None


def _as_int(value, key: str, path: Path, line_number: int) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise CorpusIOError(
            f"{path}:{line_number}: field {key!r} is not an integer: {value!r}"
        ) from None


def save_corpus(corpus: SocialCorpus, path: str | Path) -> None:
    """Atomically write ``corpus`` to ``path`` in the JSONL format above."""
    path = Path(path)
    with atomic_write(path) as tmp:
        with tmp.open("w", encoding="utf-8") as handle:
            header = {
                "type": "header",
                "num_users": corpus.num_users,
                "num_time_slices": corpus.num_time_slices,
                "vocab_size": corpus.vocab_size,
            }
            handle.write(json.dumps(header) + "\n")
            if corpus.vocabulary is not None:
                record = {"type": "vocab", "tokens": corpus.vocabulary.to_list()}
                handle.write(json.dumps(record) + "\n")
            for post in corpus.posts:
                record = {
                    "type": "post",
                    "author": post.author,
                    "words": list(post.words),
                    "timestamp": post.timestamp,
                }
                handle.write(json.dumps(record) + "\n")
            for src, dst in corpus.links:
                handle.write(
                    json.dumps({"type": "link", "src": src, "dst": dst}) + "\n"
                )


def load_corpus(path: str | Path):
    """Read a corpus written by :func:`save_corpus` — or a packed one.

    Files are sniffed by content, not extension: a file starting with the
    ``.coldpack`` magic is opened as a memory-mapped
    :class:`~repro.datasets.packed.PackedCorpus` (same read surface, no
    materialisation), everything else is parsed as the JSONL format
    above into a :class:`SocialCorpus`.  This is what lets every CLI
    command accept either format for its corpus argument.

    Raises :class:`CorpusIOError` for malformed/truncated JSONL files and
    :class:`CorpusIOValidationError` for readable files whose ids are out
    of range (dangling links, bad word/user/time ids); packed files raise
    the typed errors of :mod:`repro.datasets.packed`.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no corpus file at {path}")
    from .packed import PackedCorpus, is_packed_file

    if is_packed_file(path):
        return PackedCorpus.open(path)
    header: dict | None = None
    vocabulary: Vocabulary | None = None
    posts: list[Post] = []
    links: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusIOError(f"{path}:{line_number}: invalid JSON") from exc
            if not isinstance(record, dict):
                raise CorpusIOError(
                    f"{path}:{line_number}: record is not a JSON object"
                )
            kind = record.get("type")
            if kind == "header":
                if header is not None:
                    raise CorpusIOError(f"{path}:{line_number}: duplicate header")
                header = record
                header_line = line_number
            elif kind == "vocab":
                tokens = _require_field(record, "tokens", path, line_number)
                if not isinstance(tokens, list):
                    raise CorpusIOError(
                        f"{path}:{line_number}: vocab tokens must be a list"
                    )
                vocabulary = Vocabulary.from_list(tokens)
            elif kind == "post":
                words = _require_field(record, "words", path, line_number)
                if not isinstance(words, list):
                    raise CorpusIOError(
                        f"{path}:{line_number}: post words must be a list"
                    )
                try:
                    posts.append(
                        Post(
                            author=_as_int(
                                _require_field(record, "author", path, line_number),
                                "author", path, line_number,
                            ),
                            words=tuple(
                                _as_int(w, "words", path, line_number) for w in words
                            ),
                            timestamp=_as_int(
                                _require_field(
                                    record, "timestamp", path, line_number
                                ),
                                "timestamp", path, line_number,
                            ),
                        )
                    )
                except CorpusError as exc:
                    raise _wrap_corpus_error(
                        exc, f"{path}:{line_number}: {exc}"
                    ) from exc
            elif kind == "link":
                links.append(
                    (
                        _as_int(
                            _require_field(record, "src", path, line_number),
                            "src", path, line_number,
                        ),
                        _as_int(
                            _require_field(record, "dst", path, line_number),
                            "dst", path, line_number,
                        ),
                    )
                )
            else:
                raise CorpusIOError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    if header is None:
        raise CorpusIOError(f"{path}: missing header record")
    for key in ("num_users", "num_time_slices"):
        if key not in header:
            raise CorpusIOError(f"{path}:{header_line}: header missing {key!r}")
    try:
        return SocialCorpus(
            num_users=_as_int(header["num_users"], "num_users", path, header_line),
            num_time_slices=_as_int(
                header["num_time_slices"], "num_time_slices", path, header_line
            ),
            posts=posts,
            links=links,
            vocabulary=vocabulary,
            vocab_size=_as_int(
                header.get("vocab_size", 0), "vocab_size", path, header_line
            ),
        )
    except CorpusError as exc:
        # Add file context; id-range/dangling-link failures stay catchable
        # as CorpusValidationError via CorpusIOValidationError.
        raise _wrap_corpus_error(exc, f"{path}: invalid corpus: {exc}") from exc


def save_retweet_tuples(tuples: list[RetweetTuple], path: str | Path) -> None:
    """Atomically write retweet tuples as JSONL."""
    path = Path(path)
    with atomic_write(path) as tmp:
        with tmp.open("w", encoding="utf-8") as handle:
            for t in tuples:
                record = {
                    "author": t.author,
                    "post_index": t.post_index,
                    "retweeters": list(t.retweeters),
                    "ignorers": list(t.ignorers),
                }
                handle.write(json.dumps(record) + "\n")


def load_retweet_tuples(path: str | Path) -> list[RetweetTuple]:
    """Read retweet tuples written by :func:`save_retweet_tuples`."""
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no retweet-tuple file at {path}")
    tuples: list[RetweetTuple] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusIOError(f"{path}:{line_number}: invalid JSON") from exc
            if not isinstance(record, dict):
                raise CorpusIOError(
                    f"{path}:{line_number}: record is not a JSON object"
                )
            for key in ("author", "post_index", "retweeters", "ignorers"):
                _require_field(record, key, path, line_number)
            tuples.append(
                RetweetTuple(
                    author=_as_int(record["author"], "author", path, line_number),
                    post_index=_as_int(
                        record["post_index"], "post_index", path, line_number
                    ),
                    retweeters=tuple(
                        _as_int(u, "retweeters", path, line_number)
                        for u in record["retweeters"]
                    ),
                    ignorers=tuple(
                        _as_int(u, "ignorers", path, line_number)
                        for u in record["ignorers"]
                    ),
                )
            )
    return tuples
