"""JSONL persistence for corpora and retweet tuples.

A corpus is stored as one JSON-lines file with typed records::

    {"type": "header", "num_users": ..., "num_time_slices": ..., "vocab_size": ...}
    {"type": "vocab", "tokens": [...]}            # optional
    {"type": "post", "author": ..., "words": [...], "timestamp": ...}
    {"type": "link", "src": ..., "dst": ...}

The format is line-appendable and streams well, which is how real crawl
pipelines (the paper's Weibo streaming-API sampler) persist data.
"""

from __future__ import annotations

import json
from pathlib import Path

from .cascades import RetweetTuple
from .corpus import CorpusError, Post, SocialCorpus
from .vocabulary import Vocabulary


class CorpusIOError(ValueError):
    """Raised when a corpus file is malformed."""


def save_corpus(corpus: SocialCorpus, path: str | Path) -> None:
    """Write ``corpus`` to ``path`` in the JSONL format above."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "type": "header",
            "num_users": corpus.num_users,
            "num_time_slices": corpus.num_time_slices,
            "vocab_size": corpus.vocab_size,
        }
        handle.write(json.dumps(header) + "\n")
        if corpus.vocabulary is not None:
            record = {"type": "vocab", "tokens": corpus.vocabulary.to_list()}
            handle.write(json.dumps(record) + "\n")
        for post in corpus.posts:
            record = {
                "type": "post",
                "author": post.author,
                "words": list(post.words),
                "timestamp": post.timestamp,
            }
            handle.write(json.dumps(record) + "\n")
        for src, dst in corpus.links:
            handle.write(json.dumps({"type": "link", "src": src, "dst": dst}) + "\n")


def load_corpus(path: str | Path) -> SocialCorpus:
    """Read a corpus written by :func:`save_corpus`."""
    path = Path(path)
    header: dict | None = None
    vocabulary: Vocabulary | None = None
    posts: list[Post] = []
    links: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusIOError(f"{path}:{line_number}: invalid JSON") from exc
            kind = record.get("type")
            if kind == "header":
                if header is not None:
                    raise CorpusIOError(f"{path}:{line_number}: duplicate header")
                header = record
            elif kind == "vocab":
                vocabulary = Vocabulary.from_list(record["tokens"])
            elif kind == "post":
                posts.append(
                    Post(
                        author=int(record["author"]),
                        words=tuple(int(w) for w in record["words"]),
                        timestamp=int(record["timestamp"]),
                    )
                )
            elif kind == "link":
                links.append((int(record["src"]), int(record["dst"])))
            else:
                raise CorpusIOError(
                    f"{path}:{line_number}: unknown record type {kind!r}"
                )
    if header is None:
        raise CorpusIOError(f"{path}: missing header record")
    try:
        return SocialCorpus(
            num_users=int(header["num_users"]),
            num_time_slices=int(header["num_time_slices"]),
            posts=posts,
            links=links,
            vocabulary=vocabulary,
            vocab_size=int(header.get("vocab_size", 0)),
        )
    except (KeyError, CorpusError) as exc:
        raise CorpusIOError(f"{path}: invalid corpus: {exc}") from exc


def save_retweet_tuples(tuples: list[RetweetTuple], path: str | Path) -> None:
    """Write retweet tuples as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for t in tuples:
            record = {
                "author": t.author,
                "post_index": t.post_index,
                "retweeters": list(t.retweeters),
                "ignorers": list(t.ignorers),
            }
            handle.write(json.dumps(record) + "\n")


def load_retweet_tuples(path: str | Path) -> list[RetweetTuple]:
    """Read retweet tuples written by :func:`save_retweet_tuples`."""
    path = Path(path)
    tuples: list[RetweetTuple] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorpusIOError(f"{path}:{line_number}: invalid JSON") from exc
            tuples.append(
                RetweetTuple(
                    author=int(record["author"]),
                    post_index=int(record["post_index"]),
                    retweeters=tuple(int(u) for u in record["retweeters"]),
                    ignorers=tuple(int(u) for u in record["ignorers"]),
                )
            )
    return tuples
