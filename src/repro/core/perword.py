"""Per-word-topic COLD variant — the §3.5 alternative, for ablation.

The paper argues (§3.3, §3.5) that on short social posts a *single* latent
topic per post beats LDA-style per-word topics: it preserves within-post
word correlation, resists noise, and cuts inference cost.  This module
implements the rejected alternative so the claim can be measured:

* each post still draws one community ``c_ij ~ pi_i``;
* each **word** draws its own topic ``z_ijl ~ theta_{c_ij}``;
* the post's time stamp is replicated per word (TOT's device) and drawn
  from ``psi_{z_ijl, c_ij}``, keeping the temporal component well-defined
  without a privileged post topic.

The network component is identical to COLD's.  Estimates are returned as a
standard :class:`~repro.core.estimates.ParameterEstimates`, so every
predictor and analysis in the repository runs unchanged on this variant —
which is exactly what the ablation bench needs.
"""

from __future__ import annotations

import numpy as np

from ..datasets.corpus import SocialCorpus
from .estimates import ParameterEstimates, average_estimates
from .gibbs import categorical
from .model import ModelError
from .params import Hyperparameters


class COLDPerWordModel:
    """COLD with LDA-style per-word topic assignments (ablation model).

    Mirrors :class:`~repro.core.model.COLDModel`'s interface: ``fit`` then
    ``estimates_``.  Only collapsed Gibbs internals differ.
    """

    def __init__(
        self,
        num_communities: int = 20,
        num_topics: int = 20,
        hyperparameters: Hyperparameters | None = None,
        include_network: bool = True,
        prior: str = "paper",
        seed: int = 0,
    ) -> None:
        if num_communities <= 0 or num_topics <= 0:
            raise ModelError("num_communities and num_topics must be positive")
        if prior not in ("paper", "scaled"):
            raise ModelError(f"prior must be 'paper' or 'scaled', got {prior!r}")
        self.num_communities = num_communities
        self.num_topics = num_topics
        self.hyperparameters = hyperparameters
        self.include_network = include_network
        self.prior = prior
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.estimates_: ParameterEstimates | None = None

    # -- fitting -----------------------------------------------------------------

    def fit(
        self,
        corpus: SocialCorpus,
        num_iterations: int = 100,
        burn_in: int | None = None,
        sample_interval: int = 5,
    ) -> "COLDPerWordModel":
        """Collapsed Gibbs over per-post communities, per-word topics, and
        per-link community pairs."""
        if num_iterations <= 0:
            raise ModelError("num_iterations must be positive")
        if burn_in is None:
            burn_in = num_iterations // 2
        if not 0 <= burn_in < num_iterations:
            raise ModelError("burn_in must lie in [0, num_iterations)")
        if sample_interval <= 0:
            raise ModelError("sample_interval must be positive")
        hp = self._resolve_hyperparameters(corpus)

        C, K = self.num_communities, self.num_topics
        U, T, V = corpus.num_users, corpus.num_time_slices, corpus.vocab_size
        D = corpus.num_posts

        # Flattened token table.
        post_of = np.concatenate(
            [np.full(len(p), d, dtype=np.int64) for d, p in enumerate(corpus.posts)]
        ) if D else np.zeros(0, np.int64)
        word_of = np.concatenate(
            [np.asarray(p.words, dtype=np.int64) for p in corpus.posts]
        ) if D else np.zeros(0, np.int64)
        post_author = np.asarray([p.author for p in corpus.posts], dtype=np.int64)
        post_time = np.asarray([p.timestamp for p in corpus.posts], dtype=np.int64)
        token_offsets = np.zeros(D + 1, dtype=np.int64)
        for d, p in enumerate(corpus.posts):
            token_offsets[d + 1] = token_offsets[d] + len(p)
        num_tokens = len(word_of)

        links = corpus.link_array() if self.include_network else np.zeros((0, 2), np.int64)
        E = len(links)

        post_comm = self._rng.integers(C, size=D)
        token_topic = self._rng.integers(K, size=num_tokens)
        src_comm = self._rng.integers(C, size=E)
        dst_comm = self._rng.integers(C, size=E)

        n_user_comm = np.zeros((U, C), dtype=np.int64)
        n_comm_topic = np.zeros((C, K), dtype=np.int64)  # per token
        n_comm_topic_time = np.zeros((C, K, T), dtype=np.int64)  # per token
        n_topic_word = np.zeros((K, V), dtype=np.int64)
        n_topic_total = np.zeros(K, dtype=np.int64)
        n_link_comm = np.zeros((C, C), dtype=np.int64)

        np.add.at(n_user_comm, (post_author, post_comm), 1)
        token_comm = post_comm[post_of]
        np.add.at(n_comm_topic, (token_comm, token_topic), 1)
        np.add.at(
            n_comm_topic_time, (token_comm, token_topic, post_time[post_of]), 1
        )
        np.add.at(n_topic_word, (token_topic, word_of), 1)
        np.add.at(n_topic_total, token_topic, 1)
        for e in range(E):
            n_user_comm[links[e, 0], src_comm[e]] += 1
            n_user_comm[links[e, 1], dst_comm[e]] += 1
            n_link_comm[src_comm[e], dst_comm[e]] += 1

        samples: list[ParameterEstimates] = []
        for iteration in range(1, num_iterations + 1):
            self._sweep_posts(
                hp, post_comm, token_topic, post_of, post_author, post_time,
                token_offsets, n_user_comm, n_comm_topic, n_comm_topic_time,
            )
            self._sweep_tokens(
                hp, post_comm, token_topic, post_of, word_of, post_time,
                n_comm_topic, n_comm_topic_time, n_topic_word, n_topic_total,
            )
            self._sweep_links(
                hp, links, src_comm, dst_comm, n_user_comm, n_link_comm
            )
            if iteration > burn_in and (iteration - burn_in) % sample_interval == 0:
                samples.append(
                    self._estimate(
                        hp, n_user_comm, n_comm_topic, n_comm_topic_time,
                        n_topic_word, n_topic_total, n_link_comm,
                    )
                )
        if not samples:
            samples.append(
                self._estimate(
                    hp, n_user_comm, n_comm_topic, n_comm_topic_time,
                    n_topic_word, n_topic_total, n_link_comm,
                )
            )
        self.hyperparameters = hp
        self.estimates_ = average_estimates(samples)
        return self

    # -- Gibbs phases ---------------------------------------------------------------

    def _sweep_posts(
        self, hp, post_comm, token_topic, post_of, post_author, post_time,
        token_offsets, n_user_comm, n_comm_topic, n_comm_topic_time,
    ) -> None:
        """Resample each post's community given its words' fixed topics.

        The conditional is a Polya (ascending-factorial) product over the
        post's topic multiset under ``theta_c`` and its per-token time
        draws under ``psi_.c`` — the per-word analogue of Eq. (1)."""
        K = n_comm_topic.shape[1]
        T = n_comm_topic_time.shape[2]
        D = len(post_comm)
        for d in range(D):
            lo, hi = token_offsets[d], token_offsets[d + 1]
            topics = token_topic[lo:hi]
            if len(topics) == 0:
                continue
            author, t = post_author[d], post_time[d]
            c_old = post_comm[d]
            unique, counts = np.unique(topics, return_counts=True)
            # Remove the post's contribution.
            n_user_comm[author, c_old] -= 1
            np.subtract.at(n_comm_topic[c_old], unique, counts)
            np.subtract.at(n_comm_topic_time[c_old, :, t], unique, counts)

            log_weights = np.log(n_user_comm[author] + hp.rho)
            comm_totals = n_comm_topic.sum(axis=1)
            length = counts.sum()
            # Ascending-factorial terms, vectorised over communities.
            for j, k in enumerate(unique):
                base_topic = n_comm_topic[:, k].astype(np.float64)
                base_time = n_comm_topic_time[:, k, t].astype(np.float64)
                time_total = n_comm_topic_time[:, k, :].sum(axis=1).astype(np.float64)
                for q in range(int(counts[j])):
                    log_weights += np.log(base_topic + q + hp.alpha)
                    log_weights += np.log(base_time + q + hp.epsilon)
                    log_weights -= np.log(time_total + q + T * hp.epsilon)
            for q in range(int(length)):
                log_weights -= np.log(comm_totals + q + K * hp.alpha)

            log_weights -= log_weights.max()
            c_new = categorical(np.exp(log_weights), self._rng)
            post_comm[d] = c_new
            n_user_comm[author, c_new] += 1
            np.add.at(n_comm_topic[c_new], unique, counts)
            np.add.at(n_comm_topic_time[c_new, :, t], unique, counts)

    def _sweep_tokens(
        self, hp, post_comm, token_topic, post_of, word_of, post_time,
        n_comm_topic, n_comm_topic_time, n_topic_word, n_topic_total,
    ) -> None:
        """LDA-style per-word topic updates conditioned on the community."""
        V = n_topic_word.shape[1]
        T = n_comm_topic_time.shape[2]
        for j in self._rng.permutation(len(token_topic)):
            d = post_of[j]
            c = post_comm[d]
            t = post_time[d]
            v = word_of[j]
            k = token_topic[j]
            n_comm_topic[c, k] -= 1
            n_comm_topic_time[c, k, t] -= 1
            n_topic_word[k, v] -= 1
            n_topic_total[k] -= 1
            weights = (
                (n_comm_topic[c] + hp.alpha)
                * (n_comm_topic_time[c, :, t] + hp.epsilon)
                / (n_comm_topic_time[c].sum(axis=1) + T * hp.epsilon)
                * (n_topic_word[:, v] + hp.beta)
                / (n_topic_total + V * hp.beta)
            )
            k = categorical(weights, self._rng)
            token_topic[j] = k
            n_comm_topic[c, k] += 1
            n_comm_topic_time[c, k, t] += 1
            n_topic_word[k, v] += 1
            n_topic_total[k] += 1

    def _sweep_links(
        self, hp, links, src_comm, dst_comm, n_user_comm, n_link_comm
    ) -> None:
        """Identical to COLD's Eq. (2) joint link updates."""
        C = self.num_communities
        for e in self._rng.permutation(len(links)):
            src, dst = links[e]
            c, c2 = src_comm[e], dst_comm[e]
            n_user_comm[src, c] -= 1
            n_user_comm[dst, c2] -= 1
            n_link_comm[c, c2] -= 1
            weights = (
                np.outer(n_user_comm[src] + hp.rho, n_user_comm[dst] + hp.rho)
                * (n_link_comm + hp.lambda1)
                / (n_link_comm + hp.lambda0 + hp.lambda1)
            ).ravel()
            index = categorical(weights, self._rng)
            c, c2 = divmod(index, C)
            src_comm[e], dst_comm[e] = c, c2
            n_user_comm[src, c] += 1
            n_user_comm[dst, c2] += 1
            n_link_comm[c, c2] += 1

    # -- estimation -------------------------------------------------------------------

    def _estimate(
        self, hp, n_user_comm, n_comm_topic, n_comm_topic_time,
        n_topic_word, n_topic_total, n_link_comm,
    ) -> ParameterEstimates:
        C, K = self.num_communities, self.num_topics
        V = n_topic_word.shape[1]
        T = n_comm_topic_time.shape[2]
        pi = (n_user_comm + hp.rho) / (
            n_user_comm.sum(axis=1, keepdims=True) + C * hp.rho
        )
        theta = (n_comm_topic + hp.alpha) / (
            n_comm_topic.sum(axis=1, keepdims=True) + K * hp.alpha
        )
        phi = (n_topic_word + hp.beta) / (n_topic_total[:, None] + V * hp.beta)
        counts_kct = n_comm_topic_time.transpose(1, 0, 2)
        psi = (counts_kct + hp.epsilon) / (
            counts_kct.sum(axis=2, keepdims=True) + T * hp.epsilon
        )
        eta = (n_link_comm + hp.lambda1) / (
            n_link_comm + hp.lambda0 + hp.lambda1
        )
        return ParameterEstimates(pi=pi, theta=theta, phi=phi, psi=psi, eta=eta)

    def _resolve_hyperparameters(self, corpus: SocialCorpus) -> Hyperparameters:
        if self.hyperparameters is not None:
            return self.hyperparameters
        network_corpus = corpus if self.include_network else None
        if self.prior == "scaled":
            return Hyperparameters.scaled(
                self.num_communities, self.num_topics, network_corpus
            )
        return Hyperparameters.default(
            self.num_communities, self.num_topics, network_corpus
        )

    @property
    def fitted(self) -> bool:
        return self.estimates_ is not None

    def __repr__(self) -> str:
        status = "fitted" if self.fitted else "unfitted"
        return (
            f"COLDPerWordModel(C={self.num_communities}, "
            f"K={self.num_topics}, {status})"
        )
