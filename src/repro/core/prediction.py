"""Prediction methods built on the extracted community-level patterns.

Implements the paper's three prediction tasks:

* **Diffusion prediction** (§5.2, Eqs. 5–7): will user ``i'`` retweet post
  ``d`` from user ``i``?  Two-stage: community-level diffusion probability
  (Eq. 4) combined with the users' community memberships, restricted to each
  user's ``TopComm`` (top-5 communities), with offline precomputation so the
  online cost is ``O(K |w_d|)``.
* **Time-stamp prediction** (§6.3): maximum-likelihood time slice of an
  unseen post.
* **Link prediction** (§6.2): ``P(i -> i') = sum_{s,s'} pi_is pi_i's' eta_ss'``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.corpus import Post
from .diffusion import zeta
from .estimates import ParameterEstimates


class PredictionError(ValueError):
    """Raised for invalid prediction requests."""


def top_communities(pi_row: np.ndarray, size: int) -> np.ndarray:
    """``TopComm(i)``: indices of the user's ``size`` strongest memberships.

    The paper fixes ``size = 5``, citing that users are typically active in
    a handful of communities [34].
    """
    if size <= 0:
        raise PredictionError(f"TopComm size must be positive, got {size}")
    size = min(size, len(pi_row))
    return np.argpartition(pi_row, -size)[-size:]


@dataclass
class _UserProfile:
    """Offline-precomputed per-user representation (§5.2 'offline filtering').

    ``communities`` is the user's TopComm; ``memberships`` the matching
    ``pi_ic`` weights; ``topic_preference`` is ``P(k | i)`` of Eq. (5)
    restricted to TopComm.
    """

    communities: np.ndarray
    memberships: np.ndarray
    topic_preference: np.ndarray


class DiffusionPredictor:
    """The §5.2 two-stage diffusion prediction method.

    Parameters
    ----------
    estimates:
        Fitted COLD parameter estimates.
    top_comm_size:
        ``|TopComm|`` truncation (paper uses 5).
    """

    def __init__(self, estimates: ParameterEstimates, top_comm_size: int = 5) -> None:
        estimates.validate()
        self.estimates = estimates
        self.top_comm_size = top_comm_size
        self._zeta = zeta(estimates)  # (K, C, C)
        self._log_phi = np.log(estimates.phi + 1e-300)
        self._profiles = [
            self._build_profile(i) for i in range(estimates.num_users)
        ]
        # Stacked TopComm tables for the vectorised online path (§5.2's
        # offline filtering): communities (U, S) and memberships (U, S).
        size = min(top_comm_size, estimates.num_communities)
        self._top_communities = np.stack(
            [p.communities[:size] for p in self._profiles]
        )
        self._top_memberships = np.stack(
            [p.memberships[:size] for p in self._profiles]
        )

    def _build_profile(self, user: int) -> _UserProfile:
        pi_row = self.estimates.pi[user]
        communities = top_communities(pi_row, self.top_comm_size)
        memberships = pi_row[communities]
        # P(k | i) ∝ sum_{c in TopComm} pi_ic theta_ck   (Eq. 5's prior part)
        preference = memberships @ self.estimates.theta[communities]
        total = preference.sum()
        if total > 0:
            preference = preference / total
        return _UserProfile(
            communities=communities,
            memberships=memberships,
            topic_preference=preference,
        )

    # -- Eq. (5): topic posterior of a post ------------------------------------

    def topic_posterior(self, words: tuple[int, ...] | list[int], author: int) -> np.ndarray:
        """``P(k | d, i) ∝ prod_l phi_k,w_l * P(k | i)`` (Eq. 5), normalised."""
        if not words:
            raise PredictionError("post must contain at least one word")
        if not 0 <= author < self.estimates.num_users:
            raise PredictionError(f"author {author} out of range")
        log_like = self._log_phi[:, list(words)].sum(axis=1)
        prior = self._profiles[author].topic_preference
        log_post = log_like + np.log(prior + 1e-300)
        log_post -= log_post.max()
        weights = np.exp(log_post)
        return weights / weights.sum()

    # -- Eq. (6): per-topic user-to-user influence ------------------------------

    def topic_influence(self, source: int, target: int) -> np.ndarray:
        """``P(i, i' | k)`` for all topics, via TopComm-restricted Eq. (6)."""
        src = self._profiles[source]
        dst = self._profiles[target]
        # zeta restricted to the two TopComm sets: (K, |src|, |dst|)
        restricted = self._zeta[:, src.communities[:, None], dst.communities[None, :]]
        weights = np.outer(src.memberships, dst.memberships)  # (|src|, |dst|)
        return np.einsum("kab,ab->k", restricted, weights)

    # -- Eq. (7): final diffusion probability -----------------------------------

    def diffusion_probability(
        self, source: int, target: int, words: tuple[int, ...] | list[int]
    ) -> float:
        """``P(i, i', d) = sum_k P(k | d, i) P(i, i' | k)`` (Eq. 7)."""
        posterior = self.topic_posterior(words, source)
        influence = self.topic_influence(source, target)
        return float(posterior @ influence)

    def source_fold(self, source: int) -> np.ndarray:
        """The source's community profile folded into zeta, ``(K, C)``.

        ``source_fold[k, c'] = sum_{c in TopComm(i)} pi_ic zeta_kcc'`` —
        the per-source half of :meth:`score_candidates`, exposed so a
        serving layer can cache it per hot user and amortise it across
        requests (it depends only on the source, not the post or the
        candidates).
        """
        if not 0 <= source < self.estimates.num_users:
            raise PredictionError(f"source {source} out of range")
        src = self._profiles[source]
        return np.einsum(
            "a,kad->kd", src.memberships, self._zeta[:, src.communities, :]
        )

    def score_candidates(
        self,
        source: int,
        candidates: list[int],
        words: tuple[int, ...] | list[int],
        source_fold: np.ndarray | None = None,
    ) -> np.ndarray:
        """Diffusion scores of one post against many candidate retweeters.

        The online path whose cost Figure 15 measures: the Eq. (5)
        posterior is computed once, the source's community profile is
        folded into zeta once (or passed in precomputed via
        ``source_fold`` — see :meth:`source_fold`), and every candidate
        reduces to a gather plus a weighted linear combination —
        ``O(K |w_d| + N K S)`` total.
        """
        posterior = self.topic_posterior(words, source)
        if source_fold is None:
            source_fold = self.source_fold(source)
        targets = np.asarray(candidates, dtype=np.int64)
        if targets.size and (
            targets.min() < 0 or targets.max() >= self.estimates.num_users
        ):
            raise PredictionError("candidate index out of range")
        dst_comms = self._top_communities[targets]  # (N, S)
        dst_weights = self._top_memberships[targets]  # (N, S)
        # influence[n, k] = sum_b dst_weights[n, b] source_fold[k, dst_comms[n, b]]
        gathered = source_fold[:, dst_comms]  # (K, N, S)
        influence = np.einsum("kns,ns->nk", gathered, dst_weights)
        return influence @ posterior


def link_probability(
    estimates: ParameterEstimates,
    source: int | np.ndarray,
    target: int | np.ndarray,
) -> np.ndarray:
    """Link prediction ``P(i -> i') = sum_{s,s'} pi_is pi_i's' eta_ss'`` (§6.2).

    Accepts scalars or equal-length index arrays; returns an array of
    probabilities (scalar inputs give a 0-d array).
    """
    source = np.atleast_1d(np.asarray(source, dtype=np.int64))
    target = np.atleast_1d(np.asarray(target, dtype=np.int64))
    if source.shape != target.shape:
        raise PredictionError("source and target index arrays must match")
    weighted = estimates.pi[source] @ estimates.eta  # (N, C)
    return np.einsum("nc,nc->n", weighted, estimates.pi[target])


def predict_timestamp(
    estimates: ParameterEstimates, post: Post
) -> int:
    """Maximum-likelihood time slice of an unseen post (§6.3).

    ``t_hat = argmax_t sum_c pi_ic sum_k theta_ck psi_kct prod_l phi_k,w_l``.
    """
    scores = timestamp_scores(estimates, post)
    return int(scores.argmax())


def timestamp_scores(estimates: ParameterEstimates, post: Post) -> np.ndarray:
    """Unnormalised per-slice likelihoods behind :func:`predict_timestamp`."""
    log_word = np.log(estimates.phi[:, list(post.words)] + 1e-300).sum(axis=1)
    word_like = np.exp(log_word - log_word.max())  # (K,)
    pi_row = estimates.pi[post.author]  # (C,)
    # mixture[c, k] = pi_ic * theta_ck * word_like_k
    mixture = pi_row[:, None] * estimates.theta * word_like[None, :]
    # scores[t] = sum_{c,k} mixture[c, k] * psi[k, c, t]
    return np.einsum("ck,kct->t", mixture, estimates.psi)


def batch_timestamp_scores(
    estimates: ParameterEstimates,
    authors: list[int] | np.ndarray,
    words_per_post: list[tuple[int, ...] | list[int]],
) -> np.ndarray:
    """Per-slice likelihoods for a batch of unseen posts, ``(N, T)``.

    The vectorised batch form of :func:`timestamp_scores`: the per-word
    log-likelihoods of every post are computed in one ``(K, total_words)``
    gather and reduced per post with ``np.add.reduceat``, then the
    ``pi``/``theta``/``psi`` mixture contracts over the whole batch in a
    single einsum.  Row ``n`` equals ``timestamp_scores`` on post ``n`` up
    to the per-post positive rescaling that ``argmax`` ignores.
    """
    authors = np.asarray(authors, dtype=np.int64)
    if authors.ndim != 1 or len(authors) != len(words_per_post):
        raise PredictionError("authors and words_per_post lengths must match")
    if len(authors) == 0:
        return np.zeros((0, estimates.num_time_slices))
    if authors.min() < 0 or authors.max() >= estimates.num_users:
        raise PredictionError("author index out of range")
    lengths = [len(words) for words in words_per_post]
    if min(lengths) == 0:
        raise PredictionError("every post must contain at least one word")
    flat = np.concatenate([np.asarray(w, dtype=np.int64) for w in words_per_post])
    if flat.min() < 0 or flat.max() >= estimates.vocab_size:
        raise PredictionError("word id out of range")
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    log_words = np.log(estimates.phi[:, flat] + 1e-300)  # (K, total)
    per_post = np.add.reduceat(log_words, offsets, axis=1)  # (K, N)
    word_like = np.exp(per_post - per_post.max(axis=0, keepdims=True))
    return np.einsum(
        "nc,ck,kn,kct->nt",
        estimates.pi[authors],
        estimates.theta,
        word_like,
        estimates.psi,
        optimize=True,
    )


def post_probability(
    estimates: ParameterEstimates, words: tuple[int, ...] | list[int], author: int
) -> float:
    """Held-out word probability used by perplexity (§6.2):

    ``p(w_d) = sum_c pi_ic sum_k theta_ck prod_l phi_k,w_l``.

    Returned in natural-log space to avoid underflow on long posts.
    """
    if not words:
        raise PredictionError("post must contain at least one word")
    log_word = np.log(estimates.phi[:, list(words)] + 1e-300).sum(axis=1)  # (K,)
    max_log = log_word.max()
    word_like = np.exp(log_word - max_log)
    mixture = float(estimates.pi[author] @ estimates.theta @ word_like)
    return max_log + float(np.log(max(mixture, 1e-300)))
