"""Cached, vectorised collapsed-Gibbs sweep — the fast path.

The reference kernels in :mod:`repro.core.gibbs` re-derive every factor of
Eqs. (1)–(3) from the raw counters on each draw: per post that is ``O(C K)``
/ ``O(K T)`` integer reduction work plus ``O(K (W + L))`` fresh ``log``
evaluations, wrapped in dozens of small NumPy calls whose dispatch overhead
dominates sweep time well before the corpus is large.  This module keeps a
:class:`SweepCache` of exactly those factors and patches it incrementally
as assignments move:

* **fused per-sweep weight caches** — the Eq. (3) community/time factor is
  one ``(C, K, T)`` array (``log interest + log time numerator - log time
  denominator``, so a post's topic weights start from a single gather); the
  Eq. (1) denominators and the Eq. (2) link factor are cached the same way
  and refreshed only when a counter they read changes;
* **batched word evaluation** — a post's word term is one matrix gather +
  row reduction over its unique words, never a per-word Python loop;
* **reusable draw buffer** — each categorical draw accumulates into a
  preallocated buffer (``np.add.accumulate``) and does one
  ``searchsorted``, calling raw ufuncs to skip wrapper dispatch;
* **sparse cell iteration** — cache construction fills cold (community,
  topic) cells with the shared zero-count value and computes real rows
  only for :meth:`CountState.active_comm_topic_cells`;
* **virtual removal** — removing a post before evaluating its conditional
  only perturbs the weight entries indexed by its *current* assignment, so
  the post kernel evaluates against the live counters and patches that
  single entry with a scalar correction.  State and caches are then
  mutated only when the draw actually moves the post (a minority of draws
  once the chain has mixed), via the net-delta
  :meth:`CountState.move_post`.  Links change label on nearly every draw
  (their C x C conditional is much flatter), so the link kernel removes
  for real and wins through the cached Eq. (2) factor instead.

Exactness contract
------------------
The fast kernels are *bit-identical* to the reference kernels: every
cached value is produced by the same sequence of IEEE-754 operations the
reference applies to the same integer counters (integer totals replace
integer reductions; additions are fused only where IEEE addition order is
preserved), reductions keep the reference's pairwise-summation order
(``np.add.reduce`` is exactly what ``ndarray.sum`` calls), and the RNG is
consumed identically — one uniform per draw, the same uniform fallback on
degenerate weights.  A fixed seed therefore yields the same chain, draw
for draw; ``tests/test_fastgibbs.py`` enforces this and the perf harness
re-checks it on every run.  The reference kernels remain the oracle;
``fast=False`` selects them anywhere a model is built.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..telemetry import profiler as _profiler
from ..telemetry import tracing as trace
from .gibbs import _WEIGHT_FLOOR
from .params import Hyperparameters
from .state import CountState

#: Clamp applied to never-read negative-argument entries of the extended
#: Polya denominator rows before the log (keeps them finite, warning-free).
_LOG_CLAMP = 1e-300


class SweepCache:
    """Incrementally-maintained per-sweep factor caches for one chain.

    A cache is bound to one :class:`CountState` *and* one
    :class:`Hyperparameters`; it must observe every assignment move via
    :meth:`post_moved` / :meth:`link_moved` (the fast kernels do this).
    :meth:`check_consistency` verifies the cache against a from-scratch
    rebuild, mirroring :meth:`CountState.check_invariants`.
    """

    def __init__(self, state: CountState, hp: Hyperparameters) -> None:
        with trace.span("sweepcache.build"), _profiler.phase("cache_build"):
            self._build(state, hp)

    def _build(self, state: CountState, hp: Hyperparameters) -> None:
        self.hp = hp
        C = state.num_communities
        K = state.num_topics
        self.C = C
        self.K = K
        self.T = state.n_comm_topic_time.shape[2]
        self.V = state.n_topic_word.shape[1]
        lengths = state.posts.lengths
        self.max_len = int(lengths.max()) if len(lengths) else 1
        self._arange_ext = np.arange(
            -self.max_len, self.max_len, dtype=np.int64
        )
        self._bind_counters(state)

        # -- per-post metadata and scratch buffers -----------------------------
        # Posts whose words are all distinct take the batched word path; the
        # rest get precomputed (word-column, ascending-q) expansions so the
        # Polya loop runs as one sequential np.add.accumulate (the same
        # left-to-right accumulation order as the reference loop).
        self._all_distinct = self._distinct_word_flags(state).tolist()
        self._expanded = self._expand_repeated_posts(state)
        # Per-post/link metadata as plain Python lists (and the current
        # assignments mirrored alongside them): list indexing is several
        # times cheaper than NumPy scalar reads on the per-draw hot path.
        # The mirrors are maintained by post_moved / the link kernel, which
        # every fast kernel already routes through.
        posts = state.posts
        self._times = posts.times.tolist()
        self._authors = posts.authors.tolist()
        self._lengths = posts.lengths.tolist()
        self._post_words = [posts.words_of(p) for p in range(len(posts))]
        self._link_users = state.links.tolist()
        self._bind_assignments(state)
        self._cum_comm = np.empty(C, dtype=np.float64)
        self._cum_topic = np.empty(K, dtype=np.float64)
        self._topic_buf = np.empty(K, dtype=np.float64)
        self._cum_pair = np.empty(C * C, dtype=np.float64)
        self._denom_int = np.empty(2 * self.max_len, dtype=np.int64)
        self._log3 = np.empty(3, dtype=np.float64)
        self._kw_bufs: dict[int, np.ndarray] = {}
        self._int_bufs: dict[int, np.ndarray] = {}
        self._flt_bufs: dict[int, np.ndarray] = {}
        self._comm_buf = np.empty(C, dtype=np.float64)
        self._factor_buf = np.empty(C, dtype=np.float64)
        self._pair_buf = np.empty((C, C), dtype=np.float64)
        self._K_alpha = K * hp.alpha
        self._T_eps = self.T * hp.epsilon
        self._V_beta = self.V * hp.beta

    def refresh(self, state: CountState) -> None:
        """Rebind to ``state``'s current counters and assignments.

        ``state`` must hold the same corpus (post table and links) the
        cache was built from; only its counters and assignment arrays may
        differ.  Every corpus-static structure — the repeated-word
        expansions, per-post metadata lists, scratch buffers — is reused,
        and the counter-derived factor caches are recomputed with the
        exact operation sequence of a fresh build, so the refreshed cache
        is bit-identical to ``SweepCache(state, hp)`` at roughly a tenth
        of the cost.  The parallel workers call this once per superstep
        after resetting their private counters to the merged snapshot,
        which is what makes per-shard dispatch overhead scale with the
        shard instead of the corpus.
        """
        with trace.span("sweepcache.refresh"), _profiler.phase(
            "cache_refresh"
        ):
            self._bind_counters(state)
            self._bind_assignments(state)

    def _bind_counters(self, state: CountState) -> None:
        """(Re)compute every counter-derived factor cache from ``state``."""
        hp = self.hp
        C = self.C
        K = self.K

        # -- Eq. (1) factors ---------------------------------------------------
        # n_c^(.) totals as exact integers, plus the interest denominator
        # (n_c^(.) + K alpha) and temporal denominator (n_c^(k) + T eps)
        # as ready-to-divide floats.
        self.n_comm_total = state.n_comm_topic.sum(axis=1)
        self.comm_denom = self.n_comm_total + K * hp.alpha
        self.time_denom = state.n_comm_topic + self.T * hp.epsilon

        # -- Eq. (3) fused community/time factor -------------------------------
        # base[c, t, k] = log(n_c^k + alpha)
        #               + (log(n_ck^t + eps) - log(n_ck^(.) + T eps)),
        # evaluated in the reference's association order.  The (C, T, K)
        # layout makes the per-post gather ``base[c, t]`` one contiguous
        # row.  Cold (c, k) cells share the zero-count value; only active
        # cells get real rows (CountState.active_comm_topic_cells).
        self.log_temporal = np.full(
            (C, self.T, K), np.log(hp.epsilon), dtype=np.float64
        )
        log_eps = np.log(hp.epsilon)
        cold_base = np.log(hp.alpha) + (log_eps - np.log(self.T * hp.epsilon))
        self.base = np.full((C, self.T, K), cold_base, dtype=np.float64)
        cs, ks = state.active_comm_topic_cells()
        if len(cs):
            rows = np.log(state.n_comm_topic_time[cs, ks, :] + hp.epsilon)
            self.log_temporal[cs, :, ks] = rows
            interest = np.log(state.n_comm_topic[cs, ks] + hp.alpha)
            denom = np.log(state.n_comm_topic[cs, ks] + self.T * hp.epsilon)
            self.base[cs, :, ks] = interest[:, None] + (rows - denom[:, None])

        # -- Eq. (3) Polya length denominator ----------------------------------
        # Row k holds log(n_k^(.) + o + V beta) for offsets o in
        # [-max_len, max_len): a post of length L reduces the slice at
        # offset 0 for its live denominator and the slice at offset -L for
        # its removed-state denominator (a post of length L in topic k
        # guarantees n_k^(.) >= L, so every read entry has a non-negative
        # integer argument; unread negative-argument entries are clamped
        # to a tiny positive before the log purely to keep it finite and
        # warning-free).  The integer-first addition order is preserved.
        terms = (
            state.n_topic_total[:, None]
            + self._arange_ext[None, :]
            + self.V * hp.beta
        )
        np.maximum(terms, _LOG_CLAMP, out=terms)
        self.log_denom_terms = np.log(terms)

        # -- Eq. (3) word-count mirror -----------------------------------------
        # Transposed copy of ``n_topic_word``: a post's gather becomes one
        # contiguous (K,)-row read per unique word instead of K scattered
        # element reads, which is most of the eval's memory traffic.
        self.word_topic = np.ascontiguousarray(state.n_topic_word.T)

        # -- Eq. (2) link factor ----------------------------------------------
        self.link_factor = (state.n_link_comm + hp.lambda1) / (
            state.n_link_comm + hp.lambda0 + hp.lambda1
        )

    def _bind_assignments(self, state: CountState) -> None:
        """Remirror the current assignments into the hot-path lists."""
        self._post_c = state.post_comm.tolist()
        self._post_k = state.post_topic.tolist()
        self._link_c = state.link_src_comm.tolist()
        self._link_cp = state.link_dst_comm.tolist()

    @staticmethod
    def _distinct_word_flags(state: CountState) -> np.ndarray:
        """``flags[p]`` is true iff post ``p`` has no repeated word."""
        posts = state.posts
        flags = np.ones(len(posts), dtype=bool)
        if len(posts.unique_counts):
            spans = np.diff(posts.offsets)
            owners = np.repeat(np.arange(len(posts)), spans)
            flags[owners[posts.unique_counts > 1]] = False
        return flags

    def _expand_repeated_posts(
        self, state: CountState
    ) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """``post -> (words, q column, multiplicities)`` for repeated-word posts.

        Each post with a repeated word expands its multiset into ``L``
        (vocab word, ascending ``q``, multiplicity) triples in the
        reference loop's (word, q) order, so its Polya numerator becomes
        one batched gather + sequential accumulate at eval time (``q`` is
        stored as an ``(L, 1)`` column, ready to broadcast across topics;
        the multiplicities are what virtual removal subtracts from the
        gathered ``old_k`` column).
        """
        expansions: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for post, distinct in enumerate(self._all_distinct):
            if distinct:
                continue
            words, counts = state.posts.words_of(post)
            rows = np.repeat(np.arange(len(counts)), counts)
            qs = np.concatenate([np.arange(int(m)) for m in counts])
            expansions[post] = (words[rows], qs[:, None], counts[rows])
        return expansions

    # -- weight evaluation (bit-identical to repro.core.gibbs) ----------------

    def community_weights(
        self, state: CountState, post: int, topic: int
    ) -> np.ndarray:
        """Eq. (1) over communities; cf. ``gibbs.post_community_weights``.

        The reference's two integer reductions (topic totals, time-slice
        totals) are replaced by the maintained ``n_comm_total`` and by
        ``n_comm_topic[:, topic]`` (equal by the counter invariant); both
        are integer-exact, so every float factor matches bit for bit.
        """
        hp = self.hp
        author = self._authors[post]
        t = self._times[post]
        weights = np.add(state.n_user_comm[author], hp.rho, self._comm_buf)
        factor = np.add(state.n_comm_topic[:, topic], hp.alpha, self._factor_buf)
        np.divide(factor, self.comm_denom, factor)
        np.multiply(weights, factor, weights)
        np.add(state.n_comm_topic_time[:, topic, t], hp.epsilon, factor)
        np.divide(factor, self.time_denom[:, topic], factor)
        np.multiply(weights, factor, weights)
        return weights

    def topic_log_weights(
        self, state: CountState, post: int, community: int, old_c: int, old_k: int
    ) -> np.ndarray:
        """Eq. (3) over topics with ``post`` virtually removed from
        (old_c, old_k); cf. ``gibbs.post_topic_log_weights``.

        The community/time factor is a single gather from the fused
        ``base`` cache; the word term is one matrix gather + row
        reduction; the length denominator is a cached-row reduction.
        Virtual removal costs three patches: the post's own counts come
        off row ``old_k`` of the gathered word-count matrix (making the
        batched numerator exact for every topic at once), and the
        ``old_k`` entries of the Polya denominator and — when ``community
        == old_c`` — the base cell are rebuilt from the decremented
        integers.
        """
        hp = self.hp
        t = self._times[post]
        base = self.base[community, t]
        if self._all_distinct[post]:
            # The reference reduces a C-contiguous (K, W) matrix row-wise
            # (pairwise order); writing the transposed gather into a
            # C-contiguous (K, W) buffer reproduces that exact reduction.
            words, counts = self._post_words[post]
            gathered = self.word_topic.take(words, axis=0)  # (W, K) rows
            gathered[:, old_k] -= counts
            W = len(words)
            buf = self._kw_bufs.get(W)
            if buf is None:
                buf = self._kw_bufs[W] = np.empty((self.K, W))
            terms = np.add(gathered.T, hp.beta, buf)
            np.log(terms, terms)
            numerator = np.add.reduce(terms, 1)
        else:
            # Reference loop order is (word column j, then q ascending);
            # the precomputed expansion lays the terms out in exactly that
            # order, and np.add.accumulate reduces them strictly left to
            # right — the same float accumulation the loop performs
            # (sequential accumulation commutes with the transpose).
            # Virtual removal subtracts the multiplicities from the old_k
            # column: (live + q) - m == (live - m) + q, integer-exact.
            full_words, qs_col, mults = self._expanded[post]
            ints = self.word_topic.take(full_words, axis=0)  # (L, K)
            np.add(ints, qs_col, ints)
            ints[:, old_k] -= mults
            terms = ints + hp.beta
            np.log(terms, terms)
            np.add.accumulate(terms, 0, None, terms)
            numerator = terms[-1]
        length = self._lengths[post]
        M = self.max_len
        denominator = np.add.reduce(self.log_denom_terms[:, M : M + length], 1)
        weights = np.add(base, numerator)
        np.subtract(weights, denominator, weights)

        # Patch entry old_k from the removed-state integers (scalar IEEE
        # arithmetic is the elementwise arithmetic of the vector ops).
        # The removed-state Polya denominator is the cached row's window at
        # offset -length (same terms, same pairwise reduction order).
        den = np.add.reduce(self.log_denom_terms[old_k, M - length : M])
        if community == old_c:
            # The (old_c, old_k) base cell is the one perturbed by removal;
            # rebuild it from the decremented counters (same 3 logs as
            # _touch_comm_cell).
            n_ck = int(state.n_comm_topic[old_c, old_k]) - 1
            logs = self._log3
            logs[0] = n_ck + hp.alpha
            logs[1] = n_ck + self._T_eps
            logs[2] = (int(state.n_comm_topic_time[old_c, old_k, t]) - 1) + hp.epsilon
            np.log(logs, logs)
            base_val = logs[0] + (logs[2] - logs[1])
        else:
            base_val = base[old_k]
        weights[old_k] = (base_val + numerator[old_k]) - den
        return weights

    def link_weights(self, state: CountState, link: int) -> np.ndarray:
        """Eq. (2) over (c, c') pairs; cf. ``gibbs.link_weights``."""
        hp = self.hp
        src, dst = state.links[link]
        src_membership = np.add(state.n_user_comm[src], hp.rho, self._comm_buf)
        dst_membership = np.add(state.n_user_comm[dst], hp.rho, self._factor_buf)
        weights = self._pair_buf
        np.multiply(src_membership[:, None], dst_membership[None, :], weights)
        np.multiply(weights, self.link_factor, weights)
        return weights

    # -- virtual-removal corrections ------------------------------------------
    # Removing a post decrements only counters indexed by its current
    # (old_c, old_k): evaluating Eq. (1)/(3) on the live counters therefore
    # yields the reference's removed-state weight vector everywhere except
    # that one entry, which these helpers recompute from the decremented
    # integers with the reference's exact operation order (scalar IEEE-754
    # arithmetic is the elementwise arithmetic of the vector ops).

    def corrected_community_entry(
        self, state: CountState, post: int, old_c: int, old_k: int
    ) -> float:
        """``community_weights(...)[old_c]`` as if the post were removed."""
        hp = self.hp
        t = self._times[post]
        n_ck = int(state.n_comm_topic[old_c, old_k]) - 1
        membership = (
            int(state.n_user_comm[self._authors[post], old_c]) - 1
        ) + hp.rho
        interest = (n_ck + hp.alpha) / (
            (int(self.n_comm_total[old_c]) - 1) + self._K_alpha
        )
        temporal = (
            (int(state.n_comm_topic_time[old_c, old_k, t]) - 1) + hp.epsilon
        ) / (n_ck + self._T_eps)
        return (membership * interest) * temporal

    # -- categorical draw with a reusable buffer ------------------------------

    def draw(
        self, weights: np.ndarray, rng: np.random.Generator, buffer: np.ndarray
    ) -> tuple[int, bool]:
        """Identical to ``gibbs.categorical_checked`` minus the overhead.

        ``np.add.reduce`` / ``np.add.accumulate`` are the inner loops of
        ``sum`` / ``cumsum``; calling them directly into the preallocated
        same-length ``buffer`` skips wrapper dispatch and allocation
        without changing a bit of the result.
        """
        total = np.add.reduce(weights)
        if not math.isfinite(total) or total <= 0:
            return int(rng.integers(len(weights))), True
        np.add.accumulate(weights, 0, None, buffer)
        index = int(buffer.searchsorted(rng.random() * total, side="right"))
        last = len(buffer) - 1
        return (index if index < last else last), False

    # -- incremental maintenance ----------------------------------------------

    def _touch_comm_cell(self, state: CountState, t: int, c: int, k: int) -> None:
        """Refresh the Eq. (1)/(3) factors that read cell (c, k) at slice t."""
        hp = self.hp
        n_ck = int(state.n_comm_topic[c, k])
        denom_arg = n_ck + self._T_eps
        logs = self._log3
        logs[0] = n_ck + hp.alpha
        logs[1] = denom_arg
        logs[2] = int(state.n_comm_topic_time[c, k, t]) + hp.epsilon
        np.log(logs, logs)
        self.comm_denom[c] = int(self.n_comm_total[c]) + self._K_alpha
        self.time_denom[c, k] = denom_arg
        self.log_temporal[c, t, k] = logs[2]
        row = self.base[c, :, k]
        np.subtract(self.log_temporal[c, :, k], logs[1], row)
        np.add(row, logs[0], row)

    def _touch_topic_row(self, state: CountState, k: int) -> None:
        """Refresh the Polya denominator row of topic k (n_k^(.) changed)."""
        ints = np.add(self._arange_ext, state.n_topic_total[k], self._denom_int)
        terms = self.log_denom_terms[k]
        np.add(ints, self._V_beta, terms)
        np.maximum(terms, _LOG_CLAMP, out=terms)
        np.log(terms, terms)

    def post_moved(
        self,
        state: CountState,
        post: int,
        old_c: int,
        old_k: int,
        new_c: int,
        new_k: int,
    ) -> None:
        """Observe ``state.move_post(post, new_c, new_k)`` from (old_c, old_k).

        Only the two touched (community, topic) cells — and, if the topic
        changed, the two Polya denominator rows — need refreshing; a post
        that does not move never reaches this method at all (the virtual
        removal leaves every counter and cache entry as-is).
        """
        t = self._times[post]
        self._post_c[post] = new_c
        self._post_k[post] = new_k
        if new_c != old_c:
            self.n_comm_total[old_c] -= 1
            self.n_comm_total[new_c] += 1
        self._touch_comm_cell(state, t, old_c, old_k)
        self._touch_comm_cell(state, t, new_c, new_k)
        if new_k != old_k:
            words, counts = self._post_words[post]
            self.word_topic[words, old_k] -= counts
            self.word_topic[words, new_k] += counts
            self._touch_topic_row(state, old_k)
            self._touch_topic_row(state, new_k)

    def link_moved(self, state: CountState, c: int, c_prime: int) -> None:
        """Observe one link leaving or entering the (c, c') cell."""
        hp = self.hp
        n = int(state.n_link_comm[c, c_prime])
        self.link_factor[c, c_prime] = (n + hp.lambda1) / (
            n + hp.lambda0 + hp.lambda1
        )

    # -- verification ----------------------------------------------------------

    def check_consistency(self, state: CountState) -> None:
        """Verify every cache against a from-scratch rebuild (tests/debug)."""
        fresh = SweepCache(state, self.hp)
        for name in (
            "n_comm_total",
            "comm_denom",
            "time_denom",
            "log_temporal",
            "base",
            "log_denom_terms",
            "link_factor",
            "word_topic",
        ):
            if not np.array_equal(getattr(self, name), getattr(fresh, name)):
                raise ValueError(f"SweepCache.{name} inconsistent with state")


# -- fast kernels (mirror resample_post / resample_link / sweep) --------------


def fast_resample_post(
    state: CountState,
    hp: Hyperparameters,
    post: int,
    rng: np.random.Generator,
    cache: SweepCache,
) -> tuple[int, int]:
    """Cached-equivalent of :func:`repro.core.gibbs.resample_post`.

    The post is removed *virtually*: weights are evaluated against the
    live counters and the single entry its current assignment perturbs is
    patched with the removed-state scalar.  Counters and caches mutate
    only when the draw lands somewhere new.
    """
    old_c = cache._post_c[post]
    old_k = cache._post_k[post]

    community_weights = cache.community_weights(state, post, old_k)
    community_weights[old_c] = cache.corrected_community_entry(
        state, post, old_c, old_k
    )
    np.maximum(community_weights, _WEIGHT_FLOOR, out=community_weights)
    new_c, degenerate_c = cache.draw(community_weights, rng, cache._cum_comm)

    log_weights = cache.topic_log_weights(state, post, new_c, old_c, old_k)
    np.subtract(log_weights, np.maximum.reduce(log_weights), log_weights)
    np.exp(log_weights, log_weights)
    np.maximum(log_weights, _WEIGHT_FLOOR, out=log_weights)
    new_k, degenerate_k = cache.draw(log_weights, rng, cache._cum_topic)
    state.degenerate_draws += int(degenerate_c) + int(degenerate_k)

    if new_c != old_c or new_k != old_k:
        state.move_post(post, new_c, new_k)
        cache.post_moved(state, post, old_c, old_k, new_c, new_k)
    return new_c, new_k


def fast_resample_link(
    state: CountState,
    hp: Hyperparameters,
    link: int,
    rng: np.random.Generator,
    cache: SweepCache,
) -> tuple[int, int]:
    """Cached-equivalent of :func:`repro.core.gibbs.resample_link`.

    Links, unlike posts, change their (c, c') label on nearly every draw
    once the chain has mixed (the C x C conditional is much flatter than
    the post conditionals), so virtual removal would patch three slices
    per draw only to mutate everything anyway.  The link kernel therefore
    removes for real and wins by caching: the Eq. (2) occupation factor —
    a full ``C x C`` recompute per draw in the reference — is maintained
    per cell, and the weight matrix is built in preallocated buffers.
    """
    old_c, old_c_prime = state.remove_link(link)
    cache.link_moved(state, old_c, old_c_prime)
    weights = cache.link_weights(state, link).ravel()
    np.maximum(weights, _WEIGHT_FLOOR, out=weights)
    flat_index, degenerate = cache.draw(weights, rng, cache._cum_pair)
    state.degenerate_draws += int(degenerate)
    new_c, new_c_prime = divmod(flat_index, state.num_communities)
    state.add_link(link, new_c, new_c_prime)
    cache.link_moved(state, new_c, new_c_prime)
    cache._link_c[link] = new_c
    cache._link_cp[link] = new_c_prime
    return new_c, new_c_prime


def fast_sweep(
    state: CountState,
    hp: Hyperparameters,
    rng: np.random.Generator,
    post_order: list[int] | np.ndarray,
    link_order: list[int] | np.ndarray | None,
    cache: SweepCache,
) -> None:
    """One full Gibbs sweep through the fast kernels, with hoisted glue.

    The per-draw numerical work is already a handful of vector ops, so
    attribute chains, method dispatch and RNG/ufunc lookups are a
    measurable slice of sweep time; this loop binds every loop-invariant
    object to a local once per sweep instead of once per draw.  The body
    is the same operation sequence as :func:`fast_resample_post` /
    :func:`fast_resample_link` — which remain the single-draw entry
    points and the readable form of the algorithm — so draws stay
    bit-identical and the RNG is consumed in the same order (the link
    visitation permutation, when not supplied, is drawn *after* the post
    loop exactly as the reference sweep draws it).
    """
    if isinstance(post_order, np.ndarray):
        post_order = post_order.tolist()

    # Loop-invariant bindings (all mutated in place, never rebound).
    n_user_comm = state.n_user_comm
    n_comm_topic = state.n_comm_topic
    n_ctt = state.n_comm_topic_time
    n_comm_total = cache.n_comm_total
    comm_denom = cache.comm_denom
    time_denom = cache.time_denom
    base_all = cache.base
    ldt = cache.log_denom_terms
    word_topic = cache.word_topic
    times = cache._times
    authors = cache._authors
    lengths = cache._lengths
    post_words = cache._post_words
    all_distinct = cache._all_distinct
    expanded = cache._expanded
    kw_bufs = cache._kw_bufs
    int_bufs = cache._int_bufs
    flt_bufs = cache._flt_bufs
    post_c = cache._post_c
    post_k = cache._post_k
    comm_buf = cache._comm_buf
    factor_buf = cache._factor_buf
    topic_buf = cache._topic_buf
    cum_comm = cache._cum_comm
    cum_topic = cache._cum_topic
    log3 = cache._log3
    rho = hp.rho
    alpha = hp.alpha
    eps = hp.epsilon
    beta = hp.beta
    K_alpha = cache._K_alpha
    T_eps = cache._T_eps
    M = cache.max_len
    K = cache.K
    C = state.num_communities
    C1 = C - 1
    K1 = K - 1
    floor = _WEIGHT_FLOOR
    random = rng.random
    integers = rng.integers
    isfinite = math.isfinite
    add = np.add
    sub = np.subtract
    mul = np.multiply
    div = np.divide
    log = np.log
    exp = np.exp
    maximum = np.maximum
    max_reduce = np.maximum.reduce
    reduce_ = np.add.reduce
    accumulate = np.add.accumulate
    empty = np.empty
    move_post = state.move_post
    post_moved = cache.post_moved
    degenerate = 0

    for post in post_order:
        old_c = post_c[post]
        old_k = post_k[post]
        t = times[post]
        author = authors[post]

        # Eq. (1) against the live counters (community_weights).
        weights = add(n_user_comm[author], rho, comm_buf)
        factor = add(n_comm_topic[:, old_k], alpha, factor_buf)
        div(factor, comm_denom, factor)
        mul(weights, factor, weights)
        add(n_ctt[:, old_k, t], eps, factor)
        div(factor, time_denom[:, old_k], factor)
        mul(weights, factor, weights)
        # Virtual removal: patch entry old_c (corrected_community_entry).
        n_ck = int(n_comm_topic[old_c, old_k]) - 1
        n_ckt = int(n_ctt[old_c, old_k, t]) - 1
        weights[old_c] = (
            ((int(n_user_comm[author, old_c]) - 1) + rho)
            * ((n_ck + alpha) / ((int(n_comm_total[old_c]) - 1) + K_alpha))
        ) * ((n_ckt + eps) / (n_ck + T_eps))
        maximum(weights, floor, out=weights)
        total = reduce_(weights)
        if isfinite(total) and total > 0.0:
            accumulate(weights, 0, None, cum_comm)
            index = cum_comm.searchsorted(random() * total, side="right")
            new_c = int(index) if index < C1 else C1
        else:
            new_c = int(integers(C))
            degenerate += 1

        # Eq. (3) with the virtual-removal patches (topic_log_weights).
        base = base_all[new_c, t]
        if all_distinct[post]:
            words, counts = post_words[post]
            W = len(words)
            gathered = int_bufs.get(W)
            if gathered is None:
                gathered = int_bufs[W] = empty((W, K), np.int64)
            word_topic.take(words, 0, gathered)
            gathered[:, old_k] -= counts
            buf = kw_bufs.get(W)
            if buf is None:
                buf = kw_bufs[W] = empty((K, W))
            terms = add(gathered.T, beta, buf)
            log(terms, terms)
            numerator = reduce_(terms, 1)
        else:
            full_words, qs_col, mults = expanded[post]
            L = len(full_words)
            ints = int_bufs.get(L)
            if ints is None:
                ints = int_bufs[L] = empty((L, K), np.int64)
            word_topic.take(full_words, 0, ints)
            add(ints, qs_col, ints)
            ints[:, old_k] -= mults
            terms = flt_bufs.get(L)
            if terms is None:
                terms = flt_bufs[L] = empty((L, K))
            add(ints, beta, terms)
            log(terms, terms)
            accumulate(terms, 0, None, terms)
            numerator = terms[-1]
        length = lengths[post]
        denominator = reduce_(ldt[:, M : M + length], 1)
        lw = add(base, numerator, topic_buf)
        sub(lw, denominator, lw)
        den = reduce_(ldt[old_k, M - length : M])
        if new_c == old_c:
            log3[0] = n_ck + alpha
            log3[1] = n_ck + T_eps
            log3[2] = n_ckt + eps
            log(log3, log3)
            base_val = log3[0] + (log3[2] - log3[1])
        else:
            base_val = base[old_k]
        lw[old_k] = (base_val + numerator[old_k]) - den
        sub(lw, max_reduce(lw), lw)
        exp(lw, lw)
        maximum(lw, floor, out=lw)
        total = reduce_(lw)
        if isfinite(total) and total > 0.0:
            accumulate(lw, 0, None, cum_topic)
            index = cum_topic.searchsorted(random() * total, side="right")
            new_k = int(index) if index < K1 else K1
        else:
            new_k = int(integers(K))
            degenerate += 1

        if new_c != old_c or new_k != old_k:
            move_post(post, new_c, new_k)
            post_moved(state, post, old_c, old_k, new_c, new_k)

    state.degenerate_draws += degenerate
    degenerate = 0
    if not state.num_links:
        return

    # Draw the link permutation here, after the post loop, so the RNG
    # stream matches the reference sweep exactly.
    if link_order is None:
        link_order = rng.permutation(state.num_links).tolist()
    elif isinstance(link_order, np.ndarray):
        link_order = link_order.tolist()

    link_users = cache._link_users
    link_c = cache._link_c
    link_cp = cache._link_cp
    link_src_comm = state.link_src_comm
    link_dst_comm = state.link_dst_comm
    link_factor = cache.link_factor
    n_link_comm = state.n_link_comm
    pair_buf = cache._pair_buf
    pair_flat = pair_buf.ravel()
    comm_col = comm_buf[:, None]
    factor_row = factor_buf[None, :]
    cum_pair = cache._cum_pair
    lambda0 = hp.lambda0
    lambda1 = hp.lambda1
    CC = C * C
    CC1 = CC - 1

    # Links change label on nearly every draw (the C x C conditional is
    # much flatter than the post conditionals), so virtual removal would
    # patch three slices per draw only to mutate everything anyway; the
    # link kernel removes for real and wins by caching the Eq. (2)
    # occupation factor (a full C x C recompute per draw in the
    # reference) per cell.  Same body as fast_resample_link, inlined.
    for link in link_order:
        src, dst = link_users[link]
        old_c = link_c[link]
        old_cp = link_cp[link]
        n_user_comm[src, old_c] -= 1
        n_user_comm[dst, old_cp] -= 1
        n_link_comm[old_c, old_cp] -= 1
        n = int(n_link_comm[old_c, old_cp])
        link_factor[old_c, old_cp] = (n + lambda1) / (n + lambda0 + lambda1)
        # Eq. (2) over the removed counters (link_weights).
        add(n_user_comm[src], rho, comm_buf)
        add(n_user_comm[dst], rho, factor_buf)
        mul(comm_col, factor_row, pair_buf)
        mul(pair_buf, link_factor, pair_buf)
        maximum(pair_flat, floor, out=pair_flat)
        total = reduce_(pair_flat)
        if isfinite(total) and total > 0.0:
            accumulate(pair_flat, 0, None, cum_pair)
            index = cum_pair.searchsorted(random() * total, side="right")
            flat_index = int(index) if index < CC1 else CC1
        else:
            flat_index = int(integers(CC))
            degenerate += 1
        new_c, new_cp = divmod(flat_index, C)
        n_user_comm[src, new_c] += 1
        n_user_comm[dst, new_cp] += 1
        n_link_comm[new_c, new_cp] += 1
        n = int(n_link_comm[new_c, new_cp])
        link_factor[new_c, new_cp] = (n + lambda1) / (n + lambda0 + lambda1)
        link_src_comm[link] = new_c
        link_dst_comm[link] = new_cp
        link_c[link] = new_c
        link_cp[link] = new_cp

    state.degenerate_draws += degenerate


def fast_sweep_profiled(
    state: CountState,
    hp: Hyperparameters,
    rng: np.random.Generator,
    post_order: list[int] | np.ndarray,
    link_order: list[int] | np.ndarray | None,
    cache: SweepCache,
    profiler,
) -> None:
    """:func:`fast_sweep` with phase-boundary timers for the profiler.

    A deliberate duplicate: the dark path must not pay even a per-draw
    branch for instrumentation, so the profiled variant is a separate
    function selected by :func:`repro.core.gibbs.sweep` only while a
    :class:`~repro.telemetry.profiler.PhaseProfiler` is active.  The
    operation and RNG sequence is identical to :func:`fast_sweep` —
    timers only read ``perf_counter`` and accumulate into local floats,
    flushed to the profiler once per sweep — so profiled draws stay
    bit-identical to dark draws (``tests/telemetry/test_profiler.py``
    and the ``benchmarks/perf`` overhead gate both enforce this; keep
    the two bodies in lockstep when touching either).

    Phase paths are relative to the profiler's open stack (a worker's
    ``shard`` phase, or nothing in a serial fit), rooted at ``sweep``:
    ``posts``/``links`` split into ``resample`` (conditional weights),
    ``draw`` (cdf + inverse-transform draw) and ``update`` (counter and
    cache mutation).
    """
    perf = time.perf_counter
    base_path = profiler.current_path() + ("sweep",)
    posts_resample_s = posts_draw_s = posts_update_s = 0.0
    links_resample_s = links_draw_s = links_update_s = 0.0
    permutation_s = 0.0
    sweep_start = perf()

    if isinstance(post_order, np.ndarray):
        post_order = post_order.tolist()

    # Loop-invariant bindings: same set as fast_sweep.
    n_user_comm = state.n_user_comm
    n_comm_topic = state.n_comm_topic
    n_ctt = state.n_comm_topic_time
    n_comm_total = cache.n_comm_total
    comm_denom = cache.comm_denom
    time_denom = cache.time_denom
    base_all = cache.base
    ldt = cache.log_denom_terms
    word_topic = cache.word_topic
    times = cache._times
    authors = cache._authors
    lengths = cache._lengths
    post_words = cache._post_words
    all_distinct = cache._all_distinct
    expanded = cache._expanded
    kw_bufs = cache._kw_bufs
    int_bufs = cache._int_bufs
    flt_bufs = cache._flt_bufs
    post_c = cache._post_c
    post_k = cache._post_k
    comm_buf = cache._comm_buf
    factor_buf = cache._factor_buf
    topic_buf = cache._topic_buf
    cum_comm = cache._cum_comm
    cum_topic = cache._cum_topic
    log3 = cache._log3
    rho = hp.rho
    alpha = hp.alpha
    eps = hp.epsilon
    beta = hp.beta
    K_alpha = cache._K_alpha
    T_eps = cache._T_eps
    M = cache.max_len
    K = cache.K
    C = state.num_communities
    C1 = C - 1
    K1 = K - 1
    floor = _WEIGHT_FLOOR
    random = rng.random
    integers = rng.integers
    isfinite = math.isfinite
    add = np.add
    sub = np.subtract
    mul = np.multiply
    div = np.divide
    log = np.log
    exp = np.exp
    maximum = np.maximum
    max_reduce = np.maximum.reduce
    reduce_ = np.add.reduce
    accumulate = np.add.accumulate
    empty = np.empty
    move_post = state.move_post
    post_moved = cache.post_moved
    degenerate = 0

    for post in post_order:
        t0 = perf()
        old_c = post_c[post]
        old_k = post_k[post]
        t = times[post]
        author = authors[post]

        # Eq. (1) against the live counters (community_weights).
        weights = add(n_user_comm[author], rho, comm_buf)
        factor = add(n_comm_topic[:, old_k], alpha, factor_buf)
        div(factor, comm_denom, factor)
        mul(weights, factor, weights)
        add(n_ctt[:, old_k, t], eps, factor)
        div(factor, time_denom[:, old_k], factor)
        mul(weights, factor, weights)
        n_ck = int(n_comm_topic[old_c, old_k]) - 1
        n_ckt = int(n_ctt[old_c, old_k, t]) - 1
        weights[old_c] = (
            ((int(n_user_comm[author, old_c]) - 1) + rho)
            * ((n_ck + alpha) / ((int(n_comm_total[old_c]) - 1) + K_alpha))
        ) * ((n_ckt + eps) / (n_ck + T_eps))
        maximum(weights, floor, out=weights)
        t1 = perf()
        posts_resample_s += t1 - t0
        total = reduce_(weights)
        if isfinite(total) and total > 0.0:
            accumulate(weights, 0, None, cum_comm)
            index = cum_comm.searchsorted(random() * total, side="right")
            new_c = int(index) if index < C1 else C1
        else:
            new_c = int(integers(C))
            degenerate += 1
        t2 = perf()
        posts_draw_s += t2 - t1

        # Eq. (3) with the virtual-removal patches (topic_log_weights).
        base = base_all[new_c, t]
        if all_distinct[post]:
            words, counts = post_words[post]
            W = len(words)
            gathered = int_bufs.get(W)
            if gathered is None:
                gathered = int_bufs[W] = empty((W, K), np.int64)
            word_topic.take(words, 0, gathered)
            gathered[:, old_k] -= counts
            buf = kw_bufs.get(W)
            if buf is None:
                buf = kw_bufs[W] = empty((K, W))
            terms = add(gathered.T, beta, buf)
            log(terms, terms)
            numerator = reduce_(terms, 1)
        else:
            full_words, qs_col, mults = expanded[post]
            L = len(full_words)
            ints = int_bufs.get(L)
            if ints is None:
                ints = int_bufs[L] = empty((L, K), np.int64)
            word_topic.take(full_words, 0, ints)
            add(ints, qs_col, ints)
            ints[:, old_k] -= mults
            terms = flt_bufs.get(L)
            if terms is None:
                terms = flt_bufs[L] = empty((L, K))
            add(ints, beta, terms)
            log(terms, terms)
            accumulate(terms, 0, None, terms)
            numerator = terms[-1]
        length = lengths[post]
        denominator = reduce_(ldt[:, M : M + length], 1)
        lw = add(base, numerator, topic_buf)
        sub(lw, denominator, lw)
        den = reduce_(ldt[old_k, M - length : M])
        if new_c == old_c:
            log3[0] = n_ck + alpha
            log3[1] = n_ck + T_eps
            log3[2] = n_ckt + eps
            log(log3, log3)
            base_val = log3[0] + (log3[2] - log3[1])
        else:
            base_val = base[old_k]
        lw[old_k] = (base_val + numerator[old_k]) - den
        sub(lw, max_reduce(lw), lw)
        exp(lw, lw)
        maximum(lw, floor, out=lw)
        t3 = perf()
        posts_resample_s += t3 - t2
        total = reduce_(lw)
        if isfinite(total) and total > 0.0:
            accumulate(lw, 0, None, cum_topic)
            index = cum_topic.searchsorted(random() * total, side="right")
            new_k = int(index) if index < K1 else K1
        else:
            new_k = int(integers(K))
            degenerate += 1
        t4 = perf()
        posts_draw_s += t4 - t3

        if new_c != old_c or new_k != old_k:
            move_post(post, new_c, new_k)
            post_moved(state, post, old_c, old_k, new_c, new_k)
        posts_update_s += perf() - t4

    state.degenerate_draws += degenerate
    degenerate = 0
    num_posts = len(post_order)
    num_links = 0

    if state.num_links:
        t0 = perf()
        if link_order is None:
            link_order = rng.permutation(state.num_links).tolist()
        elif isinstance(link_order, np.ndarray):
            link_order = link_order.tolist()
        permutation_s = perf() - t0
        num_links = len(link_order)

        link_users = cache._link_users
        link_c = cache._link_c
        link_cp = cache._link_cp
        link_src_comm = state.link_src_comm
        link_dst_comm = state.link_dst_comm
        link_factor = cache.link_factor
        n_link_comm = state.n_link_comm
        pair_buf = cache._pair_buf
        pair_flat = pair_buf.ravel()
        comm_col = comm_buf[:, None]
        factor_row = factor_buf[None, :]
        cum_pair = cache._cum_pair
        lambda0 = hp.lambda0
        lambda1 = hp.lambda1
        CC = C * C
        CC1 = CC - 1

        for link in link_order:
            t0 = perf()
            src, dst = link_users[link]
            old_c = link_c[link]
            old_cp = link_cp[link]
            n_user_comm[src, old_c] -= 1
            n_user_comm[dst, old_cp] -= 1
            n_link_comm[old_c, old_cp] -= 1
            n = int(n_link_comm[old_c, old_cp])
            link_factor[old_c, old_cp] = (n + lambda1) / (
                n + lambda0 + lambda1
            )
            # Eq. (2) over the removed counters (link_weights).
            add(n_user_comm[src], rho, comm_buf)
            add(n_user_comm[dst], rho, factor_buf)
            mul(comm_col, factor_row, pair_buf)
            mul(pair_buf, link_factor, pair_buf)
            maximum(pair_flat, floor, out=pair_flat)
            t1 = perf()
            links_resample_s += t1 - t0
            total = reduce_(pair_flat)
            if isfinite(total) and total > 0.0:
                accumulate(pair_flat, 0, None, cum_pair)
                index = cum_pair.searchsorted(random() * total, side="right")
                flat_index = int(index) if index < CC1 else CC1
            else:
                flat_index = int(integers(CC))
                degenerate += 1
            t2 = perf()
            links_draw_s += t2 - t1
            new_c, new_cp = divmod(flat_index, C)
            n_user_comm[src, new_c] += 1
            n_user_comm[dst, new_cp] += 1
            n_link_comm[new_c, new_cp] += 1
            n = int(n_link_comm[new_c, new_cp])
            link_factor[new_c, new_cp] = (n + lambda1) / (
                n + lambda0 + lambda1
            )
            link_src_comm[link] = new_c
            link_dst_comm[link] = new_cp
            link_c[link] = new_c
            link_cp[link] = new_cp
            links_update_s += perf() - t2

        state.degenerate_draws += degenerate

    sweep_elapsed = perf() - sweep_start
    profiler.add(base_path, sweep_elapsed)
    if num_posts:
        profiler.add(
            base_path + ("posts", "resample"), posts_resample_s, num_posts
        )
        profiler.add(base_path + ("posts", "draw"), posts_draw_s, num_posts)
        profiler.add(base_path + ("posts", "update"), posts_update_s, num_posts)
    if num_links:
        profiler.add(base_path + ("links", "permutation"), permutation_s)
        profiler.add(
            base_path + ("links", "resample"), links_resample_s, num_links
        )
        profiler.add(base_path + ("links", "draw"), links_draw_s, num_links)
        profiler.add(base_path + ("links", "update"), links_update_s, num_links)
