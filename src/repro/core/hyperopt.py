"""Dirichlet hyper-parameter estimation via Minka's fixed-point updates.

The paper fixes its Dirichlet hyper-parameters by rule of thumb (§6.5) and
reports low sensitivity.  This optional extension estimates symmetric
concentrations from the Gibbs count matrices instead — Minka's fixed-point
iteration for the Dirichlet-multinomial likelihood::

    a_new = a * sum_j sum_i [Psi(n_ij + a) - Psi(a)]
              / ( J * sum_i [Psi(n_i. + d a) - Psi(d a)] ... )

specialised to the symmetric case with ``d`` categories and one count row
per group.  Useful when fitting corpora whose scale is far from both the
paper's rules and the ``scaled`` operating point.
"""

from __future__ import annotations

import numpy as np
from scipy.special import psi as digamma

from .params import Hyperparameters, ParameterError
from .state import CountState


class HyperoptError(ValueError):
    """Raised for invalid hyper-parameter optimisation inputs."""


def symmetric_dirichlet_mle(
    counts: np.ndarray,
    initial: float = 1.0,
    num_iterations: int = 200,
    tolerance: float = 1e-6,
    floor: float = 1e-4,
    ceiling: float = 1e4,
) -> float:
    """Fixed-point MLE of a symmetric Dirichlet concentration.

    ``counts`` has shape ``(groups, categories)``: each row is one draw
    from the Dirichlet observed ``row.sum()`` times.  Returns the
    concentration *per category* (i.e. the ``alpha`` in ``Dir(alpha,...,
    alpha)``), clipped to ``[floor, ceiling]``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 2 or counts.size == 0:
        raise HyperoptError("counts must be a non-empty 2-D array")
    if (counts < 0).any():
        raise HyperoptError("counts must be non-negative")
    if initial <= 0:
        raise HyperoptError("initial concentration must be positive")
    rows_with_data = counts[counts.sum(axis=1) > 0]
    if len(rows_with_data) == 0:
        raise HyperoptError("every count row is empty")
    counts = rows_with_data
    _groups, categories = counts.shape
    totals = counts.sum(axis=1)

    alpha = float(initial)
    for _ in range(num_iterations):
        numerator = (digamma(counts + alpha) - digamma(alpha)).sum()
        denominator = categories * (
            digamma(totals + categories * alpha)
            - digamma(categories * alpha)
        ).sum()
        if denominator <= 0:
            break
        alpha_new = alpha * numerator / denominator
        alpha_new = float(np.clip(alpha_new, floor, ceiling))
        if abs(alpha_new - alpha) < tolerance * alpha:
            alpha = alpha_new
            break
        alpha = alpha_new
    return alpha


def optimize_hyperparameters(
    state: CountState, current: Hyperparameters
) -> Hyperparameters:
    """Re-estimate ``rho``, ``alpha``, ``beta`` and ``epsilon`` from the
    current Gibbs counts, keeping the network priors unchanged.

    Intended use: periodically inside a long fit (empirical Bayes), or
    once after burn-in to sanity-check the rule-of-thumb settings.
    """
    rho = symmetric_dirichlet_mle(state.n_user_comm, initial=current.rho)
    alpha = symmetric_dirichlet_mle(state.n_comm_topic, initial=current.alpha)
    beta = symmetric_dirichlet_mle(state.n_topic_word, initial=current.beta)
    T = state.n_comm_topic_time.shape[2]
    time_counts = state.n_comm_topic_time.reshape(-1, T)
    epsilon = symmetric_dirichlet_mle(time_counts, initial=current.epsilon)
    try:
        return Hyperparameters(
            rho=rho,
            alpha=alpha,
            beta=beta,
            epsilon=epsilon,
            lambda0=current.lambda0,
            lambda1=current.lambda1,
        )
    except ParameterError as exc:  # pragma: no cover - clipped upstream
        raise HyperoptError(f"optimised values invalid: {exc}") from exc
