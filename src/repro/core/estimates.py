"""Point estimates of the collapsed distributions (paper Appendix A).

Given a Gibbs sample (a :class:`~repro.core.state.CountState`), the
posterior-mean estimates are smoothed relative frequencies::

    pi_ic    = (n_i^c  + rho) / (n_i^.  + C rho)
    theta_ck = (n_c^k  + alpha) / (n_c^. + K alpha)
    phi_kv   = (n_k^v  + beta) / (n_k^.  + V beta)
    psi_kct  = (n_ck^t + eps) / (n_ck^. + T eps)
    eta_cc'  = (n_cc'  + lambda1) / (n_cc' + lambda0 + lambda1)

Final predictive estimates average these across several post-burn-in
samples, as the paper prescribes ("integrating across the samples").
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .params import Hyperparameters
from .state import CountState


class EstimateError(ValueError):
    """Raised for malformed estimate collections."""


@dataclass
class ParameterEstimates:
    """The five estimated distributions, in the paper's notation.

    * ``pi``    — ``(U, C)``, rows sum to 1;
    * ``theta`` — ``(C, K)``, rows sum to 1;
    * ``phi``   — ``(K, V)``, rows sum to 1;
    * ``psi``   — ``(K, C, T)``, trailing axis sums to 1;
    * ``eta``   — ``(C, C)``, entries in (0, 1) (not a simplex).
    """

    pi: np.ndarray
    theta: np.ndarray
    phi: np.ndarray
    psi: np.ndarray
    eta: np.ndarray

    @property
    def num_users(self) -> int:
        return self.pi.shape[0]

    @property
    def num_communities(self) -> int:
        return self.pi.shape[1]

    @property
    def num_topics(self) -> int:
        return self.theta.shape[1]

    @property
    def num_time_slices(self) -> int:
        return self.psi.shape[2]

    @property
    def vocab_size(self) -> int:
        return self.phi.shape[1]

    def validate(self, atol: float = 1e-8) -> None:
        """Check shapes agree and every distribution is proper."""
        U, C = self.pi.shape
        C2, K = self.theta.shape
        K2, V = self.phi.shape
        K3, C3, T = self.psi.shape
        if not (C == C2 == C3 == self.eta.shape[0] == self.eta.shape[1]):
            raise EstimateError("community dimensions disagree across estimates")
        if not (K == K2 == K3):
            raise EstimateError("topic dimensions disagree across estimates")
        for name, array, axis in (
            ("pi", self.pi, 1),
            ("theta", self.theta, 1),
            ("phi", self.phi, 1),
            ("psi", self.psi, 2),
        ):
            sums = array.sum(axis=axis)
            if not np.allclose(sums, 1.0, atol=atol):
                raise EstimateError(f"{name} rows do not sum to 1")
            if (array < 0).any():
                raise EstimateError(f"{name} has negative entries")
        if ((self.eta < 0) | (self.eta > 1)).any():
            raise EstimateError("eta entries must lie in [0, 1]")

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Atomically persist all five arrays to a ``.npz`` file.

        Written via temp-file + ``os.replace`` so a crash mid-save never
        leaves a truncated archive behind.
        """
        from ..resilience.checkpoint import atomic_write

        path = Path(path)
        with atomic_write(path) as tmp:
            with tmp.open("wb") as handle:
                np.savez_compressed(
                    handle, pi=self.pi, theta=self.theta, phi=self.phi,
                    psi=self.psi, eta=self.eta,
                )

    @classmethod
    def load(cls, path: str | Path) -> "ParameterEstimates":
        """Load estimates written by :meth:`save`.

        Raises :class:`EstimateError` (never a bare ``KeyError``/zip error)
        on missing arrays or corrupted archives; missing files surface as
        ``FileNotFoundError``.
        """
        path = Path(path)
        if not path.is_file():
            raise FileNotFoundError(f"no estimates file at {path}")
        try:
            with np.load(path) as data:
                estimates = cls(
                    pi=data["pi"], theta=data["theta"], phi=data["phi"],
                    psi=data["psi"], eta=data["eta"],
                )
        except KeyError as exc:
            raise EstimateError(f"{path}: missing estimate array {exc}") from exc
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise EstimateError(f"{path}: corrupted estimates file: {exc}") from exc
        estimates.validate()
        return estimates


def estimate_from_state(state: CountState, hp: Hyperparameters) -> ParameterEstimates:
    """Appendix-A point estimates from a single Gibbs sample."""
    C, K = state.num_communities, state.num_topics
    V = state.n_topic_word.shape[1]
    T = state.n_comm_topic_time.shape[2]

    pi = (state.n_user_comm + hp.rho) / (
        state.n_user_comm.sum(axis=1, keepdims=True) + C * hp.rho
    )
    theta = (state.n_comm_topic + hp.alpha) / (
        state.n_comm_topic.sum(axis=1, keepdims=True) + K * hp.alpha
    )
    phi = (state.n_topic_word + hp.beta) / (
        state.n_topic_total[:, None] + V * hp.beta
    )
    # psi is indexed (k, c, t) in the paper; counters are (c, k, t).
    counts_kct = state.n_comm_topic_time.transpose(1, 0, 2)
    psi = (counts_kct + hp.epsilon) / (
        counts_kct.sum(axis=2, keepdims=True) + T * hp.epsilon
    )
    eta = (state.n_link_comm + hp.lambda1) / (
        state.n_link_comm + hp.lambda0 + hp.lambda1
    )
    return ParameterEstimates(pi=pi, theta=theta, phi=phi, psi=psi, eta=eta)


def average_estimates(samples: list[ParameterEstimates]) -> ParameterEstimates:
    """Average point estimates across Gibbs samples (predictive estimate).

    All samples must share shapes.  A single sample is returned unchanged.
    """
    if not samples:
        raise EstimateError("cannot average an empty sample list")
    first = samples[0]
    if len(samples) == 1:
        return first
    for other in samples[1:]:
        if (
            other.pi.shape != first.pi.shape
            or other.theta.shape != first.theta.shape
            or other.phi.shape != first.phi.shape
            or other.psi.shape != first.psi.shape
            or other.eta.shape != first.eta.shape
        ):
            raise EstimateError("sample shapes disagree; cannot average")
    n = float(len(samples))
    return ParameterEstimates(
        pi=sum(s.pi for s in samples) / n,
        theta=sum(s.theta for s in samples) / n,
        phi=sum(s.phi for s in samples) / n,
        psi=sum(s.psi for s in samples) / n,
        eta=sum(s.eta for s in samples) / n,
    )
