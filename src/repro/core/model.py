"""The COLD model facade: configure, fit, estimate, persist.

:class:`COLDModel` wires together the count state, the collapsed Gibbs
kernels, the convergence monitor, and Appendix-A estimation into one
sklearn-style object::

    model = COLDModel(num_communities=10, num_topics=20, seed=0)
    model.fit(corpus, num_iterations=150)
    model.theta_        # community interests
    model.estimates_    # all five distributions

``include_network=False`` yields the paper's COLD-NoLink ablation (§6.1
baseline 4): the network component is simply never sampled.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path

import numpy as np

from ..datasets.corpus import SocialCorpus
from .estimates import ParameterEstimates, average_estimates, estimate_from_state
from .gibbs import sweep
from .likelihood import ConvergenceMonitor, joint_log_likelihood
from .params import Hyperparameters
from .state import CountState


class ModelError(RuntimeError):
    """Raised on invalid model usage (e.g. estimates before fit)."""


class COLDModel:
    """COmmunity Level Diffusion model (paper §3) with Gibbs inference (§4).

    Parameters
    ----------
    num_communities, num_topics:
        Latent dimensions ``C`` and ``K``.  The paper's sensitivity study
        (Appendix B) finds ``C = K = 100`` best at Weibo scale; scale them
        with your data.
    hyperparameters:
        Prior strengths; by default the paper's §6.5 rules are applied when
        :meth:`fit` sees the corpus (they depend on ``C``, ``K``, ``n_neg``).
    include_network:
        When false, the link component is skipped entirely (COLD-NoLink).
    kappa:
        Weight of the implicit-negative-link prior (§3.3).
    prior:
        ``"paper"`` applies the paper's §6.5 hyper-parameter rules
        (calibrated for Weibo scale); ``"scaled"`` applies
        :meth:`Hyperparameters.scaled`, the laptop-scale operating values —
        use it for corpora with tens of posts per user.  Ignored when
        explicit ``hyperparameters`` are given.
    seed:
        Seed of the sampler's RNG; fits are reproducible given a seed.
    """

    def __init__(
        self,
        num_communities: int = 20,
        num_topics: int = 20,
        hyperparameters: Hyperparameters | None = None,
        include_network: bool = True,
        kappa: float = 1.0,
        prior: str = "paper",
        seed: int = 0,
    ) -> None:
        if num_communities <= 0 or num_topics <= 0:
            raise ModelError("num_communities and num_topics must be positive")
        if prior not in ("paper", "scaled"):
            raise ModelError(f"prior must be 'paper' or 'scaled', got {prior!r}")
        self.num_communities = num_communities
        self.num_topics = num_topics
        self.hyperparameters = hyperparameters
        self.include_network = include_network
        self.kappa = kappa
        self.prior = prior
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.state_: CountState | None = None
        self.estimates_: ParameterEstimates | None = None
        self.monitor_: ConvergenceMonitor | None = None
        self.corpus_: SocialCorpus | None = None

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        corpus: SocialCorpus,
        num_iterations: int = 100,
        burn_in: int | None = None,
        sample_interval: int = 5,
        likelihood_interval: int = 10,
        callback: Callable[[int, "COLDModel"], None] | None = None,
        check_invariants: bool = False,
    ) -> "COLDModel":
        """Run the collapsed Gibbs sampler and store averaged estimates.

        Parameters
        ----------
        num_iterations:
            Total Gibbs sweeps.
        burn_in:
            Sweeps to discard before collecting samples; defaults to half of
            ``num_iterations``.
        sample_interval:
            Collect a point-estimate sample every this many post-burn-in
            sweeps (thinning); samples are averaged into ``estimates_``.
        likelihood_interval:
            Record the joint likelihood every this many sweeps (the paper's
            periodic convergence monitoring); 0 disables monitoring.
        callback:
            Called as ``callback(iteration, model)`` after every sweep.
        check_invariants:
            Recount all Gibbs counters after every sweep (slow; for tests).
        """
        if num_iterations <= 0:
            raise ModelError("num_iterations must be positive")
        if burn_in is None:
            burn_in = num_iterations // 2
        if not 0 <= burn_in < num_iterations:
            raise ModelError("burn_in must lie in [0, num_iterations)")
        if sample_interval <= 0:
            raise ModelError("sample_interval must be positive")

        hp = self._resolve_hyperparameters(corpus)
        state = CountState.initialize(
            corpus,
            self.num_communities,
            self.num_topics,
            self._rng,
            include_network=self.include_network,
        )
        monitor = ConvergenceMonitor()
        samples: list[ParameterEstimates] = []

        for iteration in range(1, num_iterations + 1):
            sweep(state, hp, self._rng)
            if check_invariants:
                state.check_invariants()
            if likelihood_interval and iteration % likelihood_interval == 0:
                monitor.record(joint_log_likelihood(state, hp))
            if iteration > burn_in and (iteration - burn_in) % sample_interval == 0:
                samples.append(estimate_from_state(state, hp))
            if callback is not None:
                callback(iteration, self)

        if not samples:
            samples.append(estimate_from_state(state, hp))
        self.state_ = state
        self.monitor_ = monitor
        self.corpus_ = corpus
        self.hyperparameters = hp
        self.estimates_ = average_estimates(samples)
        return self

    def _resolve_hyperparameters(self, corpus: SocialCorpus) -> Hyperparameters:
        if self.hyperparameters is not None:
            return self.hyperparameters
        network_corpus = corpus if self.include_network else None
        if self.prior == "scaled":
            return Hyperparameters.scaled(
                self.num_communities, self.num_topics, network_corpus
            )
        return Hyperparameters.default(
            self.num_communities, self.num_topics, network_corpus, kappa=self.kappa
        )

    # -- estimated distributions -------------------------------------------------

    def _require_fit(self) -> ParameterEstimates:
        if self.estimates_ is None:
            raise ModelError("model is not fitted; call fit() first")
        return self.estimates_

    @property
    def pi_(self) -> np.ndarray:
        """User community memberships, ``(U, C)``."""
        return self._require_fit().pi

    @property
    def theta_(self) -> np.ndarray:
        """Community topic interests, ``(C, K)``."""
        return self._require_fit().theta

    @property
    def phi_(self) -> np.ndarray:
        """Topic word distributions, ``(K, V)``."""
        return self._require_fit().phi

    @property
    def psi_(self) -> np.ndarray:
        """Community-specific temporal distributions, ``(K, C, T)``."""
        return self._require_fit().psi

    @property
    def eta_(self) -> np.ndarray:
        """Inter-community influence strengths, ``(C, C)``."""
        return self._require_fit().eta

    @property
    def fitted(self) -> bool:
        return self.estimates_ is not None

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist configuration + estimates (two files: .json and .npz)."""
        estimates = self._require_fit()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        hp = self.hyperparameters
        config = {
            "num_communities": self.num_communities,
            "num_topics": self.num_topics,
            "include_network": self.include_network,
            "kappa": self.kappa,
            "prior": self.prior,
            "seed": self.seed,
            "hyperparameters": None
            if hp is None
            else {
                "rho": hp.rho,
                "alpha": hp.alpha,
                "beta": hp.beta,
                "epsilon": hp.epsilon,
                "lambda0": hp.lambda0,
                "lambda1": hp.lambda1,
            },
        }
        path.with_suffix(".json").write_text(json.dumps(config, indent=2))
        estimates.save(path.with_suffix(".npz"))

    @classmethod
    def load(cls, path: str | Path) -> "COLDModel":
        """Load a model written by :meth:`save` (fitted, ready to predict)."""
        path = Path(path)
        config = json.loads(path.with_suffix(".json").read_text())
        hp_dict = config.pop("hyperparameters")
        hyperparameters = None if hp_dict is None else Hyperparameters(**hp_dict)
        model = cls(hyperparameters=hyperparameters, **config)
        model.estimates_ = ParameterEstimates.load(path.with_suffix(".npz"))
        return model

    def __repr__(self) -> str:
        status = "fitted" if self.fitted else "unfitted"
        network = "network" if self.include_network else "no-link"
        return (
            f"COLDModel(C={self.num_communities}, K={self.num_topics}, "
            f"{network}, {status})"
        )
