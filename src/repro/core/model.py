"""The COLD model facade: configure, fit, estimate, persist.

:class:`COLDModel` wires together the count state, the collapsed Gibbs
kernels, the convergence monitor, and Appendix-A estimation into one
sklearn-style object::

    model = COLDModel(num_communities=10, num_topics=20, seed=0)
    model.fit(corpus, num_iterations=150)
    model.theta_        # community interests
    model.estimates_    # all five distributions

A :class:`~repro.core.config.COLDConfig` can be passed instead of loose
keywords (``COLDModel(config)``); that is what :func:`repro.api.fit`
does.  ``include_network=False`` yields the paper's COLD-NoLink ablation
(§6.1 baseline 4): the network component is simply never sampled.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterable
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from .._compat import warn_positional_use
from ..datasets.corpus import SocialCorpus
from ..datasets.stream import CorpusIncrement, LinkEvent, PostEvent
from ..resilience.checkpoint import (
    CheckpointError,
    atomic_write_text,
    load_checkpoint,
    save_checkpoint,
)
from ..telemetry import tracing as trace
from ..telemetry.logconfig import get_logger
from ..telemetry.profiler import memory_gauges
from ..telemetry.session import TelemetrySession
from .config import COLDConfig, StreamConfig
from .estimates import ParameterEstimates, average_estimates, estimate_from_state
from .gibbs import sweep
from .likelihood import ConvergenceMonitor, joint_log_likelihood
from .params import Hyperparameters
from .state import CountState, StateError

_log = get_logger(__name__)


class ModelError(RuntimeError):
    """Raised on invalid model usage (e.g. estimates before fit)."""


class TrainingInterrupted(ModelError):
    """A fit stopped early at a sweep boundary on an external stop request.

    Raised only between sweeps — never mid-sweep — so the sampler state is
    always consistent when it propagates.  When checkpointing is enabled
    the final state has already been written; ``checkpoint`` says where,
    so ``cold train`` can print a resume hint and exit cleanly.
    """

    def __init__(self, iteration: int, checkpoint: Path | None = None) -> None:
        detail = f"training interrupted at sweep {iteration}"
        if checkpoint is not None:
            detail += f"; checkpoint written to {checkpoint}"
        super().__init__(detail)
        self.iteration = iteration
        self.checkpoint = checkpoint


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`COLDModel.update` call did, for logs and telemetry.

    ``new_slices`` counts time-grid growth (psi gained that many columns,
    initialised with prior mass); ``window_posts``/``window_links`` are
    the total resampled set sizes (new + recent tail + defrost sample).
    """

    update_index: int
    new_posts: int
    new_links: int
    new_users: int
    new_terms: int
    new_slices: int
    window_posts: int
    window_links: int
    sweeps: int
    seconds: float
    log_likelihood: float


class COLDModel:
    """COmmunity Level Diffusion model (paper §3) with Gibbs inference (§4).

    Parameters
    ----------
    num_communities, num_topics:
        Latent dimensions ``C`` and ``K``.  The paper's sensitivity study
        (Appendix B) finds ``C = K = 100`` best at Weibo scale; scale them
        with your data.
    hyperparameters:
        Prior strengths; by default the paper's §6.5 rules are applied when
        :meth:`fit` sees the corpus (they depend on ``C``, ``K``, ``n_neg``).
    include_network:
        When false, the link component is skipped entirely (COLD-NoLink).
    kappa:
        Weight of the implicit-negative-link prior (§3.3).
    prior:
        ``"paper"`` applies the paper's §6.5 hyper-parameter rules
        (calibrated for Weibo scale); ``"scaled"`` applies
        :meth:`Hyperparameters.scaled`, the laptop-scale operating values —
        use it for corpora with tens of posts per user.  Ignored when
        explicit ``hyperparameters`` are given.
    seed:
        Seed of the sampler's RNG; fits are reproducible given a seed.
    fast:
        Run sweeps through the cached vectorised Gibbs kernels
        (:mod:`repro.core.fastgibbs`).  The fast path is bit-identical to
        the reference kernels — same weights, same RNG consumption, so
        the same seed yields the same chain — just several times faster;
        ``fast=False`` selects the reference kernels, kept as the
        correctness oracle.
    executor, num_nodes, num_workers:
        ``num_nodes > 1`` routes :meth:`fit` through the parallel sampler
        (:class:`~repro.parallel.sampler.ParallelCOLDSampler`) on that
        many shards; ``executor`` picks how shard work runs
        (``"simulated"``, ``"threads"``, or ``"processes"`` — the
        shared-memory multi-core pool), and ``num_workers`` caps the
        worker processes of the ``processes`` executor.  Parallel fits do
        not yet support callbacks or checkpointing; their per-superstep
        timings land in ``cluster_report_``.

    A single :class:`~repro.core.config.COLDConfig` may be passed instead
    of the keywords above: ``COLDModel(config)``.  Arguments are otherwise
    keyword-only; positional use is deprecated (it warns once per process
    and will stop working in a future release).
    """

    #: Pre-keyword-only positional parameter order, honoured (with a
    #: DeprecationWarning) for legacy call sites.
    _LEGACY_ORDER = (
        "num_communities",
        "num_topics",
        "hyperparameters",
        "include_network",
        "kappa",
        "prior",
        "seed",
    )

    def __init__(self, config: COLDConfig | None = None, *args, **kwargs) -> None:
        if config is not None and not isinstance(config, COLDConfig):
            # Legacy positional style: the first positional argument was
            # num_communities, not a config.
            args = (config, *args)
            config = None
        if args:
            warn_positional_use(
                "COLDModel", "e.g. num_communities, num_topics, ..."
            )
            if len(args) > len(self._LEGACY_ORDER):
                raise TypeError(
                    f"COLDModel() takes at most {len(self._LEGACY_ORDER)} "
                    f"positional arguments ({len(args)} given)"
                )
            for name, value in zip(self._LEGACY_ORDER, args):
                if name in kwargs:
                    raise TypeError(
                        f"COLDModel() got multiple values for argument {name!r}"
                    )
                kwargs[name] = value
        if config is not None:
            if kwargs:
                raise ModelError(
                    "pass either a COLDConfig or keyword arguments, not both"
                )
            kwargs = config.model_kwargs()
        self._init_fields(**kwargs)

    def _init_fields(
        self,
        num_communities: int = 20,
        num_topics: int = 20,
        hyperparameters: Hyperparameters | None = None,
        include_network: bool = True,
        kappa: float = 1.0,
        prior: str = "paper",
        seed: int = 0,
        fast: bool = True,
        executor: str = "simulated",
        num_nodes: int = 1,
        num_workers: int | None = None,
        metrics_out: str | Path | None = None,
        trace_out: str | Path | None = None,
        stream: StreamConfig | dict | None = None,
    ) -> None:
        if num_communities <= 0 or num_topics <= 0:
            raise ModelError("num_communities and num_topics must be positive")
        if prior not in ("paper", "scaled"):
            raise ModelError(f"prior must be 'paper' or 'scaled', got {prior!r}")
        if executor not in ("simulated", "threads", "processes"):
            raise ModelError(
                "executor must be 'simulated', 'threads', or 'processes', "
                f"got {executor!r}"
            )
        if num_nodes <= 0:
            raise ModelError("num_nodes must be positive")
        if num_workers is not None and num_workers <= 0:
            raise ModelError("num_workers must be positive when given")
        if num_workers is not None and executor != "processes":
            raise ModelError(
                "num_workers only applies to the 'processes' executor"
            )
        self.num_communities = num_communities
        self.num_topics = num_topics
        self.hyperparameters = hyperparameters
        self.include_network = include_network
        self.kappa = kappa
        self.prior = prior
        self.seed = seed
        self.fast = fast
        self.executor = executor
        self.num_nodes = num_nodes
        self.num_workers = num_workers
        #: Telemetry destinations (see :mod:`repro.telemetry`): a JSONL
        #: metrics stream and/or a Chrome trace_event file.  ``None`` keeps
        #: instrumentation a no-op, except that checkpointed fits default
        #: ``metrics_out`` to ``<checkpoint_dir>/metrics.jsonl``.
        self.metrics_out = None if metrics_out is None else str(metrics_out)
        self.trace_out = None if trace_out is None else str(trace_out)
        if isinstance(stream, dict):
            # Round-tripped configs (saved models, checkpoints) carry the
            # nested StreamConfig as a plain mapping.
            try:
                stream = StreamConfig(**stream)
            except TypeError as exc:
                raise ModelError(f"invalid stream config: {exc}") from exc
        if stream is not None and not isinstance(stream, StreamConfig):
            raise ModelError(
                f"stream must be a StreamConfig (or None), got "
                f"{type(stream).__name__}"
            )
        #: Default knobs of :meth:`update`; overridable per call.
        self.stream = stream
        #: An incremental :class:`~repro.datasets.stream.CorpusStreamBuilder`
        #: attached by :class:`repro.streaming.OnlineTrainer` (or by hand)
        #: so :meth:`update` can accept raw events.
        self.stream_builder_ = None
        #: Incremental updates applied so far (the model *generation*).
        self.update_count_ = 0
        self._checkpoint_parent: str | None = None
        self._rng = np.random.default_rng(seed)
        self.state_: CountState | None = None
        self.estimates_: ParameterEstimates | None = None
        self.monitor_: ConvergenceMonitor | None = None
        self.corpus_: SocialCorpus | None = None
        #: Per-superstep cluster timings of the last parallel fit
        #: (``num_nodes > 1``); ``None`` for serial fits.
        self.cluster_report_ = None

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        corpus: SocialCorpus,
        num_iterations: int = 100,
        burn_in: int | None = None,
        sample_interval: int = 5,
        likelihood_interval: int = 10,
        callback: Callable[[int, "COLDModel"], None] | None = None,
        check_invariants: bool = False,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
        diagnostics=None,
        stop_requested: Callable[[], bool] | None = None,
    ) -> "COLDModel":
        """Run the collapsed Gibbs sampler and store averaged estimates.

        Parameters
        ----------
        num_iterations:
            Total Gibbs sweeps.
        burn_in:
            Sweeps to discard before collecting samples; defaults to half of
            ``num_iterations``.
        sample_interval:
            Collect a point-estimate sample every this many post-burn-in
            sweeps (thinning); samples are averaged into ``estimates_``.
        likelihood_interval:
            Record the joint likelihood every this many sweeps (the paper's
            periodic convergence monitoring); 0 disables monitoring.
        callback:
            Called as ``callback(iteration, model)`` after every sweep.
        check_invariants:
            Recount all Gibbs counters after every sweep (slow; for tests).
        checkpoint_every:
            Write an atomic, checksummed checkpoint to ``checkpoint_dir``
            every this many sweeps.  A fit killed at any point can be
            continued with :meth:`resume` and produces *bit-identical*
            estimates to an uninterrupted run with the same seed.
        checkpoint_dir:
            Directory for checkpoints; required iff ``checkpoint_every``
            is set.
        diagnostics:
            An inference-quality hook — typically a
            :class:`repro.diagnostics.QualityStream` — whose
            ``maybe_record(iteration, state, hp, telemetry,
            log_likelihood)`` is invoked after every sweep.  Hooks are
            read-only over the sampler state and never consume RNG, so
            draws are bit-identical with or without one (enforced by the
            diagnostics perf gate).  ``None`` (the default) keeps the fit
            loop free of any diagnostic work.
        stop_requested:
            Polled after every sweep; returning ``True`` stops the fit at
            that sweep boundary with :class:`TrainingInterrupted` (after
            writing a final checkpoint when checkpointing is enabled).
            The CLI wires a SIGINT/SIGTERM flag into this for graceful
            Ctrl-C.  Serial fits only.
        """
        if num_iterations <= 0:
            raise ModelError("num_iterations must be positive")
        if burn_in is None:
            burn_in = num_iterations // 2
        if not 0 <= burn_in < num_iterations:
            raise ModelError("burn_in must lie in [0, num_iterations)")
        if sample_interval <= 0:
            raise ModelError("sample_interval must be positive")
        if (checkpoint_every is None) != (checkpoint_dir is None):
            raise ModelError(
                "checkpoint_every and checkpoint_dir must be given together"
            )
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ModelError("checkpoint_every must be positive")
        if self.num_nodes > 1:
            if callback is not None:
                raise ModelError(
                    "parallel fits (num_nodes > 1) do not support callback"
                )
            if diagnostics is not None:
                raise ModelError(
                    "parallel fits (num_nodes > 1) do not support diagnostics "
                    "hooks; run per-chain serial fits via "
                    "repro.diagnostics.run_chains instead"
                )
            if checkpoint_every is not None:
                raise ModelError(
                    "parallel fits (num_nodes > 1) do not support checkpointing"
                )
            return self._fit_parallel(
                corpus,
                num_iterations=num_iterations,
                burn_in=burn_in,
                sample_interval=sample_interval,
                likelihood_interval=likelihood_interval,
                check_invariants=check_invariants,
            )

        hp = self._resolve_hyperparameters(corpus)
        state = CountState.initialize(
            corpus,
            self.num_communities,
            self.num_topics,
            self._rng,
            include_network=self.include_network,
        )
        self._fit_loop(
            state=state,
            hp=hp,
            monitor=ConvergenceMonitor(),
            samples=[],
            start_iteration=0,
            num_iterations=num_iterations,
            burn_in=burn_in,
            sample_interval=sample_interval,
            likelihood_interval=likelihood_interval,
            callback=callback,
            check_invariants=check_invariants,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            diagnostics=diagnostics,
            stop_requested=stop_requested,
        )
        self.corpus_ = corpus
        return self

    def _fit_parallel(
        self,
        corpus: SocialCorpus,
        num_iterations: int,
        burn_in: int,
        sample_interval: int,
        likelihood_interval: int,
        check_invariants: bool,
    ) -> "COLDModel":
        """Delegate the fit to the parallel sampler (``num_nodes > 1``).

        The sampler owns sharding, the per-superstep snapshot/merge cycle,
        and (for ``executor="processes"``) the shared-memory worker pool;
        its fitted state, estimates, monitor, and cluster timing report
        are adopted wholesale.
        """
        from ..parallel.sampler import ParallelCOLDSampler

        sampler = ParallelCOLDSampler(
            num_communities=self.num_communities,
            num_topics=self.num_topics,
            num_nodes=self.num_nodes,
            executor=self.executor,
            num_workers=self.num_workers,
            hyperparameters=self.hyperparameters,
            include_network=self.include_network,
            kappa=self.kappa,
            prior=self.prior,
            seed=self.seed,
            fast=self.fast,
            metrics_out=self.metrics_out,
            trace_out=self.trace_out,
        )
        sampler.fit(
            corpus,
            num_iterations=num_iterations,
            burn_in=burn_in,
            sample_interval=sample_interval,
            likelihood_interval=likelihood_interval,
        )
        assert sampler.state_ is not None
        if check_invariants:
            sampler.state_.check_invariants()
        self.state_ = sampler.state_
        self.monitor_ = sampler.monitor_
        self.hyperparameters = sampler.hyperparameters
        self.estimates_ = sampler.estimates_
        self.cluster_report_ = sampler.report_
        self.corpus_ = corpus
        return self

    def _fit_loop(
        self,
        state: CountState,
        hp: Hyperparameters,
        monitor: ConvergenceMonitor,
        samples: list[ParameterEstimates],
        start_iteration: int,
        num_iterations: int,
        burn_in: int,
        sample_interval: int,
        likelihood_interval: int,
        callback: Callable[[int, "COLDModel"], None] | None,
        check_invariants: bool,
        checkpoint_every: int | None,
        checkpoint_dir: str | Path | None,
        diagnostics=None,
        stop_requested: Callable[[], bool] | None = None,
    ) -> None:
        """Sweeps ``start_iteration+1 .. num_iterations`` plus finalisation.

        Shared by :meth:`fit` (``start_iteration=0``) and :meth:`resume`;
        checkpoints are written *after* all per-iteration bookkeeping, so a
        resumed chain replays the exact remaining suffix of an
        uninterrupted run.  The fast-path sweep cache is derived entirely
        from the count state, so building it fresh here keeps resumed
        chains bit-identical too.
        """
        metrics_out = self.metrics_out
        if metrics_out is None and checkpoint_dir is not None:
            # Checkpointed fits are the long ones worth watching; default
            # the metrics stream to live next to the checkpoints.
            metrics_out = str(Path(checkpoint_dir) / "metrics.jsonl")
        telemetry = TelemetrySession.create(
            metrics_path=metrics_out, trace_path=self.trace_out
        )
        telemetry.begin(
            config={
                "num_communities": self.num_communities,
                "num_topics": self.num_topics,
                "include_network": self.include_network,
                "kappa": self.kappa,
                "prior": self.prior,
                "fast": self.fast,
                "num_iterations": num_iterations,
                "burn_in": burn_in,
                "sample_interval": sample_interval,
                "likelihood_interval": likelihood_interval,
            },
            seed=self.seed,
            executor="serial",
            num_nodes=1,
            num_workers=None,
            num_iterations=num_iterations,
            start_iteration=start_iteration,
        )
        if telemetry.enabled:
            monitor.attach(
                telemetry.likelihood_sink(int(state.posts.lengths.sum()))
            )
            _log.info(
                "serial fit: sweeps %d..%d", start_iteration + 1, num_iterations
            )
        draws_per_sweep = state.num_posts + state.num_links
        fit_settings = {
            "num_iterations": num_iterations,
            "burn_in": burn_in,
            "sample_interval": sample_interval,
            "likelihood_interval": likelihood_interval,
            "checkpoint_every": checkpoint_every,
        }
        last_checkpoint: tuple[int, Path] | None = None

        telemetry.activate()
        try:
            cache = None
            if self.fast:
                from .fastgibbs import SweepCache

                cache = SweepCache(state, hp)
            for iteration in range(start_iteration + 1, num_iterations + 1):
                before = None
                if telemetry.enabled:
                    before = (state.post_comm.copy(), state.post_topic.copy())
                wall_start = time.perf_counter()
                cpu_start = time.process_time()
                with trace.span("sweep", sweep=iteration):
                    sweep(state, hp, self._rng, cache=cache)
                wall_seconds = time.perf_counter() - wall_start
                cpu_seconds = time.process_time() - cpu_start
                if check_invariants:
                    state.check_invariants()
                    if cache is not None:
                        cache.check_consistency(state)
                likelihood = None
                if likelihood_interval and iteration % likelihood_interval == 0:
                    likelihood = joint_log_likelihood(state, hp)
                    monitor.record(likelihood)
                if diagnostics is not None:
                    with trace.span("diagnostics", sweep=iteration):
                        diagnostics.maybe_record(
                            iteration, state, hp, telemetry, likelihood
                        )
                if (
                    iteration > burn_in
                    and (iteration - burn_in) % sample_interval == 0
                ):
                    samples.append(estimate_from_state(state, hp))
                if callback is not None:
                    callback(iteration, self)
                if telemetry.enabled:
                    metrics = telemetry.metrics
                    metrics.counter("sweeps_total").inc()
                    metrics.counter("gibbs_draws_total").inc(draws_per_sweep)
                    metrics.histogram("sweep_seconds").observe(wall_seconds)
                    metrics.gauge("sweep").set(iteration)
                    memory = memory_gauges()
                    metrics.gauge("rss_peak_mb").set(memory["rss_peak_mb"])
                    metrics.gauge("major_page_faults").set(
                        memory["major_page_faults"]
                    )
                    record = {
                        "sweep": iteration,
                        "total_sweeps": num_iterations,
                        "wall_seconds": wall_seconds,
                        "cpu_seconds": cpu_seconds,
                        "rng_draws": draws_per_sweep,
                        "rss_peak_mb": memory["rss_peak_mb"],
                        "major_page_faults": memory["major_page_faults"],
                        "churn": {
                            "post_comm": int(
                                np.count_nonzero(state.post_comm != before[0])
                            ),
                            "post_topic": int(
                                np.count_nonzero(state.post_topic != before[1])
                            ),
                        },
                    }
                    if likelihood is not None:
                        record["log_likelihood"] = likelihood
                        perplexity = metrics.gauge("perplexity").value
                        if perplexity is not None:
                            record["perplexity"] = perplexity
                    telemetry.emit("sweep", **record)
                if (
                    checkpoint_every is not None
                    and iteration % checkpoint_every == 0
                ):
                    assert checkpoint_dir is not None
                    with trace.span("checkpoint_write", sweep=iteration):
                        path = self._write_checkpoint(
                            checkpoint_dir,
                            iteration,
                            state,
                            hp,
                            monitor,
                            samples,
                            fit_settings=fit_settings,
                        )
                    last_checkpoint = (iteration, path)
                    if telemetry.enabled:
                        telemetry.metrics.counter("checkpoints_total").inc()
                    _log.debug("checkpoint at sweep %d: %s", iteration, path)
                if (
                    stop_requested is not None
                    and iteration < num_iterations
                    and stop_requested()
                ):
                    # Stop at this sweep boundary: the count state is
                    # consistent here, so the final checkpoint (when
                    # enabled) resumes bit-identically.
                    final = None
                    if checkpoint_every is not None:
                        assert checkpoint_dir is not None
                        if (
                            last_checkpoint is not None
                            and last_checkpoint[0] == iteration
                        ):
                            final = last_checkpoint[1]
                        else:
                            with trace.span("checkpoint_write", sweep=iteration):
                                final = self._write_checkpoint(
                                    checkpoint_dir,
                                    iteration,
                                    state,
                                    hp,
                                    monitor,
                                    samples,
                                    fit_settings=fit_settings,
                                )
                            if telemetry.enabled:
                                telemetry.metrics.counter(
                                    "checkpoints_total"
                                ).inc()
                    if telemetry.enabled:
                        telemetry.emit("interrupt", sweep=iteration)
                    _log.info(
                        "stop requested: interrupting at sweep %d", iteration
                    )
                    raise TrainingInterrupted(iteration, final)
            telemetry.end(sweeps=num_iterations - start_iteration)
        finally:
            telemetry.close()

        if not samples:
            samples.append(estimate_from_state(state, hp))
        monitor.degenerate_draws = state.degenerate_draws
        self.state_ = state
        self.monitor_ = monitor
        self.hyperparameters = hp
        self.estimates_ = average_estimates(samples)

    # -- incremental updates -----------------------------------------------------

    def update(
        self,
        events: CorpusIncrement | Iterable[PostEvent | LinkEvent],
        *,
        stream: StreamConfig | None = None,
    ) -> UpdateReport:
        """Fold new events into the live sampler and resample a window.

        The streaming counterpart of :meth:`fit`: new posts/links join the
        Gibbs counters with random initial assignments, then
        ``update_sweeps`` restricted sweeps resample only the *window* —
        the new items, a tail of the ``window_posts``/``window_links``
        most recent pre-existing ones, and (``resample_fraction``) a
        random defrost sample of the frozen region.  Frozen assignments
        keep contributing their counts to every conditional, so this is
        windowed resampling over converged state, not a cold start.
        Estimates are re-averaged from the last ``sample_last`` sweeps
        (grown dimensions make pre-update samples unaveragable) and the
        joint likelihood is appended to ``monitor_``.

        ``events`` is either a ready-made
        :class:`~repro.datasets.stream.CorpusIncrement` (in the model's
        global id space) or raw :class:`PostEvent`/:class:`LinkEvent`
        items — the latter require an incremental builder on
        ``stream_builder_`` (an :class:`repro.streaming.OnlineTrainer`
        attaches one).  Vocabulary/user/time-grid growth is append-only;
        new psi columns start with prior mass.  ``stream`` overrides the
        model-level :class:`StreamConfig` for this call.
        """
        if self.state_ is None or self.hyperparameters is None:
            raise ModelError(
                "update() requires a fitted sampler state; fit() first "
                "(load()ed models carry estimates only)"
            )
        if self.corpus_ is not None and getattr(self.corpus_, "packed_path", None):
            raise ModelError(
                "update() cannot grow a packed corpus (the .coldpack file "
                "is immutable); fit an in-RAM SocialCorpus for streaming "
                "updates, or rebuild the packed file with the new events"
            )
        cfg = stream or self.stream or StreamConfig()
        if isinstance(events, CorpusIncrement):
            increment = events
        else:
            builder = self.stream_builder_
            if builder is None or not builder.incremental:
                raise ModelError(
                    "raw events need an incremental CorpusStreamBuilder on "
                    "stream_builder_; pass a CorpusIncrement or use "
                    "repro.streaming.OnlineTrainer"
                )
            for event in events:
                if isinstance(event, PostEvent):
                    builder.add_post(event.author_key, event.tokens, event.time)
                elif isinstance(event, LinkEvent):
                    builder.add_link(
                        event.source_key, event.target_key, event.time
                    )
                else:
                    raise ModelError(
                        f"expected PostEvent or LinkEvent, got "
                        f"{type(event).__name__}"
                    )
            increment = builder.pop_increment(
                rollover=cfg.rollover, max_new_slices=cfg.max_new_slices
            )

        state = self.state_
        hp = self.hyperparameters
        start = time.perf_counter()
        users_before = state.n_user_comm.shape[0]
        vocab_before = state.n_topic_word.shape[1]
        slices_before = state.n_comm_topic_time.shape[2]
        posts_before = state.num_posts
        links_before = state.num_links

        new_posts, new_links = state.fold_increment(
            increment.posts,
            increment.links,
            max(increment.num_users, users_before),
            max(increment.vocab_size, vocab_before),
            max(increment.num_time_slices, slices_before),
            self._rng,
            include_network=self.include_network,
        )

        # The corpus grew, so the fast-path cache is rebuilt wholesale —
        # SweepCache.refresh() only covers same-shape assignment churn.
        cache = None
        if self.fast:
            from .fastgibbs import SweepCache

            cache = SweepCache(state, hp)

        post_window = self._resample_window(
            new_posts, posts_before, cfg.window_posts, cfg.resample_fraction
        )
        link_window = self._resample_window(
            new_links, links_before, cfg.window_links, cfg.resample_fraction
        )

        samples: list[ParameterEstimates] = []
        for sweep_index in range(cfg.update_sweeps):
            with trace.span("update_sweep", sweep=sweep_index + 1):
                sweep(
                    state,
                    hp,
                    self._rng,
                    post_order=self._rng.permutation(post_window),
                    link_order=self._rng.permutation(link_window),
                    cache=cache,
                )
            if sweep_index >= cfg.update_sweeps - cfg.sample_last:
                samples.append(estimate_from_state(state, hp))
        self.estimates_ = average_estimates(samples)
        log_likelihood = joint_log_likelihood(state, hp)
        if self.monitor_ is not None:
            self.monitor_.record(log_likelihood)
            self.monitor_.degenerate_draws = state.degenerate_draws
        self._fold_into_corpus(increment)
        self.update_count_ += 1
        return UpdateReport(
            update_index=self.update_count_,
            new_posts=len(new_posts),
            new_links=len(new_links),
            new_users=state.n_user_comm.shape[0] - users_before,
            new_terms=state.n_topic_word.shape[1] - vocab_before,
            new_slices=state.n_comm_topic_time.shape[2] - slices_before,
            window_posts=len(post_window),
            window_links=len(link_window),
            sweeps=cfg.update_sweeps,
            seconds=time.perf_counter() - start,
            log_likelihood=log_likelihood,
        )

    def _resample_window(
        self,
        new_indices: np.ndarray,
        size_before: int,
        tail: int,
        resample_fraction: float,
    ) -> np.ndarray:
        """New indices + recent tail + a random defrost of the frozen rest."""
        tail = min(tail, size_before)
        parts = [new_indices, np.arange(size_before - tail, size_before)]
        frozen = size_before - tail
        defrost = int(frozen * resample_fraction)
        if defrost > 0:
            parts.append(
                self._rng.choice(frozen, size=defrost, replace=False)
            )
        return np.concatenate(parts)

    def _fold_into_corpus(self, increment: CorpusIncrement) -> None:
        """Mirror an applied increment onto the attached ``corpus_``."""
        corpus = self.corpus_
        if corpus is None:
            return
        corpus.num_users = max(corpus.num_users, increment.num_users)
        corpus.num_time_slices = max(
            corpus.num_time_slices, increment.num_time_slices
        )
        corpus.posts.extend(increment.posts)
        existing = corpus.link_set()
        corpus.links.extend(
            edge
            for edge in increment.links
            if edge not in existing and edge[0] != edge[1]
        )
        if increment.vocab_size > corpus.vocab_size:
            if corpus.vocabulary is not None and increment.new_tokens:
                from ..datasets.vocabulary import Vocabulary

                corpus.vocabulary = Vocabulary(
                    corpus.vocabulary.to_list() + list(increment.new_tokens)
                ).freeze()
            else:
                corpus.vocabulary = None
            corpus.vocab_size = increment.vocab_size

    # -- checkpoint/resume -----------------------------------------------------

    def _write_checkpoint(
        self,
        directory: str | Path,
        iteration: int,
        state: CountState,
        hp: Hyperparameters,
        monitor: ConvergenceMonitor,
        samples: list[ParameterEstimates],
        fit_settings: dict,
    ) -> Path:
        """Persist the complete sampler state for sweep ``iteration``."""
        arrays = state.to_arrays()
        for name in ("pi", "theta", "phi", "psi", "eta"):
            if samples:
                arrays[f"samples_{name}"] = np.stack(
                    [getattr(sample, name) for sample in samples]
                )
        meta = {
            "model": {
                "num_communities": self.num_communities,
                "num_topics": self.num_topics,
                "include_network": self.include_network,
                "kappa": self.kappa,
                "prior": self.prior,
                "seed": self.seed,
                "fast": self.fast,
                "executor": self.executor,
                "num_nodes": self.num_nodes,
                "num_workers": self.num_workers,
                "metrics_out": self.metrics_out,
                "trace_out": self.trace_out,
                "stream": None if self.stream is None else asdict(self.stream),
            },
            "hyperparameters": {
                "rho": hp.rho,
                "alpha": hp.alpha,
                "beta": hp.beta,
                "epsilon": hp.epsilon,
                "lambda0": hp.lambda0,
                "lambda1": hp.lambda1,
            },
            "fit": fit_settings,
            "rng_state": self._rng.bit_generator.state,
            "monitor": {
                "window": monitor.window,
                "tolerance": monitor.tolerance,
                "trace": list(monitor.trace),
            },
            "degenerate_draws": int(state.degenerate_draws),
            "num_samples": len(samples),
            # Streaming lineage: which incremental generation this state
            # is, and which checkpoint it grew from (None for the first).
            "lineage": {
                "generation": self.update_count_,
                "parent": self._checkpoint_parent,
            },
        }
        path = save_checkpoint(directory, iteration, arrays, meta)
        self._checkpoint_parent = path.name
        return path

    def checkpoint(self, directory: str | Path, iteration: int) -> Path:
        """Write an atomic checkpoint of the current fitted state.

        The streaming counterpart of ``fit(checkpoint_every=...)``: an
        :class:`~repro.streaming.OnlineTrainer` calls this between
        updates, so a killed stream restarts from the latest fold instead
        of the initial batch fit.  The checkpoint rides the existing
        validated format (checksums, newest-valid-first recovery) plus
        lineage metadata — ``meta["lineage"]`` records the incremental
        generation and the parent checkpoint file.  ``iteration`` is the
        checkpoint's sequence stamp (monotonically increasing per
        directory; the trainer uses the update index).
        """
        if self.state_ is None or self.hyperparameters is None:
            raise ModelError(
                "checkpoint() requires a fitted sampler state; fit() first"
            )
        monitor = self.monitor_ or ConvergenceMonitor()
        return self._write_checkpoint(
            directory,
            iteration,
            self.state_,
            self.hyperparameters,
            monitor,
            samples=[],
            fit_settings={
                "num_iterations": iteration,
                "burn_in": 0,
                "sample_interval": 1,
                "likelihood_interval": 0,
                "checkpoint_every": 1,
            },
        )

    @classmethod
    def resume(
        cls,
        path: str | Path,
        corpus: SocialCorpus | None = None,
        callback: Callable[[int, "COLDModel"], None] | None = None,
        check_invariants: bool = False,
        diagnostics=None,
        stop_requested: Callable[[], bool] | None = None,
    ) -> "COLDModel":
        """Continue a checkpointed fit to completion; returns the fitted model.

        ``path`` may be a checkpoint directory (the newest *valid*
        checkpoint is used — corrupted or truncated ones are skipped), a
        manifest file, or a data file.  The resumed chain is bit-identical
        to the uninterrupted fit: the checkpoint carries the full count
        state, the RNG bit-generator state, the likelihood trace, and all
        collected estimate samples.  Checkpoints keep being written to the
        same directory with the original cadence.

        ``corpus`` is optional (the checkpoint is self-contained) and only
        attaches the corpus to the returned model for downstream analysis.
        """
        arrays, meta, iteration = load_checkpoint(path)
        try:
            model_cfg = dict(meta["model"])
            hp = Hyperparameters(**meta["hyperparameters"])
            fit_settings = dict(meta["fit"])
            rng_state = meta["rng_state"]
            monitor_cfg = dict(meta["monitor"])
            num_samples = int(meta["num_samples"])
            degenerate_draws = int(meta.get("degenerate_draws", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"{path}: malformed checkpoint meta: {exc}") from exc

        try:
            model = cls(hyperparameters=hp, **model_cfg)
        except (TypeError, ModelError) as exc:
            raise CheckpointError(f"{path}: invalid model config: {exc}") from exc
        lineage = meta.get("lineage") or {}
        model.update_count_ = int(lineage.get("generation", 0))
        model._checkpoint_parent = lineage.get("parent")
        try:
            model._rng = np.random.default_rng()
            model._rng.bit_generator.state = rng_state
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"{path}: invalid RNG state: {exc}") from exc

        try:
            state = CountState.from_arrays(
                arrays,
                model.num_communities,
                model.num_topics,
                degenerate_draws=degenerate_draws,
            )
        except StateError as exc:
            raise CheckpointError(f"{path}: inconsistent state arrays: {exc}") from exc

        samples = []
        if num_samples:
            try:
                stacks = {
                    name: arrays[f"samples_{name}"]
                    for name in ("pi", "theta", "phi", "psi", "eta")
                }
            except KeyError as exc:
                raise CheckpointError(
                    f"{path}: checkpoint missing sample array {exc}"
                ) from exc
            if any(len(stack) != num_samples for stack in stacks.values()):
                raise CheckpointError(f"{path}: sample stack lengths disagree")
            samples = [
                ParameterEstimates(
                    **{name: stack[i].copy() for name, stack in stacks.items()}
                )
                for i in range(num_samples)
            ]

        monitor = ConvergenceMonitor(
            window=int(monitor_cfg.get("window", 5)),
            tolerance=float(monitor_cfg.get("tolerance", 1e-4)),
            trace=[float(v) for v in monitor_cfg.get("trace", [])],
            degenerate_draws=degenerate_draws,
        )

        checkpoint_dir = Path(path)
        if not checkpoint_dir.is_dir():
            checkpoint_dir = checkpoint_dir.parent
        try:
            model._fit_loop(
                state=state,
                hp=hp,
                monitor=monitor,
                samples=samples,
                start_iteration=iteration,
                num_iterations=int(fit_settings["num_iterations"]),
                burn_in=int(fit_settings["burn_in"]),
                sample_interval=int(fit_settings["sample_interval"]),
                likelihood_interval=int(fit_settings["likelihood_interval"]),
                callback=callback,
                check_invariants=check_invariants,
                checkpoint_every=int(fit_settings["checkpoint_every"]),
                checkpoint_dir=checkpoint_dir,
                diagnostics=diagnostics,
                stop_requested=stop_requested,
            )
        except KeyError as exc:
            raise CheckpointError(
                f"{path}: checkpoint missing fit setting {exc}"
            ) from exc
        model.corpus_ = corpus
        return model

    def _resolve_hyperparameters(self, corpus: SocialCorpus) -> Hyperparameters:
        if self.hyperparameters is not None:
            return self.hyperparameters
        network_corpus = corpus if self.include_network else None
        if self.prior == "scaled":
            return Hyperparameters.scaled(
                self.num_communities, self.num_topics, network_corpus
            )
        return Hyperparameters.default(
            self.num_communities, self.num_topics, network_corpus, kappa=self.kappa
        )

    # -- estimated distributions -------------------------------------------------

    def _require_fit(self) -> ParameterEstimates:
        if self.estimates_ is None:
            raise ModelError("model is not fitted; call fit() first")
        return self.estimates_

    @property
    def pi_(self) -> np.ndarray:
        """User community memberships, ``(U, C)``."""
        return self._require_fit().pi

    @property
    def theta_(self) -> np.ndarray:
        """Community topic interests, ``(C, K)``."""
        return self._require_fit().theta

    @property
    def phi_(self) -> np.ndarray:
        """Topic word distributions, ``(K, V)``."""
        return self._require_fit().phi

    @property
    def psi_(self) -> np.ndarray:
        """Community-specific temporal distributions, ``(K, C, T)``."""
        return self._require_fit().psi

    @property
    def eta_(self) -> np.ndarray:
        """Inter-community influence strengths, ``(C, C)``."""
        return self._require_fit().eta

    @property
    def fitted(self) -> bool:
        return self.estimates_ is not None

    # -- persistence ---------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist configuration + estimates (two files: .json and .npz).

        Both files are written atomically (temp file + ``os.replace``), so
        a crash mid-save leaves any previous artefact intact rather than a
        half-written one.
        """
        estimates = self._require_fit()
        path = Path(path)
        hp = self.hyperparameters
        config = {
            "num_communities": self.num_communities,
            "num_topics": self.num_topics,
            "include_network": self.include_network,
            "kappa": self.kappa,
            "prior": self.prior,
            "seed": self.seed,
            "fast": self.fast,
            "executor": self.executor,
            "num_nodes": self.num_nodes,
            "num_workers": self.num_workers,
            "stream": None if self.stream is None else asdict(self.stream),
            "hyperparameters": None
            if hp is None
            else {
                "rho": hp.rho,
                "alpha": hp.alpha,
                "beta": hp.beta,
                "epsilon": hp.epsilon,
                "lambda0": hp.lambda0,
                "lambda1": hp.lambda1,
            },
        }
        atomic_write_text(path.with_suffix(".json"), json.dumps(config, indent=2))
        estimates.save(path.with_suffix(".npz"))

    @classmethod
    def load(cls, path: str | Path) -> "COLDModel":
        """Load a model written by :meth:`save` (fitted, ready to predict).

        Raises :class:`ModelError` on corrupt or incomplete config files
        (never a bare ``KeyError``); missing files surface as
        ``FileNotFoundError``.
        """
        path = Path(path)
        config_path = path.with_suffix(".json")
        if not config_path.is_file():
            raise FileNotFoundError(f"no model config at {config_path}")
        try:
            config = json.loads(config_path.read_text())
            hp_dict = config.pop("hyperparameters")
            hyperparameters = None if hp_dict is None else Hyperparameters(**hp_dict)
            model = cls(hyperparameters=hyperparameters, **config)
        except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as exc:
            raise ModelError(f"{config_path}: corrupt model config: {exc}") from exc
        model.estimates_ = ParameterEstimates.load(path.with_suffix(".npz"))
        return model

    def __repr__(self) -> str:
        status = "fitted" if self.fitted else "unfitted"
        network = "network" if self.include_network else "no-link"
        return (
            f"COLDModel(C={self.num_communities}, K={self.num_topics}, "
            f"{network}, {status})"
        )
