"""Hyperparameters of the COLD model (paper §3.3–§3.4, §6.5).

The paper fixes the Dirichlet hyper-parameters by the common strategy
(``rho = 50/C``, ``alpha = 50/K``, ``beta = eps = 0.01``) and sets the Beta
prior on ``eta`` asymmetrically to model negative links *implicitly*:

    lambda_0 = kappa * ln(n_neg / C^2),   lambda_1 = 0.1

where ``n_neg = U(U-1) - |E|`` is the number of absent links and ``kappa``
is a tunable weight.  A large ``lambda_0`` pulls every ``eta_cc'`` toward
zero exactly as strongly as observing the negative links would, at none of
their O(U^2) cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..datasets.corpus import SocialCorpus


class ParameterError(ValueError):
    """Raised for invalid hyper-parameter settings."""


@dataclass(frozen=True)
class Hyperparameters:
    """Prior strengths of COLD, in the paper's notation.

    Attributes
    ----------
    rho:
        Dirichlet prior on user community memberships ``pi_i``.
    alpha:
        Dirichlet prior on community topic interests ``theta_c``.
    beta:
        Dirichlet prior on topic word distributions ``phi_k``.
    epsilon:
        Dirichlet prior on temporal distributions ``psi_kc``.
    lambda0, lambda1:
        Beta prior on inter-community link probabilities ``eta_cc'``;
        ``lambda0`` encodes the implicit negative links.
    """

    rho: float
    alpha: float
    beta: float
    epsilon: float
    lambda0: float
    lambda1: float

    def __post_init__(self) -> None:
        for name in ("rho", "alpha", "beta", "epsilon", "lambda0", "lambda1"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ParameterError(f"{name} must be finite and positive, got {value}")

    @classmethod
    def default(
        cls,
        num_communities: int,
        num_topics: int,
        corpus: SocialCorpus | None = None,
        kappa: float = 1.0,
    ) -> "Hyperparameters":
        """The paper's §6.5 settings.

        ``corpus`` supplies ``n_neg`` for the ``lambda0`` rule; without one
        a neutral ``lambda0 = 1.0`` is used (appropriate for the no-network
        COLD-NoLink variant, where ``eta`` is never sampled).
        """
        if num_communities <= 0 or num_topics <= 0:
            raise ParameterError("num_communities and num_topics must be positive")
        if kappa <= 0:
            raise ParameterError(f"kappa must be positive, got {kappa}")
        lambda0 = 1.0
        if corpus is not None:
            lambda0 = negative_link_prior(corpus, num_communities, kappa)
        return cls(
            rho=50.0 / num_communities,
            alpha=50.0 / num_topics,
            beta=0.01,
            epsilon=0.01,
            lambda0=lambda0,
            lambda1=0.1,
        )

    @classmethod
    def scaled(
        cls,
        num_communities: int,
        num_topics: int,
        corpus: SocialCorpus | None = None,
        kappa: float = 5.0,
    ) -> "Hyperparameters":
        """Scale-aware priors for laptop-sized corpora.

        The paper's ``rho = 50/C`` rule is calibrated for Weibo scale
        (hundreds of membership draws per user at ``C = 100``, where it
        equals 0.5).  On small corpora that rule swamps the likelihood —
        ``rho = 12.5`` at ``C = 4`` against ~30 draws per user flattens
        every ``pi_i``.  This factory instead pins the priors at the
        *operating values* the paper's rule produces at its own scale
        (``rho = 0.5``, ``alpha <= 1``) and strengthens the implicit
        negative-link weight (``kappa = 5``) so ``eta`` keeps contrast on
        graphs with few links per community pair.
        """
        if num_communities <= 0 or num_topics <= 0:
            raise ParameterError("num_communities and num_topics must be positive")
        lambda0 = 1.0
        if corpus is not None:
            lambda0 = negative_link_prior(corpus, num_communities, kappa)
        return cls(
            rho=0.5,
            alpha=min(50.0 / num_topics, 1.0),
            beta=0.01,
            epsilon=0.01,
            lambda0=lambda0,
            lambda1=0.1,
        )

    def with_lambda0(self, lambda0: float) -> "Hyperparameters":
        """Copy with a different ``lambda0`` (used by sensitivity studies)."""
        return replace(self, lambda0=lambda0)


def negative_link_prior(
    corpus: SocialCorpus, num_communities: int, kappa: float = 1.0
) -> float:
    """The §3.3 rule ``lambda0 = kappa * ln(n_neg / C^2)``, floored at a
    small positive value so the Beta prior stays proper on tiny graphs."""
    if num_communities <= 0:
        raise ParameterError("num_communities must be positive")
    n_neg = max(corpus.num_negative_links, 1)
    raw = kappa * math.log(n_neg / float(num_communities**2))
    return max(raw, 0.1)
