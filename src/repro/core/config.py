"""Frozen run configuration for the COLD model (the stable public surface).

:class:`COLDConfig` consolidates every knob a COLD study needs — latent
dimensions, time-slice expectations, prior strengths, sampler schedule,
and the fast/reference kernel switch — into one validated, hashable value
object.  It is what :func:`repro.api.fit` consumes and what the CLI builds
from its flags, replacing the 10+ loose kwargs that used to thread through
every entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from .._compat import warn_renamed_field
from ..telemetry.logconfig import parse_level
from .params import Hyperparameters


class ConfigError(ValueError):
    """Raised for invalid COLD run configurations."""


@dataclass(frozen=True, kw_only=True)
class StreamConfig:
    """Knobs of online incremental inference (:meth:`repro.COLDModel.update`).

    Streaming settings are nested here instead of growing more flat
    top-level :class:`COLDConfig` fields; pass one as ``COLDConfig(
    stream=StreamConfig(...))`` or per-update via ``model.update(events,
    stream=...)``.

    Attributes
    ----------
    window_posts, window_links:
        How many of the most recent *pre-existing* posts/links are
        resampled alongside the new ones on each update.  Everything
        older keeps its converged assignments (but still contributes its
        counts to every conditional).
    resample_fraction:
        Additionally resample this fraction of the frozen region,
        uniformly at random, each update — a slow defrost that keeps
        long-frozen state from ossifying as the posterior drifts.  ``0``
        (the default) freezes it completely.
    update_sweeps:
        Restricted Gibbs sweeps per update batch.
    sample_last:
        Estimates are averaged from the last this-many update sweeps
        (grown dimensions make pre-update samples unaveragable).
    rollover:
        What to do with events whose wall-clock time falls beyond the
        fitted time grid: ``"grow"`` appends new slices (psi gains
        columns initialised with prior mass), ``"clamp"`` maps them into
        the last slice, ``"error"`` raises.
    publish_interval:
        An :class:`~repro.streaming.OnlineTrainer` publishes the model
        (for serving hot-swap) every this many updates.
    checkpoint_interval:
        The trainer writes an atomic checkpoint every this many updates;
        ``None`` disables streaming checkpoints.
    max_new_slices:
        Upper bound on time-grid growth in one update; a stream whose
        stamps jump far past the fitted span (clock bugs, wrong units)
        fails loudly instead of allocating an absurd grid.
    """

    window_posts: int = 512
    window_links: int = 512
    resample_fraction: float = 0.0
    update_sweeps: int = 8
    sample_last: int = 3
    rollover: str = "grow"
    publish_interval: int = 1
    checkpoint_interval: int | None = None
    max_new_slices: int = 256

    def __post_init__(self) -> None:
        if self.window_posts < 0 or self.window_links < 0:
            raise ConfigError("window_posts and window_links must be >= 0")
        if not 0.0 <= self.resample_fraction <= 1.0:
            raise ConfigError(
                f"resample_fraction must lie in [0, 1], "
                f"got {self.resample_fraction}"
            )
        if self.update_sweeps <= 0:
            raise ConfigError("update_sweeps must be positive")
        if not 1 <= self.sample_last <= self.update_sweeps:
            raise ConfigError(
                "sample_last must lie in [1, update_sweeps]"
            )
        if self.rollover not in ("grow", "clamp", "error"):
            raise ConfigError(
                "rollover must be 'grow', 'clamp', or 'error', "
                f"got {self.rollover!r}"
            )
        if self.publish_interval <= 0:
            raise ConfigError("publish_interval must be positive")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigError("checkpoint_interval must be positive when given")
        if self.max_new_slices <= 0:
            raise ConfigError("max_new_slices must be positive")


#: StreamConfig field names, for the deprecated flat-alias path below.
_STREAM_FIELDS = frozenset(f.name for f in fields(StreamConfig))


@dataclass(frozen=True, kw_only=True)
class COLDConfig:
    """Everything needed to reproduce one COLD fit.

    Attributes
    ----------
    num_communities, num_topics:
        Latent dimensions ``C`` and ``K``.
    num_time_slices:
        Expected corpus time grid ``T``; ``None`` accepts whatever the
        corpus carries, an explicit value makes :func:`repro.api.fit` fail
        fast on a corpus with a different grid (a common silent mistake
        when mixing hourly and daily exports).
    hyperparameters:
        Explicit prior strengths; ``None`` derives them from ``prior``.
    include_network:
        ``False`` gives the paper's COLD-NoLink ablation.
    kappa:
        Weight of the implicit-negative-link prior (§3.3).
    prior:
        ``"paper"`` (§6.5 rules, Weibo scale) or ``"scaled"`` (laptop
        scale); ignored when ``hyperparameters`` is given.
    seed:
        Sampler RNG seed; fits are reproducible given a seed.
    fast:
        Use the cached vectorised Gibbs kernels (bit-identical draws to
        the reference kernels, several times faster); ``False`` selects
        the reference kernels, kept as the correctness oracle.
    executor:
        How parallel node work runs when ``num_nodes > 1``:
        ``"simulated"`` (sequential with simulated-cluster timing),
        ``"threads"`` (thread pool), or ``"processes"`` (shared-memory
        worker processes; true multi-core).  All three draw the identical
        chain for a given seed and node count.
    num_nodes:
        Cluster nodes (shards) of the parallel sampler; ``1`` keeps the
        serial sampler.
    num_workers:
        Worker processes for the ``processes`` executor (defaults to
        ``num_nodes``); fewer workers multiplexes shards over the pool
        without changing the draws.
    num_iterations, burn_in, sample_interval, likelihood_interval:
        The Gibbs schedule, as in :meth:`repro.COLDModel.fit`.
    metrics_out, trace_out:
        Telemetry destinations (see :mod:`repro.telemetry`): a JSONL
        metrics stream (tailable with ``cold monitor``) and a Chrome
        ``trace_event`` JSON file.  ``None`` keeps instrumentation a
        no-op; draws are bit-identical either way.
    log_level:
        When set (``"debug"``/``"info"``/...), :func:`repro.api.fit`
        configures the package's structured logging at this level before
        fitting; ``None`` leaves logging untouched.
    """

    num_communities: int = 20
    num_topics: int = 20
    num_time_slices: int | None = None
    hyperparameters: Hyperparameters | None = None
    include_network: bool = True
    kappa: float = 1.0
    prior: str = "paper"
    seed: int = 0
    fast: bool = True
    executor: str = "simulated"
    num_nodes: int = 1
    num_workers: int | None = None
    num_iterations: int = 100
    burn_in: int | None = None
    sample_interval: int = 5
    likelihood_interval: int = 10
    metrics_out: str | None = None
    trace_out: str | None = None
    log_level: str | None = None
    stream: StreamConfig | None = None

    #: Fields consumed by ``COLDModel.__init__`` (the rest schedule ``fit``).
    _MODEL_FIELDS = (
        "num_communities",
        "num_topics",
        "hyperparameters",
        "include_network",
        "kappa",
        "prior",
        "seed",
        "fast",
        "executor",
        "num_nodes",
        "num_workers",
        "metrics_out",
        "trace_out",
        "stream",
    )

    def __post_init__(self) -> None:
        if self.num_communities <= 0 or self.num_topics <= 0:
            raise ConfigError("num_communities and num_topics must be positive")
        if self.num_time_slices is not None and self.num_time_slices <= 0:
            raise ConfigError("num_time_slices must be positive when given")
        if self.prior not in ("paper", "scaled"):
            raise ConfigError(f"prior must be 'paper' or 'scaled', got {self.prior!r}")
        if self.kappa <= 0:
            raise ConfigError("kappa must be positive")
        if self.executor not in ("simulated", "threads", "processes"):
            raise ConfigError(
                "executor must be 'simulated', 'threads', or 'processes', "
                f"got {self.executor!r}"
            )
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.num_workers is not None and self.num_workers <= 0:
            raise ConfigError("num_workers must be positive when given")
        if self.num_workers is not None and self.executor != "processes":
            raise ConfigError(
                "num_workers only applies to the 'processes' executor"
            )
        if self.num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if self.burn_in is not None and not 0 <= self.burn_in < self.num_iterations:
            raise ConfigError("burn_in must lie in [0, num_iterations)")
        if self.sample_interval <= 0:
            raise ConfigError("sample_interval must be positive")
        if self.likelihood_interval < 0:
            raise ConfigError("likelihood_interval must be >= 0")
        if self.log_level is not None:
            try:
                parse_level(self.log_level)
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
        if self.stream is not None:
            if isinstance(self.stream, dict):
                # Round-tripped configs (saved models, checkpoints) carry
                # the nested StreamConfig as a plain mapping.
                try:
                    object.__setattr__(
                        self, "stream", StreamConfig(**self.stream)
                    )
                except TypeError as exc:
                    raise ConfigError(f"invalid stream config: {exc}") from exc
            elif not isinstance(self.stream, StreamConfig):
                raise ConfigError(
                    "stream must be a StreamConfig (or None), "
                    f"got {type(self.stream).__name__}"
                )

    def model_kwargs(self) -> dict:
        """The subset of fields ``COLDModel.__init__`` consumes."""
        return {name: getattr(self, name) for name in self._MODEL_FIELDS}

    def fit_kwargs(self) -> dict:
        """The subset of fields that schedule ``COLDModel.fit``."""
        return {
            "num_iterations": self.num_iterations,
            "burn_in": self.burn_in,
            "sample_interval": self.sample_interval,
            "likelihood_interval": self.likelihood_interval,
        }

    def evolve(self, **changes: object) -> "COLDConfig":
        """A copy with ``changes`` applied (validated like a fresh config).

        Flat ``stream_<field>`` keywords (the pre-:class:`StreamConfig`
        spelling) are still accepted but deprecated: each warns once per
        process and folds into the nested ``stream`` config.  Use
        ``evolve(stream=StreamConfig(...))`` going forward.
        """
        flat = {
            name: changes.pop(name)
            for name in list(changes)
            if name.startswith("stream_")
            and name[len("stream_"):] in _STREAM_FIELDS
        }
        if flat:
            stream = changes.get("stream", self.stream)
            if stream is None:
                stream = StreamConfig()
            if not isinstance(stream, StreamConfig):
                raise ConfigError(
                    "stream must be a StreamConfig when combining with "
                    "deprecated stream_* keywords"
                )
            for name in flat:
                warn_renamed_field(
                    f"COLDConfig.{name}",
                    f"COLDConfig.stream.{name[len('stream_'):]}",
                )
            changes["stream"] = replace(
                stream,
                **{name[len("stream_"):]: value for name, value in flat.items()},
            )
        known = {f.name for f in fields(self)}
        unknown = set(changes) - known
        if unknown:
            raise ConfigError(
                f"unknown COLDConfig field(s): {', '.join(sorted(unknown))}"
            )
        return replace(self, **changes)  # type: ignore[arg-type]
