"""Frozen run configuration for the COLD model (the stable public surface).

:class:`COLDConfig` consolidates every knob a COLD study needs — latent
dimensions, time-slice expectations, prior strengths, sampler schedule,
and the fast/reference kernel switch — into one validated, hashable value
object.  It is what :func:`repro.api.fit` consumes and what the CLI builds
from its flags, replacing the 10+ loose kwargs that used to thread through
every entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from ..telemetry.logconfig import parse_level
from .params import Hyperparameters


class ConfigError(ValueError):
    """Raised for invalid COLD run configurations."""


@dataclass(frozen=True, kw_only=True)
class COLDConfig:
    """Everything needed to reproduce one COLD fit.

    Attributes
    ----------
    num_communities, num_topics:
        Latent dimensions ``C`` and ``K``.
    num_time_slices:
        Expected corpus time grid ``T``; ``None`` accepts whatever the
        corpus carries, an explicit value makes :func:`repro.api.fit` fail
        fast on a corpus with a different grid (a common silent mistake
        when mixing hourly and daily exports).
    hyperparameters:
        Explicit prior strengths; ``None`` derives them from ``prior``.
    include_network:
        ``False`` gives the paper's COLD-NoLink ablation.
    kappa:
        Weight of the implicit-negative-link prior (§3.3).
    prior:
        ``"paper"`` (§6.5 rules, Weibo scale) or ``"scaled"`` (laptop
        scale); ignored when ``hyperparameters`` is given.
    seed:
        Sampler RNG seed; fits are reproducible given a seed.
    fast:
        Use the cached vectorised Gibbs kernels (bit-identical draws to
        the reference kernels, several times faster); ``False`` selects
        the reference kernels, kept as the correctness oracle.
    executor:
        How parallel node work runs when ``num_nodes > 1``:
        ``"simulated"`` (sequential with simulated-cluster timing),
        ``"threads"`` (thread pool), or ``"processes"`` (shared-memory
        worker processes; true multi-core).  All three draw the identical
        chain for a given seed and node count.
    num_nodes:
        Cluster nodes (shards) of the parallel sampler; ``1`` keeps the
        serial sampler.
    num_workers:
        Worker processes for the ``processes`` executor (defaults to
        ``num_nodes``); fewer workers multiplexes shards over the pool
        without changing the draws.
    num_iterations, burn_in, sample_interval, likelihood_interval:
        The Gibbs schedule, as in :meth:`repro.COLDModel.fit`.
    metrics_out, trace_out:
        Telemetry destinations (see :mod:`repro.telemetry`): a JSONL
        metrics stream (tailable with ``cold monitor``) and a Chrome
        ``trace_event`` JSON file.  ``None`` keeps instrumentation a
        no-op; draws are bit-identical either way.
    log_level:
        When set (``"debug"``/``"info"``/...), :func:`repro.api.fit`
        configures the package's structured logging at this level before
        fitting; ``None`` leaves logging untouched.
    """

    num_communities: int = 20
    num_topics: int = 20
    num_time_slices: int | None = None
    hyperparameters: Hyperparameters | None = None
    include_network: bool = True
    kappa: float = 1.0
    prior: str = "paper"
    seed: int = 0
    fast: bool = True
    executor: str = "simulated"
    num_nodes: int = 1
    num_workers: int | None = None
    num_iterations: int = 100
    burn_in: int | None = None
    sample_interval: int = 5
    likelihood_interval: int = 10
    metrics_out: str | None = None
    trace_out: str | None = None
    log_level: str | None = None

    #: Fields consumed by ``COLDModel.__init__`` (the rest schedule ``fit``).
    _MODEL_FIELDS = (
        "num_communities",
        "num_topics",
        "hyperparameters",
        "include_network",
        "kappa",
        "prior",
        "seed",
        "fast",
        "executor",
        "num_nodes",
        "num_workers",
        "metrics_out",
        "trace_out",
    )

    def __post_init__(self) -> None:
        if self.num_communities <= 0 or self.num_topics <= 0:
            raise ConfigError("num_communities and num_topics must be positive")
        if self.num_time_slices is not None and self.num_time_slices <= 0:
            raise ConfigError("num_time_slices must be positive when given")
        if self.prior not in ("paper", "scaled"):
            raise ConfigError(f"prior must be 'paper' or 'scaled', got {self.prior!r}")
        if self.kappa <= 0:
            raise ConfigError("kappa must be positive")
        if self.executor not in ("simulated", "threads", "processes"):
            raise ConfigError(
                "executor must be 'simulated', 'threads', or 'processes', "
                f"got {self.executor!r}"
            )
        if self.num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if self.num_workers is not None and self.num_workers <= 0:
            raise ConfigError("num_workers must be positive when given")
        if self.num_workers is not None and self.executor != "processes":
            raise ConfigError(
                "num_workers only applies to the 'processes' executor"
            )
        if self.num_iterations <= 0:
            raise ConfigError("num_iterations must be positive")
        if self.burn_in is not None and not 0 <= self.burn_in < self.num_iterations:
            raise ConfigError("burn_in must lie in [0, num_iterations)")
        if self.sample_interval <= 0:
            raise ConfigError("sample_interval must be positive")
        if self.likelihood_interval < 0:
            raise ConfigError("likelihood_interval must be >= 0")
        if self.log_level is not None:
            try:
                parse_level(self.log_level)
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc

    def model_kwargs(self) -> dict:
        """The subset of fields ``COLDModel.__init__`` consumes."""
        return {name: getattr(self, name) for name in self._MODEL_FIELDS}

    def fit_kwargs(self) -> dict:
        """The subset of fields that schedule ``COLDModel.fit``."""
        return {
            "num_iterations": self.num_iterations,
            "burn_in": self.burn_in,
            "sample_interval": self.sample_interval,
            "likelihood_interval": self.likelihood_interval,
        }

    def evolve(self, **changes: object) -> "COLDConfig":
        """A copy with ``changes`` applied (validated like a fresh config)."""
        known = {f.name for f in fields(self)}
        unknown = set(changes) - known
        if unknown:
            raise ConfigError(
                f"unknown COLDConfig field(s): {', '.join(sorted(unknown))}"
            )
        return replace(self, **changes)  # type: ignore[arg-type]
