"""Community-level diffusion extraction (paper §5.1, Figure 5).

From the fitted intermediate factors, the topic-sensitive influence between
communities is the two-stage combination of Eq. (4)::

    zeta_kcc' = theta_ck * theta_c'k * eta_cc'

which reduces the parameter count from C*C*K free parameters to C*(C+K)
while keeping the predictive power the paper demonstrates (§3.5).

:class:`CommunityDiffusionGraph` packages one topic's diffusion view — the
data behind Figure 5: per-community interest pies, community-specific
temporal curves (``psi``), and influence-weighted edges (``zeta``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .estimates import ParameterEstimates


class DiffusionError(ValueError):
    """Raised for invalid diffusion-extraction requests."""


def zeta(estimates: ParameterEstimates) -> np.ndarray:
    """All topic-sensitive influence strengths, shape ``(K, C, C)``.

    ``zeta[k, c, c']`` is community c's influence on c' at topic k (Eq. 4).
    """
    theta_kc = estimates.theta.T  # (K, C)
    return theta_kc[:, :, None] * theta_kc[:, None, :] * estimates.eta[None, :, :]


def zeta_for_topic(estimates: ParameterEstimates, topic: int) -> np.ndarray:
    """One topic's ``(C, C)`` influence matrix (Eq. 4)."""
    K = estimates.num_topics
    if not 0 <= topic < K:
        raise DiffusionError(f"topic {topic} out of range [0, {K})")
    interest = estimates.theta[:, topic]  # (C,)
    return np.outer(interest, interest) * estimates.eta


@dataclass(frozen=True)
class DiffusionEdge:
    """One influence edge of the Figure-5 graph."""

    source: int
    target: int
    strength: float


@dataclass
class CommunityDiffusionGraph:
    """The Figure-5 data structure for a single topic.

    Attributes
    ----------
    topic:
        The topic index ``k``.
    communities:
        Community indices included (the ``max_communities`` most interested).
    interest:
        ``theta_ck`` for each included community — the pie-chart weights.
    top_topics:
        Per community, its top-5 interests ``[(topic, weight), ...]`` — the
        pie slices of Figure 5's nodes.
    timelines:
        ``psi_kc`` rows for each included community — the per-node curves.
    edges:
        Influence edges with ``zeta_kcc'`` strengths, strongest first,
        truncated to ``max_edges``.
    """

    topic: int
    communities: list[int]
    interest: np.ndarray
    top_topics: list[list[tuple[int, float]]]
    timelines: np.ndarray
    edges: list[DiffusionEdge]

    def peak_times(self) -> np.ndarray:
        """Per included community, the time slice where the topic peaks."""
        return self.timelines.argmax(axis=1)

    def strongest_community(self) -> int:
        """The included community with the largest total outgoing influence
        at this topic — Figure 5's 'most influential on Journey West'."""
        outgoing = np.zeros(len(self.communities))
        index_of = {c: i for i, c in enumerate(self.communities)}
        for edge in self.edges:
            outgoing[index_of[edge.source]] += edge.strength
        return self.communities[int(outgoing.argmax())]


def extract_diffusion_graph(
    estimates: ParameterEstimates,
    topic: int,
    max_communities: int = 8,
    max_edges: int = 20,
    top_topics_per_community: int = 5,
) -> CommunityDiffusionGraph:
    """Build the Figure-5 view of ``topic``'s community-level diffusion.

    Communities are ranked by interest ``theta_ck``; the ``max_communities``
    most interested are included, their pairwise ``zeta`` edges ranked by
    strength and truncated to ``max_edges``.
    """
    K = estimates.num_topics
    if not 0 <= topic < K:
        raise DiffusionError(f"topic {topic} out of range [0, {K})")
    if max_communities < 2:
        raise DiffusionError("need at least 2 communities for a diffusion graph")

    interest_all = estimates.theta[:, topic]
    order = np.argsort(interest_all)[::-1]
    included = [int(c) for c in order[: min(max_communities, len(order))]]

    influence = zeta_for_topic(estimates, topic)
    edges: list[DiffusionEdge] = []
    for c in included:
        for c_prime in included:
            if c == c_prime:
                continue
            edges.append(
                DiffusionEdge(
                    source=c, target=c_prime, strength=float(influence[c, c_prime])
                )
            )
    edges.sort(key=lambda e: e.strength, reverse=True)
    edges = edges[:max_edges]

    top_topics: list[list[tuple[int, float]]] = []
    for c in included:
        ranked = np.argsort(estimates.theta[c])[::-1][:top_topics_per_community]
        top_topics.append([(int(k), float(estimates.theta[c, k])) for k in ranked])

    return CommunityDiffusionGraph(
        topic=topic,
        communities=included,
        interest=interest_all[included].copy(),
        top_topics=top_topics,
        timelines=estimates.psi[topic, included, :].copy(),
        edges=edges,
    )
