"""Count state of the collapsed Gibbs sampler.

Collapsed Gibbs sampling never stores ``pi/theta/phi/psi/eta`` directly;
everything is expressed through sufficient-statistic counters (paper Eqs.
1–3).  :class:`CountState` owns those counters plus the current latent
assignments, and knows how to add/remove one post or link in O(post length)
— the property that makes each Gibbs sweep linear in the data size (§4.2).

Counter glossary (paper notation -> attribute):

* ``n_i^(c)``    -> ``n_user_comm[i, c]``   posts *and* link endpoints of
  user ``i`` assigned to community ``c`` (both are draws from ``pi_i``);
* ``n_c^(k)``    -> ``n_comm_topic[c, k]``  posts in community ``c`` with
  topic ``k``;
* ``n_ck^(t)``   -> ``n_comm_topic_time[c, k, t]`` time stamps;
* ``n_k^(v)``    -> ``n_topic_word[k, v]``  word tokens;
* ``n_k^(.)``    -> ``n_topic_total[k]``;
* ``n_cc'``      -> ``n_link_comm[c, c']``  positive links labelled (c, c').
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.corpus import SocialCorpus


class StateError(ValueError):
    """Raised when the count state is used inconsistently."""


@dataclass
class PostTable:
    """Struct-of-arrays view of the corpus posts, built once per fit.

    ``unique_words`` / ``unique_counts`` are CSR-style flattened per-post
    multisets (``offsets[p]:offsets[p+1]`` is post ``p``'s slice); they feed
    the Eq. (3) word term without per-iteration dictionary work.
    """

    authors: np.ndarray
    times: np.ndarray
    lengths: np.ndarray
    offsets: np.ndarray
    unique_words: np.ndarray
    unique_counts: np.ndarray

    @classmethod
    def from_corpus(cls, corpus: SocialCorpus) -> "PostTable":
        # Packed corpora store this table's exact columns on disk
        # (unique multisets in the same first-appearance order as
        # Post.word_counts()), so take their zero-copy mmap views
        # instead of looping over materialised posts.
        table_factory = getattr(corpus, "post_table", None)
        if callable(table_factory):
            return table_factory()
        authors = np.empty(corpus.num_posts, dtype=np.int64)
        times = np.empty(corpus.num_posts, dtype=np.int64)
        lengths = np.empty(corpus.num_posts, dtype=np.int64)
        offsets = np.zeros(corpus.num_posts + 1, dtype=np.int64)
        words_flat: list[int] = []
        counts_flat: list[int] = []
        for p, post in enumerate(corpus.posts):
            authors[p] = post.author
            times[p] = post.timestamp
            lengths[p] = len(post)
            counts = post.word_counts()
            for v, m in counts.items():
                words_flat.append(v)
                counts_flat.append(m)
            offsets[p + 1] = offsets[p] + len(counts)
        return cls(
            authors=authors,
            times=times,
            lengths=lengths,
            offsets=offsets,
            unique_words=np.asarray(words_flat, dtype=np.int64),
            unique_counts=np.asarray(counts_flat, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.authors)

    def words_of(self, post: int) -> tuple[np.ndarray, np.ndarray]:
        """Unique word ids and their multiplicities for one post."""
        lo, hi = self.offsets[post], self.offsets[post + 1]
        return self.unique_words[lo:hi], self.unique_counts[lo:hi]


@dataclass
class CountState:
    """All Gibbs counters plus current latent assignments.

    Shapes: ``U`` users, ``C`` communities, ``K`` topics, ``T`` time slices,
    ``V`` vocabulary terms, ``D`` posts, ``E`` positive links.
    """

    num_communities: int
    num_topics: int
    posts: PostTable
    links: np.ndarray  # (E, 2)
    n_user_comm: np.ndarray  # (U, C)
    n_comm_topic: np.ndarray  # (C, K)
    n_comm_topic_time: np.ndarray  # (C, K, T)
    n_topic_word: np.ndarray  # (K, V)
    n_topic_total: np.ndarray  # (K,)
    n_link_comm: np.ndarray  # (C, C)
    post_comm: np.ndarray  # (D,)
    post_topic: np.ndarray  # (D,)
    link_src_comm: np.ndarray  # (E,)
    link_dst_comm: np.ndarray  # (E,)
    #: Number of degenerate categorical draws (all-zero/non-finite weights)
    #: the Gibbs kernels fell back to uniform on; see repro.core.gibbs.
    degenerate_draws: int = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def initialize(
        cls,
        corpus: SocialCorpus,
        num_communities: int,
        num_topics: int,
        rng: np.random.Generator,
        include_network: bool = True,
    ) -> "CountState":
        """Random initial assignments with counters built to match."""
        if num_communities <= 0 or num_topics <= 0:
            raise StateError("num_communities and num_topics must be positive")
        posts = PostTable.from_corpus(corpus)
        links = corpus.link_array() if include_network else np.zeros((0, 2), np.int64)
        D, E = len(posts), len(links)
        state = cls(
            num_communities=num_communities,
            num_topics=num_topics,
            posts=posts,
            links=links,
            n_user_comm=np.zeros((corpus.num_users, num_communities), np.int64),
            n_comm_topic=np.zeros((num_communities, num_topics), np.int64),
            n_comm_topic_time=np.zeros(
                (num_communities, num_topics, corpus.num_time_slices), np.int64
            ),
            n_topic_word=np.zeros((num_topics, corpus.vocab_size), np.int64),
            n_topic_total=np.zeros(num_topics, np.int64),
            n_link_comm=np.zeros((num_communities, num_communities), np.int64),
            post_comm=rng.integers(num_communities, size=D),
            post_topic=rng.integers(num_topics, size=D),
            link_src_comm=rng.integers(num_communities, size=E),
            link_dst_comm=rng.integers(num_communities, size=E),
        )
        for p in range(D):
            state.add_post(p, int(state.post_comm[p]), int(state.post_topic[p]))
        for e in range(E):
            state.add_link(e, int(state.link_src_comm[e]), int(state.link_dst_comm[e]))
        return state

    # -- post bookkeeping -----------------------------------------------------

    def remove_post(self, post: int) -> tuple[int, int]:
        """Subtract post ``post``'s contribution; returns its (c, z)."""
        c = int(self.post_comm[post])
        k = int(self.post_topic[post])
        author = self.posts.authors[post]
        t = self.posts.times[post]
        self.n_user_comm[author, c] -= 1
        self.n_comm_topic[c, k] -= 1
        self.n_comm_topic_time[c, k, t] -= 1
        words, counts = self.posts.words_of(post)
        # Unique-word indices (PostTable is a unique-word CSR), so plain
        # fancy-index updates are exact and much cheaper than ufunc.at.
        self.n_topic_word[k, words] -= counts
        self.n_topic_total[k] -= self.posts.lengths[post]
        return c, k

    def add_post(self, post: int, c: int, k: int) -> None:
        """Add post ``post`` with assignment (c, z=k)."""
        author = self.posts.authors[post]
        t = self.posts.times[post]
        self.post_comm[post] = c
        self.post_topic[post] = k
        self.n_user_comm[author, c] += 1
        self.n_comm_topic[c, k] += 1
        self.n_comm_topic_time[c, k, t] += 1
        words, counts = self.posts.words_of(post)
        self.n_topic_word[k, words] += counts
        self.n_topic_total[k] += self.posts.lengths[post]

    def move_post(self, post: int, c: int, k: int) -> tuple[int, int]:
        """Reassign ``post`` to (c, k), applying only the net counter deltas.

        Exactly equivalent to ``remove_post`` followed by ``add_post(post,
        c, k)`` — all counters are integers, so skipping the cancelled
        updates (same community, same topic) changes nothing — but
        substantially cheaper on the sampler hot path.  Returns the old
        ``(c, k)``.
        """
        old_c = int(self.post_comm[post])
        old_k = int(self.post_topic[post])
        author = self.posts.authors[post]
        t = self.posts.times[post]
        self.post_comm[post] = c
        self.post_topic[post] = k
        if c != old_c:
            self.n_user_comm[author, old_c] -= 1
            self.n_user_comm[author, c] += 1
        self.n_comm_topic[old_c, old_k] -= 1
        self.n_comm_topic[c, k] += 1
        self.n_comm_topic_time[old_c, old_k, t] -= 1
        self.n_comm_topic_time[c, k, t] += 1
        if k != old_k:
            words, counts = self.posts.words_of(post)
            self.n_topic_word[old_k, words] -= counts
            self.n_topic_word[k, words] += counts
            length = self.posts.lengths[post]
            self.n_topic_total[old_k] -= length
            self.n_topic_total[k] += length
        return old_c, old_k

    # -- link bookkeeping -----------------------------------------------------

    def remove_link(self, link: int) -> tuple[int, int]:
        """Subtract link ``link``'s contribution; returns its (s, s')."""
        src, dst = self.links[link]
        c = int(self.link_src_comm[link])
        c_prime = int(self.link_dst_comm[link])
        self.n_user_comm[src, c] -= 1
        self.n_user_comm[dst, c_prime] -= 1
        self.n_link_comm[c, c_prime] -= 1
        return c, c_prime

    def add_link(self, link: int, c: int, c_prime: int) -> None:
        """Add link ``link`` with community labels (s=c, s'=c_prime)."""
        src, dst = self.links[link]
        self.link_src_comm[link] = c
        self.link_dst_comm[link] = c_prime
        self.n_user_comm[src, c] += 1
        self.n_user_comm[dst, c_prime] += 1
        self.n_link_comm[c, c_prime] += 1

    def move_link(self, link: int, c: int, c_prime: int) -> tuple[int, int]:
        """Relabel ``link`` to (c, c'), applying only the net counter deltas.

        Exactly equivalent to ``remove_link`` followed by ``add_link(link,
        c, c_prime)`` (integer counters, cancelled updates skipped).
        Returns the old ``(c, c')``.
        """
        src, dst = self.links[link]
        old_c = int(self.link_src_comm[link])
        old_c_prime = int(self.link_dst_comm[link])
        self.link_src_comm[link] = c
        self.link_dst_comm[link] = c_prime
        if c != old_c:
            self.n_user_comm[src, old_c] -= 1
            self.n_user_comm[src, c] += 1
        if c_prime != old_c_prime:
            self.n_user_comm[dst, old_c_prime] -= 1
            self.n_user_comm[dst, c_prime] += 1
        self.n_link_comm[old_c, old_c_prime] -= 1
        self.n_link_comm[c, c_prime] += 1
        return old_c, old_c_prime

    # -- incremental growth ---------------------------------------------------

    def fold_increment(
        self,
        posts: "Sequence",
        links: "Sequence[tuple[int, int]]",
        num_users: int,
        vocab_size: int,
        num_time_slices: int,
        rng: np.random.Generator,
        include_network: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Grow the state for new corpus content and fold it into the counters.

        Dimensions are append-only: ``num_users`` / ``vocab_size`` /
        ``num_time_slices`` are the new totals and must not shrink (new
        rows/columns/slices start at zero counts — for psi that is exactly
        the prior-mass initialisation, since estimation smooths every
        count with epsilon).  New posts and links get random initial
        assignments from ``rng`` (mirroring :meth:`initialize`) and their
        counts are added in O(new data).  Links already present in the
        state (or duplicated within the increment) are dropped, matching
        corpus-construction dedup.  Returns ``(new_post_indices,
        new_link_indices)`` into the grown tables.

        Raises :class:`StateError` on shrinking dimensions or on a post
        that references an out-of-range user/word/time id.
        """
        U, C = self.n_user_comm.shape
        K, V = self.n_topic_word.shape
        T = self.n_comm_topic_time.shape[2]
        if num_users < U or vocab_size < V or num_time_slices < T:
            raise StateError(
                "increment shrinks a dimension: "
                f"users {U}->{num_users}, vocab {V}->{vocab_size}, "
                f"slices {T}->{num_time_slices}"
            )
        for post in posts:
            if not 0 <= post.author < num_users:
                raise StateError(f"post author {post.author} out of range")
            if not 0 <= post.timestamp < num_time_slices:
                raise StateError(f"post timestamp {post.timestamp} out of range")
            if any(not 0 <= w < vocab_size for w in post.words):
                raise StateError("post word id out of range")

        if num_users > U:
            self.n_user_comm = np.concatenate(
                [self.n_user_comm, np.zeros((num_users - U, C), np.int64)]
            )
        if vocab_size > V:
            self.n_topic_word = np.concatenate(
                [self.n_topic_word, np.zeros((K, vocab_size - V), np.int64)],
                axis=1,
            )
        if num_time_slices > T:
            grown = np.zeros((C, K, num_time_slices), np.int64)
            grown[:, :, :T] = self.n_comm_topic_time
            self.n_comm_topic_time = grown

        # Append the new posts to the struct-of-arrays table.
        table = self.posts
        D = len(table)
        if posts:
            authors = np.fromiter(
                (p.author for p in posts), np.int64, count=len(posts)
            )
            times = np.fromiter(
                (p.timestamp for p in posts), np.int64, count=len(posts)
            )
            lengths = np.fromiter(
                (len(p) for p in posts), np.int64, count=len(posts)
            )
            offsets = np.empty(len(posts), np.int64)
            words_flat: list[int] = []
            counts_flat: list[int] = []
            running = int(table.offsets[-1])
            for i, post in enumerate(posts):
                counts = post.word_counts()
                words_flat.extend(counts.keys())
                counts_flat.extend(counts.values())
                running += len(counts)
                offsets[i] = running
            table.authors = np.concatenate([table.authors, authors])
            table.times = np.concatenate([table.times, times])
            table.lengths = np.concatenate([table.lengths, lengths])
            table.offsets = np.concatenate([table.offsets, offsets])
            table.unique_words = np.concatenate(
                [table.unique_words, np.asarray(words_flat, np.int64)]
            )
            table.unique_counts = np.concatenate(
                [table.unique_counts, np.asarray(counts_flat, np.int64)]
            )
        new_post_indices = np.arange(D, D + len(posts))
        self.post_comm = np.concatenate(
            [self.post_comm, rng.integers(C, size=len(posts))]
        )
        self.post_topic = np.concatenate(
            [self.post_topic, rng.integers(K, size=len(posts))]
        )
        for p in new_post_indices:
            self.add_post(int(p), int(self.post_comm[p]), int(self.post_topic[p]))

        # Dedup new links against the existing edge set (and each other).
        fresh: list[tuple[int, int]] = []
        if include_network and links:
            seen = {(int(s), int(d)) for s, d in self.links}
            for source, target in links:
                edge = (int(source), int(target))
                if edge[0] == edge[1] or edge in seen:
                    continue
                if not (0 <= edge[0] < num_users and 0 <= edge[1] < num_users):
                    raise StateError(f"link endpoint {edge} out of range")
                seen.add(edge)
                fresh.append(edge)
        E = len(self.links)
        new_link_indices = np.arange(E, E + len(fresh))
        if fresh:
            self.links = np.concatenate(
                [self.links, np.asarray(fresh, np.int64).reshape(-1, 2)]
            )
            self.link_src_comm = np.concatenate(
                [self.link_src_comm, rng.integers(C, size=len(fresh))]
            )
            self.link_dst_comm = np.concatenate(
                [self.link_dst_comm, rng.integers(C, size=len(fresh))]
            )
            for e in new_link_indices:
                self.add_link(
                    int(e), int(self.link_src_comm[e]), int(self.link_dst_comm[e])
                )
        return new_post_indices, new_link_indices

    # -- sparse iteration -----------------------------------------------------

    def active_comm_topic_cells(self) -> tuple[np.ndarray, np.ndarray]:
        """Indices ``(cs, ks)`` of (community, topic) cells holding posts.

        On mixed chains most of the ``C x K`` grid is cold (zero posts);
        consumers that precompute per-cell quantities (the fast-sweep
        caches, occupancy reports) iterate only these cells and fill the
        cold ones with the shared zero-count value.
        """
        return np.nonzero(self.n_comm_topic)

    def active_topic_words(self) -> tuple[np.ndarray, np.ndarray]:
        """Indices ``(ks, vs)`` of (topic, word) cells with nonzero counts.

        The ``K x V`` word-count matrix is overwhelmingly sparse for real
        vocabularies; per-cell precomputation touches only these entries.
        """
        return np.nonzero(self.n_topic_word)

    def top_comm_topic_cells(
        self, limit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``limit`` hottest (community, topic) cells by post count.

        Returns ``(cs, ks, counts)`` sorted by descending count; cold
        (zero) cells are never included, so fewer than ``limit`` rows come
        back on sparse states.  Used for top-K occupancy summaries (the
        perf harness reports these) without scanning the full grid.
        """
        if limit <= 0:
            raise StateError("limit must be positive")
        cs, ks = self.active_comm_topic_cells()
        counts = self.n_comm_topic[cs, ks]
        order = np.argsort(counts, kind="stable")[::-1][:limit]
        return cs[order], ks[order], counts[order]

    # -- invariants -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify every counter against a from-scratch recount.

        O(data); used by tests and available under a debug flag.  Raises
        :class:`StateError` on the first mismatch.
        """
        recount = self._recount()
        for name in (
            "n_user_comm",
            "n_comm_topic",
            "n_comm_topic_time",
            "n_topic_word",
            "n_topic_total",
            "n_link_comm",
        ):
            mine = getattr(self, name)
            theirs = recount[name]
            if not np.array_equal(mine, theirs):
                raise StateError(f"counter {name} inconsistent with assignments")
        if (self.n_user_comm < 0).any() or (self.n_link_comm < 0).any():
            raise StateError("negative counts detected")

    def _recount(self) -> dict[str, np.ndarray]:
        n_user_comm = np.zeros_like(self.n_user_comm)
        n_comm_topic = np.zeros_like(self.n_comm_topic)
        n_comm_topic_time = np.zeros_like(self.n_comm_topic_time)
        n_topic_word = np.zeros_like(self.n_topic_word)
        n_topic_total = np.zeros_like(self.n_topic_total)
        n_link_comm = np.zeros_like(self.n_link_comm)
        for p in range(len(self.posts)):
            c, k = int(self.post_comm[p]), int(self.post_topic[p])
            n_user_comm[self.posts.authors[p], c] += 1
            n_comm_topic[c, k] += 1
            n_comm_topic_time[c, k, self.posts.times[p]] += 1
            words, counts = self.posts.words_of(p)
            np.add.at(n_topic_word[k], words, counts)
            n_topic_total[k] += self.posts.lengths[p]
        for e in range(len(self.links)):
            src, dst = self.links[e]
            c, c_prime = int(self.link_src_comm[e]), int(self.link_dst_comm[e])
            n_user_comm[src, c] += 1
            n_user_comm[dst, c_prime] += 1
            n_link_comm[c, c_prime] += 1
        return {
            "n_user_comm": n_user_comm,
            "n_comm_topic": n_comm_topic,
            "n_comm_topic_time": n_comm_topic_time,
            "n_topic_word": n_topic_word,
            "n_topic_total": n_topic_total,
            "n_link_comm": n_link_comm,
        }

    # -- serialisation --------------------------------------------------------

    #: Arrays that fully determine a CountState (with the scalar dims).
    _ARRAY_FIELDS = (
        "n_user_comm",
        "n_comm_topic",
        "n_comm_topic_time",
        "n_topic_word",
        "n_topic_total",
        "n_link_comm",
        "post_comm",
        "post_topic",
        "link_src_comm",
        "link_dst_comm",
        "links",
    )
    _POST_FIELDS = (
        "authors",
        "times",
        "lengths",
        "offsets",
        "unique_words",
        "unique_counts",
    )

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Every array needed to reconstruct this state, flat by name.

        Together with ``num_communities``/``num_topics`` (carried in the
        checkpoint manifest) this is a complete, self-contained snapshot:
        the post table is included, so resuming needs no corpus reload.
        """
        arrays = {name: getattr(self, name) for name in self._ARRAY_FIELDS}
        for name in self._POST_FIELDS:
            arrays[f"posts_{name}"] = getattr(self.posts, name)
        return arrays

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        num_communities: int,
        num_topics: int,
        degenerate_draws: int = 0,
    ) -> "CountState":
        """Rebuild a state saved by :meth:`to_arrays`.

        Raises :class:`StateError` on missing arrays, then verifies the
        counters against a recount so a tampered checkpoint payload cannot
        smuggle in inconsistent state.
        """
        missing = [
            name
            for name in (
                *cls._ARRAY_FIELDS,
                *(f"posts_{field_name}" for field_name in cls._POST_FIELDS),
            )
            if name not in arrays
        ]
        if missing:
            raise StateError(f"state arrays missing: {', '.join(missing)}")
        posts = PostTable(
            **{name: np.asarray(arrays[f"posts_{name}"]) for name in cls._POST_FIELDS}
        )
        state = cls(
            num_communities=num_communities,
            num_topics=num_topics,
            posts=posts,
            degenerate_draws=degenerate_draws,
            **{
                name: np.asarray(arrays[name]).copy()
                for name in cls._ARRAY_FIELDS
            },
        )
        state.check_invariants()
        return state

    # -- sizes ----------------------------------------------------------------

    @property
    def num_posts(self) -> int:
        return len(self.posts)

    @property
    def num_links(self) -> int:
        return len(self.links)
