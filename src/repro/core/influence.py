"""Influential community identification via Independent Cascade (§6.6, Fig 16).

The paper measures each community's influence degree by seeding it alone and
running the Independent Cascade (IC) model [Goldenberg et al. 2001] on the
extracted community-level diffusion graph (edge probabilities ``zeta_kcc'``
for the topic of interest).  User influence combines the user's memberships
with community influence, and Figure 16's pentagon layout embeds users as
``pi``-weighted convex combinations of the top-4 communities plus an
aggregated "other communities" corner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .diffusion import zeta_for_topic
from .estimates import ParameterEstimates


class InfluenceError(ValueError):
    """Raised for invalid influence computations."""


def _validated_seeds(
    probabilities: np.ndarray, seeds: list[int] | np.ndarray
) -> np.ndarray:
    """Validate the IC inputs once; returns the seed indices as int64."""
    n = probabilities.shape[0]
    if probabilities.shape != (n, n):
        raise InfluenceError("probability matrix must be square")
    if ((probabilities < 0) | (probabilities > 1)).any():
        raise InfluenceError("activation probabilities must lie in [0, 1]")
    seed_idx = np.asarray(seeds, dtype=np.int64).reshape(-1)
    if len(seed_idx) and not (
        0 <= int(seed_idx.min()) and int(seed_idx.max()) < n
    ):
        bad = seed_idx[(seed_idx < 0) | (seed_idx >= n)][0]
        raise InfluenceError(f"seed {int(bad)} out of range [0, {n})")
    return seed_idx


def _cascade(
    probabilities: np.ndarray,
    active: np.ndarray,
    frontier: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Run one IC realisation in place from ``frontier`` (validated inputs).

    Each BFS level draws one ``(len(frontier), n)`` uniform block and
    reduces it against the frontier's probability rows — node ``v``
    activates iff any newly-active ``u`` fires the ``u -> v`` edge, which
    is exactly the per-edge semantics of the scalar loop (every edge out
    of an activated node is tried once).
    """
    while frontier.size:
        flips = (
            rng.random((frontier.size, probabilities.shape[0]))
            < probabilities[frontier]
        )
        newly = flips.any(axis=0) & ~active
        active |= newly
        frontier = np.flatnonzero(newly)


def independent_cascade(
    probabilities: np.ndarray,
    seeds: list[int] | np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One IC realisation on a directed graph of activation probabilities.

    ``probabilities[u, v]`` is the chance that newly-activated ``u``
    activates ``v`` (each edge fires at most once).  Returns the boolean
    activation vector.

    .. note:: RNG stream (changed when the loop was vectorised)

       Each BFS level now consumes one batched ``(len(frontier), n)``
       uniform draw, with the frontier in ascending node order and
       duplicate seeds collapsed — instead of the original per-node
       ``rng.random(n)`` calls in insertion order.  A fixed seed therefore
       yields a *different* (equally valid) realisation than earlier
       versions; the spread distribution is unchanged.
    """
    seed_idx = _validated_seeds(probabilities, seeds)
    active = np.zeros(probabilities.shape[0], dtype=bool)
    active[seed_idx] = True
    _cascade(probabilities, active, np.flatnonzero(active), rng)
    return active


def expected_spread(
    probabilities: np.ndarray,
    seeds: list[int] | np.ndarray,
    num_simulations: int = 200,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of IC expected spread from ``seeds``.

    Validation happens once up front (not per realisation), and the
    per-realisation spreads accumulate into one vector whose mean is
    returned.  Shares :func:`independent_cascade`'s batched RNG stream —
    see its note on the stream change.
    """
    if num_simulations <= 0:
        raise InfluenceError("num_simulations must be positive")
    if rng is None:
        rng = np.random.default_rng(0)
    seed_idx = _validated_seeds(probabilities, seeds)
    seed_mask = np.zeros(probabilities.shape[0], dtype=bool)
    seed_mask[seed_idx] = True
    seed_frontier = np.flatnonzero(seed_mask)
    sizes = np.empty(num_simulations, dtype=np.int64)
    for index in range(num_simulations):
        active = seed_mask.copy()
        _cascade(probabilities, active, seed_frontier, rng)
        sizes[index] = np.count_nonzero(active)
    return float(sizes.mean())


@dataclass
class CommunityInfluence:
    """Per-community influence degrees at one topic (§6.6).

    ``degree[c]`` is the expected IC spread when community ``c`` alone is
    the seed set, on the ``zeta``-weighted community diffusion graph.
    """

    topic: int
    degree: np.ndarray

    def ranking(self) -> np.ndarray:
        """Communities ordered by decreasing influence."""
        return np.argsort(self.degree)[::-1]

    def top(self, size: int = 4) -> list[int]:
        """The ``size`` most influential communities."""
        if size <= 0:
            raise InfluenceError("size must be positive")
        return [int(c) for c in self.ranking()[:size]]


def _activation_matrix(estimates: ParameterEstimates, topic: int) -> np.ndarray:
    """Zeta rescaled into usable IC activation probabilities.

    Raw ``zeta`` values are products of three probabilities and hence tiny;
    IC on raw values would activate nothing.  We rescale by the maximum
    off-diagonal entry so the strongest inter-community edge fires with
    probability ~0.9, preserving the *relative* influence structure that
    the ranking depends on.
    """
    influence = zeta_for_topic(estimates, topic).copy()
    np.fill_diagonal(influence, 0.0)
    peak = influence.max()
    if peak <= 0:
        return influence
    return np.clip(influence * (0.9 / peak), 0.0, 1.0)


def community_influence(
    estimates: ParameterEstimates,
    topic: int,
    num_simulations: int = 200,
    seed: int = 0,
) -> CommunityInfluence:
    """Influence degree of every community at ``topic`` via single-seed IC."""
    probabilities = _activation_matrix(estimates, topic)
    rng = np.random.default_rng(seed)
    C = probabilities.shape[0]
    degree = np.empty(C)
    for c in range(C):
        degree[c] = expected_spread(probabilities, [c], num_simulations, rng)
    return CommunityInfluence(topic=topic, degree=degree)


def user_influence(
    estimates: ParameterEstimates, influence: CommunityInfluence
) -> np.ndarray:
    """Per-user influence: memberships weighted by community influence.

    ``score_i = sum_c pi_ic * degree_c`` — the point sizes of Figure 16.
    """
    if len(influence.degree) != estimates.num_communities:
        raise InfluenceError("community influence size mismatch")
    return estimates.pi @ influence.degree


def top_influential_users(
    estimates: ParameterEstimates,
    influence: CommunityInfluence,
    size: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``size`` most influential users and their scores, best first.

    The batched serving entry point behind influential-community queries:
    one :func:`user_influence` matrix-vector product scores every user,
    and an ``argpartition`` keeps the cost ``O(U + size log size)`` —
    no per-user Python work, so a query over a million users stays a few
    milliseconds.
    """
    if size <= 0:
        raise InfluenceError("size must be positive")
    scores = user_influence(estimates, influence)
    size = min(size, len(scores))
    top = np.argpartition(scores, -size)[-size:]
    order = np.argsort(scores[top])[::-1]
    top = top[order]
    return top, scores[top]


def greedy_seed_selection(
    probabilities: np.ndarray,
    num_seeds: int,
    num_simulations: int = 200,
    seed: int = 0,
) -> tuple[list[int], list[float]]:
    """Greedy influence maximisation under IC [Kempe et al. 2003].

    Iteratively adds the node with the largest marginal expected-spread
    gain, with CELF-style lazy re-evaluation: stale gains are only
    recomputed when a candidate reaches the top of the queue, exploiting
    the submodularity of IC spread.  Greedy guarantees a (1 - 1/e)
    approximation of the optimal seed set.

    Returns ``(seeds, spreads)`` where ``spreads[j]`` is the expected
    spread of the first ``j + 1`` seeds.  The paper's §6.6 uses single-seed
    influence degrees; this is the natural multi-seed extension for viral
    marketing campaigns.
    """
    n = probabilities.shape[0]
    if probabilities.shape != (n, n):
        raise InfluenceError("probability matrix must be square")
    if not 0 < num_seeds <= n:
        raise InfluenceError(f"num_seeds must lie in [1, {n}]")
    rng = np.random.default_rng(seed)

    seeds: list[int] = []
    spreads: list[float] = []
    current_spread = 0.0
    # Lazy queue: (negative gain, node, round the gain was computed in).
    import heapq

    queue: list[tuple[float, int, int]] = []
    for node in range(n):
        gain = expected_spread(probabilities, [node], num_simulations, rng)
        heapq.heappush(queue, (-gain, node, 0))

    for round_index in range(1, num_seeds + 1):
        while True:
            negative_gain, node, computed_round = heapq.heappop(queue)
            if computed_round == round_index:
                break
            fresh = (
                expected_spread(
                    probabilities, seeds + [node], num_simulations, rng
                )
                - current_spread
            )
            heapq.heappush(queue, (-fresh, node, round_index))
        seeds.append(node)
        current_spread += -negative_gain
        spreads.append(current_spread)
    return seeds, spreads


@dataclass
class PentagonEmbedding:
    """The Figure-16 layout: users embedded in a pentagon.

    Corners 0..3 are the top-4 influential communities; corner 4 aggregates
    every other community.  ``positions[i]`` is user ``i``'s 2-D point (the
    ``pi``-weighted convex combination of corner coordinates) and
    ``weights[i]`` the 5-dimensional membership profile it came from.
    """

    topic: int
    corner_communities: list[int]
    corners: np.ndarray  # (5, 2)
    positions: np.ndarray  # (U, 2)
    weights: np.ndarray  # (U, 5)
    user_scores: np.ndarray  # (U,)

    def dominant_corner(self) -> np.ndarray:
        """Per user, the corner holding most of their membership mass."""
        return self.weights.argmax(axis=1)


def pentagon_embedding(
    estimates: ParameterEstimates,
    influence: CommunityInfluence,
    top_users: int | None = None,
) -> PentagonEmbedding:
    """Embed users as in Figure 16 for the influence analysis topic.

    ``top_users`` keeps only the most influential users (the paper displays
    the top 20K); ``None`` keeps everyone.
    """
    num_corners = min(4, estimates.num_communities)
    top4 = influence.top(num_corners)
    others = [c for c in range(estimates.num_communities) if c not in top4]
    angles = np.pi / 2 + 2 * np.pi * np.arange(5) / 5  # corner 0 at the top
    corners = np.stack([np.cos(angles), np.sin(angles)], axis=1)

    weights = np.zeros((estimates.num_users, 5))
    weights[:, :num_corners] = estimates.pi[:, top4]
    weights[:, 4] = estimates.pi[:, others].sum(axis=1) if others else 0.0
    weights = weights / np.maximum(weights.sum(axis=1, keepdims=True), 1e-300)
    positions = weights @ corners
    scores = user_influence(estimates, influence)

    if top_users is not None and top_users < estimates.num_users:
        keep = np.argsort(scores)[::-1][:top_users]
        keep.sort()
        positions = positions[keep]
        weights = weights[keep]
        scores = scores[keep]

    return PentagonEmbedding(
        topic=influence.topic,
        corner_communities=top4,
        corners=corners,
        positions=positions,
        weights=weights,
        user_scores=scores,
    )
