"""The paper's primary contribution: the COLD model and everything on top.

Layout mirrors the paper:

* ``params`` / ``state`` / ``gibbs`` / ``likelihood`` — collapsed Gibbs
  inference (§4, Appendix A);
* ``fastgibbs`` — the cached vectorised sweep kernels (bit-identical to
  ``gibbs``, benchmarked by ``repro.perf``);
* ``config`` — the frozen :class:`COLDConfig` consumed by every entry point;
* ``estimates`` / ``model`` — the fitted model facade (§3);
* ``diffusion`` — topic-sensitive community influence, Eq. (4) / Fig. 5;
* ``prediction`` — diffusion, time-stamp and link prediction (§5.2, §6.2–3);
* ``patterns`` — diffusion-pattern analyses (§5.3, Figs. 6–8);
* ``influence`` — influential-community identification (§6.6, Fig. 16).
"""

from .diffusion import (
    CommunityDiffusionGraph,
    DiffusionEdge,
    DiffusionError,
    extract_diffusion_graph,
    zeta,
    zeta_for_topic,
)
from .config import COLDConfig, ConfigError, StreamConfig
from .estimates import (
    EstimateError,
    ParameterEstimates,
    average_estimates,
    estimate_from_state,
)
from .fastgibbs import SweepCache, fast_sweep
from .gibbs import (
    categorical,
    categorical_checked,
    link_weights,
    post_community_weights,
    post_topic_log_weights,
    resample_link,
    resample_post,
    sweep,
)
from .influence import (
    CommunityInfluence,
    InfluenceError,
    PentagonEmbedding,
    community_influence,
    expected_spread,
    greedy_seed_selection,
    independent_cascade,
    pentagon_embedding,
    user_influence,
)
from .hyperopt import HyperoptError, optimize_hyperparameters, symmetric_dirichlet_mle
from .likelihood import ConvergenceMonitor, joint_log_likelihood
from .model import COLDModel, ModelError
from .params import Hyperparameters, ParameterError, negative_link_prior
from .perword import COLDPerWordModel
from .patterns import (
    FluctuationAnalysis,
    PatternError,
    TimeLagAnalysis,
    all_word_clouds,
    fluctuation_analysis,
    temporal_variance,
    time_lag_analysis,
    top_words,
)
from .prediction import (
    DiffusionPredictor,
    PredictionError,
    link_probability,
    post_probability,
    predict_timestamp,
    timestamp_scores,
    top_communities,
)
from .state import CountState, PostTable, StateError

__all__ = [
    "COLDConfig",
    "COLDModel",
    "COLDPerWordModel",
    "CommunityDiffusionGraph",
    "CommunityInfluence",
    "ConfigError",
    "ConvergenceMonitor",
    "CountState",
    "DiffusionEdge",
    "DiffusionError",
    "DiffusionPredictor",
    "EstimateError",
    "FluctuationAnalysis",
    "HyperoptError",
    "Hyperparameters",
    "InfluenceError",
    "ModelError",
    "ParameterError",
    "ParameterEstimates",
    "PatternError",
    "PentagonEmbedding",
    "PostTable",
    "PredictionError",
    "StateError",
    "StreamConfig",
    "SweepCache",
    "TimeLagAnalysis",
    "all_word_clouds",
    "average_estimates",
    "categorical",
    "categorical_checked",
    "community_influence",
    "estimate_from_state",
    "expected_spread",
    "extract_diffusion_graph",
    "fast_sweep",
    "fluctuation_analysis",
    "greedy_seed_selection",
    "independent_cascade",
    "joint_log_likelihood",
    "link_probability",
    "link_weights",
    "negative_link_prior",
    "optimize_hyperparameters",
    "pentagon_embedding",
    "post_community_weights",
    "post_probability",
    "post_topic_log_weights",
    "predict_timestamp",
    "resample_link",
    "resample_post",
    "sweep",
    "symmetric_dirichlet_mle",
    "temporal_variance",
    "time_lag_analysis",
    "timestamp_scores",
    "top_communities",
    "top_words",
    "user_influence",
    "zeta",
    "zeta_for_topic",
]
