"""Collapsed joint log-likelihood and convergence monitoring (paper §4.3).

The paper "monitors the convergence of the algorithm by periodically
computing the likelihood of training data".  With all multinomials
collapsed, the joint probability of assignments + observations factorises
into Dirichlet-multinomial (Polya) marginals — one per Dirichlet block —
plus a Beta-Bernoulli marginal per community pair for the positive links
(Eq. 9 of Appendix A after integration).

Each block contributes::

    log DirMult(counts; conc) = log Gamma(A) - log Gamma(A + N)
        + sum_j [ log Gamma(counts_j + conc) - log Gamma(conc) ]

with ``A = dim * conc`` and ``N = counts.sum()``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
from scipy.special import gammaln

from .params import Hyperparameters
from .state import CountState


def _dirichlet_multinomial_block(counts: np.ndarray, concentration: float) -> float:
    """Sum of log Dirichlet-multinomial marginals over the leading axes.

    ``counts`` has shape ``(..., dim)``; each leading index is one Dirichlet
    draw observed ``counts[..., :].sum()`` times.
    """
    dim = counts.shape[-1]
    totals = counts.sum(axis=-1)
    per_block = (
        gammaln(dim * concentration)
        - gammaln(totals + dim * concentration)
        + (gammaln(counts + concentration) - gammaln(concentration)).sum(axis=-1)
    )
    return float(per_block.sum())


def joint_log_likelihood(state: CountState, hp: Hyperparameters) -> float:
    """Collapsed ``log P(c, s, z, w, t, e | priors)`` up to a constant.

    Monotone-in-expectation during Gibbs burn-in, which is what makes it a
    usable convergence signal; it is *not* comparable across different
    (C, K) settings (dimension-dependent constants differ).
    """
    total = 0.0
    # P(c, s | rho): one Dirichlet block per user over communities.
    total += _dirichlet_multinomial_block(state.n_user_comm, hp.rho)
    # P(z | c, alpha): one block per community over topics.
    total += _dirichlet_multinomial_block(state.n_comm_topic, hp.alpha)
    # P(w | z, beta): one block per topic over the vocabulary.
    total += _dirichlet_multinomial_block(state.n_topic_word, hp.beta)
    # P(t | c, z, eps): one block per (community, topic) over time slices.
    total += _dirichlet_multinomial_block(state.n_comm_topic_time, hp.epsilon)
    # P(e | s, lambda): Beta-Bernoulli marginal per (c, c') with only
    # positive observations (negatives live in lambda0).
    if state.num_links:
        n = state.n_link_comm
        per_pair = (
            gammaln(n + hp.lambda1)
            + gammaln(hp.lambda0 + hp.lambda1)
            - gammaln(n + hp.lambda0 + hp.lambda1)
            - gammaln(hp.lambda1)
        )
        total += float(per_pair.sum())
    return total


def diagnostic_scalars(
    state: CountState,
    hp: Hyperparameters,
    log_likelihood: float | None = None,
) -> dict:
    """The scalar chains convergence diagnostics track, from one sample.

    Returns a JSON-able dict with the joint log-likelihood (reused when
    the fit loop already computed it this sweep), the per-topic token
    counts (the occupancy vector whose stability signals topic mixing;
    label-switching-aware comparisons align it across chains first), and
    smoothed ``eta`` link-strength summaries (posterior-mean diagonal and
    off-diagonal averages — both invariant under community relabelling,
    so they compare across chains without alignment).
    """
    if log_likelihood is None:
        log_likelihood = joint_log_likelihood(state, hp)
    scalars: dict = {
        "log_likelihood": float(log_likelihood),
        "topic_tokens": [int(v) for v in state.n_topic_total],
    }
    if state.num_links:
        eta = (state.n_link_comm + hp.lambda1) / (
            state.n_link_comm + hp.lambda0 + hp.lambda1
        )
        diagonal = np.diagonal(eta)
        off_mask = ~np.eye(eta.shape[0], dtype=bool)
        scalars["eta_diag_mean"] = float(diagonal.mean())
        scalars["eta_offdiag_mean"] = (
            float(eta[off_mask].mean()) if off_mask.any() else 0.0
        )
    return scalars


@dataclass
class ConvergenceMonitor:
    """Tracks the likelihood trace and flags convergence.

    Convergence is declared when the relative improvement over the last
    ``window`` recorded values stays below ``tolerance`` — the pragmatic
    criterion used with likelihood traces in practice.
    """

    window: int = 5
    tolerance: float = 1e-4
    trace: list[float] = field(default_factory=list)
    #: Degenerate (uniform-fallback) categorical draws observed so far; the
    #: fit loop mirrors ``CountState.degenerate_draws`` here so numerical
    #: collapse is visible in the convergence report, not just the state.
    degenerate_draws: int = 0
    #: Telemetry sinks invoked with every recorded value (see
    #: :meth:`attach`); excluded from equality so monitors restored from
    #: checkpoints compare equal to fresh ones.
    _sinks: list[Callable[[float], None]] = field(
        default_factory=list, repr=False, compare=False
    )

    def attach(self, sink: Callable[[float], None]) -> None:
        """Forward every future :meth:`record` value to ``sink``.

        This is how the telemetry pipeline reuses the monitor's periodic
        evaluation — the likelihood lands in ``metrics.jsonl`` without a
        second :func:`joint_log_likelihood` pass.
        """
        self._sinks.append(sink)

    def record(self, value: float) -> None:
        if not np.isfinite(value):
            raise ValueError(f"non-finite likelihood {value}")
        self.trace.append(float(value))
        for sink in self._sinks:
            sink(value)

    def summary(self) -> dict[str, float | int | bool]:
        """Convergence report: trace length, best value, degeneracy tally."""
        return {
            "recorded": len(self.trace),
            "best": max(self.trace) if self.trace else float("nan"),
            "converged": self.converged,
            "degenerate_draws": self.degenerate_draws,
        }

    @property
    def converged(self) -> bool:
        if len(self.trace) <= self.window:
            return False
        recent = self.trace[-(self.window + 1):]
        span = max(recent) - min(recent)
        scale = abs(recent[-1]) + 1e-12
        return span / scale < self.tolerance

    @property
    def best(self) -> float:
        if not self.trace:
            raise ValueError("no likelihood recorded yet")
        return max(self.trace)
