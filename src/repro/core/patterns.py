"""Diffusion-pattern analyses (paper §5.3, Figures 6–8).

Three analyses over the fitted estimates:

* **Fluctuation vs. interest** (Fig. 6): the variance of a topic's
  community-specific temporal distribution ``psi_kc`` against the
  community's interest ``theta_ck``; the paper finds fluctuation peaks in
  *medium*-interested communities (interest between ~0.01% and ~1%).
* **Popularity time lag** (Fig. 7): peak-aligned median popularity curves
  of highly- vs. medium-interested communities; highly-interested ones rise
  earlier and stay popular longer.
* **Top words** (Fig. 8): per-topic word clouds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.vocabulary import Vocabulary
from .estimates import ParameterEstimates


class PatternError(ValueError):
    """Raised for invalid pattern-analysis requests."""


# -- Figure 6: fluctuation vs interest ----------------------------------------


def temporal_variance(psi_row: np.ndarray) -> float:
    """Variance of the time index under the distribution ``psi_kc``.

    The paper "uses the variance of topic's community-specific temporal
    distribution psi_kc to measure the fluctuation intensity".
    """
    grid = np.arange(len(psi_row), dtype=np.float64)
    mean = float(psi_row @ grid)
    return float(psi_row @ (grid - mean) ** 2)


@dataclass
class FluctuationAnalysis:
    """The Figure-6 scatter data plus its interest-bucketed summary.

    ``interest`` / ``variance`` are flat arrays over all (k, c) pairs.
    ``bucket_edges`` / ``bucket_mean_variance`` summarise variance within
    log-spaced interest buckets (the shape assertion of Fig. 6: the middle
    buckets dominate).
    """

    interest: np.ndarray
    variance: np.ndarray
    bucket_edges: np.ndarray
    bucket_mean_variance: np.ndarray

    def interest_cdf(self, grid: np.ndarray) -> np.ndarray:
        """Cumulative distribution of interest strengths over ``grid``."""
        sorted_interest = np.sort(self.interest)
        return np.searchsorted(sorted_interest, grid, side="right") / len(
            sorted_interest
        )

    def peak_bucket(self) -> int:
        """Index of the interest bucket with maximal mean variance."""
        valid = np.where(np.isfinite(self.bucket_mean_variance))[0]
        if valid.size == 0:
            raise PatternError("no populated interest buckets")
        return int(valid[self.bucket_mean_variance[valid].argmax()])


def fluctuation_analysis(
    estimates: ParameterEstimates, num_buckets: int = 12
) -> FluctuationAnalysis:
    """Compute the Fig.-6 relation between ``theta_ck`` and var(``psi_kc``)."""
    if num_buckets < 3:
        raise PatternError("need at least 3 interest buckets")
    C, K = estimates.theta.shape
    interest = estimates.theta.T.ravel()  # (K*C,) aligned with psi below
    variance = np.array(
        [
            temporal_variance(estimates.psi[k, c])
            for k in range(K)
            for c in range(C)
        ]
    )
    low = max(interest.min(), 1e-6)
    high = max(interest.max(), low * 10)
    edges = np.logspace(np.log10(low), np.log10(high), num_buckets + 1)
    bucket_means = np.full(num_buckets, np.nan)
    which = np.clip(np.searchsorted(edges, interest, side="right") - 1, 0, num_buckets - 1)
    for b in range(num_buckets):
        mask = which == b
        if mask.any():
            bucket_means[b] = float(variance[mask].mean())
    return FluctuationAnalysis(
        interest=interest,
        variance=variance,
        bucket_edges=edges,
        bucket_mean_variance=bucket_means,
    )


# -- Figure 7: popularity time lag ---------------------------------------------


@dataclass
class TimeLagAnalysis:
    """The Figure-7 peak-aligned median curves for one topic.

    Curves are normalised so each community's peak popularity equals 1,
    then the median is taken per time slice across each community group.
    """

    topic: int
    high_communities: list[int]
    medium_communities: list[int]
    high_curve: np.ndarray
    medium_curve: np.ndarray

    def peak_lag(self) -> int:
        """(medium peak time) - (high peak time); positive = medium lags."""
        return int(self.medium_curve.argmax()) - int(self.high_curve.argmax())

    def durability(self, level: float = 0.5) -> tuple[int, int]:
        """Number of slices each curve stays above ``level`` of its peak —
        the paper's 'durable popularity' observation."""
        high = int((self.high_curve >= level * self.high_curve.max()).sum())
        medium = int((self.medium_curve >= level * self.medium_curve.max()).sum())
        return high, medium


def _median_peak_aligned(curves: np.ndarray) -> np.ndarray:
    """Normalise each row to peak 1, then take the per-slice median."""
    peaks = curves.max(axis=1, keepdims=True)
    normalised = curves / np.maximum(peaks, 1e-300)
    return np.median(normalised, axis=0)


def time_lag_analysis(
    estimates: ParameterEstimates,
    topic: int,
    num_high: int = 10,
    low_threshold: float = 1e-4,
) -> TimeLagAnalysis:
    """Split communities into highly- vs medium-interested and build Fig. 7.

    Following §5.3: the ``num_high`` communities with the largest
    ``theta_ck`` are "highly interested"; the rest are "medium" unless their
    interest falls below ``low_threshold`` (the paper's 0.01%), in which
    case they are dropped.
    """
    K = estimates.num_topics
    if not 0 <= topic < K:
        raise PatternError(f"topic {topic} out of range [0, {K})")
    interest = estimates.theta[:, topic]
    order = np.argsort(interest)[::-1]
    num_high = min(num_high, max(1, len(order) // 2))
    high = [int(c) for c in order[:num_high]]
    medium = [
        int(c) for c in order[num_high:] if interest[c] >= low_threshold
    ]
    if not medium:
        raise PatternError(
            "no medium-interested communities above the threshold; "
            "lower low_threshold or num_high"
        )
    return TimeLagAnalysis(
        topic=topic,
        high_communities=high,
        medium_communities=medium,
        high_curve=_median_peak_aligned(estimates.psi[topic, high, :]),
        medium_curve=_median_peak_aligned(estimates.psi[topic, medium, :]),
    )


# -- Figure 8: word clouds ------------------------------------------------------


def top_words(
    estimates: ParameterEstimates,
    topic: int,
    vocabulary: Vocabulary | None = None,
    size: int = 20,
) -> list[tuple[str, float]]:
    """The ``size`` highest-probability words of ``topic`` with weights.

    Without a vocabulary, ids are rendered as ``"w<id>"``.
    """
    K = estimates.num_topics
    if not 0 <= topic < K:
        raise PatternError(f"topic {topic} out of range [0, {K})")
    if size <= 0:
        raise PatternError("size must be positive")
    row = estimates.phi[topic]
    order = np.argsort(row)[::-1][: min(size, len(row))]
    result = []
    for v in order:
        token = vocabulary.token_of(int(v)) if vocabulary is not None else f"w{int(v)}"
        result.append((token, float(row[v])))
    return result


def all_word_clouds(
    estimates: ParameterEstimates,
    vocabulary: Vocabulary | None = None,
    size: int = 20,
) -> list[list[tuple[str, float]]]:
    """Top words for every topic — the full Figure-8 payload."""
    return [
        top_words(estimates, k, vocabulary, size)
        for k in range(estimates.num_topics)
    ]
