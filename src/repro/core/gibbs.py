"""Collapsed Gibbs sampling kernels for COLD (paper Eqs. 1–3, Appendix A).

Each kernel removes one instance from the counters, evaluates its full
conditional as an unnormalised weight vector, draws the new assignment, and
adds the instance back — the textbook collapsed-Gibbs pattern.  All three
kernels are O(latent-dimension x instance-size), which gives the linear
per-sweep complexity analysed in §4.2.

Numerical notes
---------------
* Constant-in-the-sampled-variable factors (e.g. the ``n_i^(.) + C rho``
  denominator of Eq. 1) are dropped: they cancel under normalisation.
* The Eq. (3) word term is evaluated in log space because posts with
  repeated words multiply ascending-factorial ratios that underflow for
  large vocabularies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..telemetry import profiler
from ..telemetry import tracing as trace
from .params import Hyperparameters
from .state import CountState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fastgibbs uses us)
    from .fastgibbs import SweepCache

#: Floor applied to weight vectors before normalisation, guarding against
#: fully-zero rows from numerical underflow.
_WEIGHT_FLOOR = 1e-300


def categorical_checked(
    weights: np.ndarray, rng: np.random.Generator
) -> tuple[int, bool]:
    """Draw an index proportionally to non-negative ``weights``.

    Returns ``(index, degenerate)`` where ``degenerate`` flags an all-zero
    or non-finite weight vector that forced a uniform fallback.  The Gibbs
    kernels tally these on ``CountState.degenerate_draws`` so numerical
    collapse surfaces in the fit log instead of being silently masked.
    """
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        # All-zero (or degenerate) weights: fall back to uniform.  This can
        # only happen through extreme underflow; uniform keeps the chain
        # irreducible instead of crashing mid-run.
        return int(rng.integers(len(weights))), True
    index = int(
        np.searchsorted(np.cumsum(weights), rng.random() * total, side="right")
    )
    # With denormal totals, rng.random() * total can round up to exactly
    # total, pushing searchsorted one past the last cell; clamp back in.
    return min(index, len(weights) - 1), False


def categorical(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Draw an index proportionally to non-negative ``weights``."""
    return categorical_checked(weights, rng)[0]


def post_community_weights(
    state: CountState, hp: Hyperparameters, post: int, topic: int
) -> np.ndarray:
    """Unnormalised Eq. (1) over communities, with the post removed.

    ``P(c_ij = c | z_ij = k, ...) ∝ (n_i^c + rho)
    * (n_c^k + alpha) / (n_c^. + K alpha)
    * (n_ck^t + eps) / (n_ck^. + T eps)``.
    """
    author = state.posts.authors[post]
    t = state.posts.times[post]
    K = state.num_topics
    T = state.n_comm_topic_time.shape[2]
    membership = state.n_user_comm[author] + hp.rho  # (C,)
    topic_totals = state.n_comm_topic.sum(axis=1)
    interest = (state.n_comm_topic[:, topic] + hp.alpha) / (topic_totals + K * hp.alpha)
    time_totals = state.n_comm_topic_time[:, topic, :].sum(axis=1)
    temporal = (state.n_comm_topic_time[:, topic, t] + hp.epsilon) / (
        time_totals + T * hp.epsilon
    )
    return membership * interest * temporal


def post_topic_log_weights(
    state: CountState, hp: Hyperparameters, post: int, community: int
) -> np.ndarray:
    """Log of the unnormalised Eq. (3) over topics, with the post removed.

    The word factor is the ascending-factorial (Polya) ratio

        prod_v prod_{q=0}^{m_v - 1} (n_k^v + q + beta)
        / prod_{q=0}^{L - 1} (n_k^. + q + V beta)

    where ``m_v`` are the post's word multiplicities and ``L`` its length.
    """
    c = community
    t = state.posts.times[post]
    V = state.n_topic_word.shape[1]
    T = state.n_comm_topic_time.shape[2]
    K = state.num_topics

    interest = np.log(state.n_comm_topic[c] + hp.alpha)  # (K,); denom const in k
    time_totals = state.n_comm_topic_time[c].sum(axis=1)  # (K,)
    temporal = np.log(state.n_comm_topic_time[c, :, t] + hp.epsilon) - np.log(
        time_totals + T * hp.epsilon
    )

    words, counts = state.posts.words_of(post)
    word_counts = state.n_topic_word[:, words]  # (K, n_unique)
    if (counts == 1).all():
        numerator = np.log(word_counts + hp.beta).sum(axis=1)
    else:
        numerator = np.zeros(K)
        for j, m in enumerate(counts):
            column = word_counts[:, j].astype(np.float64)
            for q in range(int(m)):
                numerator += np.log(column + q + hp.beta)
    length = int(state.posts.lengths[post])
    denominator = np.log(
        state.n_topic_total[:, None] + np.arange(length)[None, :] + V * hp.beta
    ).sum(axis=1)
    return interest + temporal + numerator - denominator


def link_weights(
    state: CountState, hp: Hyperparameters, link: int
) -> np.ndarray:
    """Unnormalised Eq. (2) over (c, c') pairs, with the link removed.

    Returns a ``(C, C)`` matrix: ``(n_i^c + rho)(n_i'^c' + rho)
    * (n_cc' + lambda1) / (n_cc' + lambda0 + lambda1)``.
    """
    src, dst = state.links[link]
    src_membership = state.n_user_comm[src] + hp.rho  # (C,)
    dst_membership = state.n_user_comm[dst] + hp.rho  # (C,)
    link_factor = (state.n_link_comm + hp.lambda1) / (
        state.n_link_comm + hp.lambda0 + hp.lambda1
    )
    return np.outer(src_membership, dst_membership) * link_factor


def resample_post(
    state: CountState, hp: Hyperparameters, post: int, rng: np.random.Generator
) -> tuple[int, int]:
    """One Gibbs update of (c_ij, z_ij) for ``post``; returns the new pair.

    Matches Algorithm 2's scatter phase: community first (Eq. 1 given the
    current topic), then topic (Eq. 3 given the new community).
    """
    _old_c, old_k = state.remove_post(post)

    community_weights = post_community_weights(state, hp, post, old_k)
    new_c, degenerate_c = categorical_checked(
        np.maximum(community_weights, _WEIGHT_FLOOR), rng
    )

    log_weights = post_topic_log_weights(state, hp, post, new_c)
    log_weights -= log_weights.max()
    new_k, degenerate_k = categorical_checked(
        np.maximum(np.exp(log_weights), _WEIGHT_FLOOR), rng
    )
    state.degenerate_draws += int(degenerate_c) + int(degenerate_k)

    state.add_post(post, new_c, new_k)
    return new_c, new_k


def resample_link(
    state: CountState, hp: Hyperparameters, link: int, rng: np.random.Generator
) -> tuple[int, int]:
    """One joint Gibbs update of (s_ii', s'_ii') for ``link`` (Eq. 2)."""
    state.remove_link(link)
    weights = link_weights(state, hp, link)
    flat_index, degenerate = categorical_checked(
        np.maximum(weights.ravel(), _WEIGHT_FLOOR), rng
    )
    state.degenerate_draws += int(degenerate)
    C = state.num_communities
    new_c, new_c_prime = divmod(flat_index, C)
    state.add_link(link, int(new_c), int(new_c_prime))
    return int(new_c), int(new_c_prime)


def sweep(
    state: CountState,
    hp: Hyperparameters,
    rng: np.random.Generator,
    post_order: np.ndarray | None = None,
    link_order: np.ndarray | None = None,
    cache: SweepCache | None = None,
) -> None:
    """One full Gibbs sweep: every post, then every link.

    Optional orders let callers (the parallel engine, tests) control the
    visitation schedule; defaults are a fresh random permutation each call,
    which improves mixing over fixed scans.

    ``cache`` selects the fast path: a
    :class:`~repro.core.fastgibbs.SweepCache` bound to ``state``/``hp``
    routes every draw through the cached vectorised kernels, which are
    bit-identical to the reference kernels (same weights, same RNG
    consumption) but several times faster.  Without a cache the reference
    kernels run — they remain the correctness oracle.
    """
    if post_order is None:
        post_order = rng.permutation(state.num_posts)
    if cache is not None:
        from .fastgibbs import fast_sweep, fast_sweep_profiled

        # fast_sweep draws the link permutation itself (after the post
        # loop, where this function draws it) so the RNG stream matches.
        # The profiled twin is op-for-op identical; selecting it here
        # keeps the dark path free of per-draw instrumentation branches.
        prof = profiler.get_profiler()
        with trace.span("fast_sweep", posts=len(post_order)):
            if prof is not None:
                fast_sweep_profiled(
                    state, hp, rng, post_order, link_order, cache, prof
                )
            else:
                fast_sweep(state, hp, rng, post_order, link_order, cache)
        return
    posts = post_order.tolist() if isinstance(post_order, np.ndarray) else post_order
    for post in posts:
        resample_post(state, hp, int(post), rng)
    if state.num_links:
        if link_order is None:
            link_order = rng.permutation(state.num_links)
        links = link_order.tolist() if isinstance(link_order, np.ndarray) else link_order
        for link in links:
            resample_link(state, hp, int(link), rng)
