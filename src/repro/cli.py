"""Command-line interface: ``cold <subcommand>``.

Subcommands mirror the lifecycle of a COLD study:

* ``generate``  — synthesise a Weibo-like corpus to JSONL;
* ``train``     — fit COLD (serial or parallel) and save estimates;
* ``analyze``   — print word clouds, a topic's diffusion graph, and the
  influential-community summary for a trained model;
* ``report``    — the full analysis report (all Fig. 5-16 analyses);
* ``predict``   — time-stamp prediction accuracy of a trained model on a
  held-out corpus slice.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.diffusion import extract_diffusion_graph
from .core.influence import community_influence, pentagon_embedding
from .core.model import COLDModel
from .core.patterns import top_words
from .core.prediction import predict_timestamp
from .datasets.io import load_corpus, save_corpus
from .datasets.splits import post_splits
from .datasets.synthetic import SyntheticConfig, generate_corpus
from .eval.timestamp import accuracy_curve
from .parallel.sampler import ParallelCOLDSampler
from .viz import diffusion_graph_summary, pentagon_summary, word_cloud


def _add_generate(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("generate", help="synthesise a corpus")
    parser.add_argument("output", type=Path, help="output JSONL path")
    parser.add_argument("--users", type=int, default=60)
    parser.add_argument("--communities", type=int, default=4)
    parser.add_argument("--topics", type=int, default=6)
    parser.add_argument("--time-slices", type=int, default=24)
    parser.add_argument("--vocab", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--themed", action="store_true", help="readable tokens")


def _add_train(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("train", help="fit COLD on a corpus")
    parser.add_argument("corpus", type=Path, help="JSONL corpus path")
    parser.add_argument("model", type=Path, help="output model path (no suffix)")
    parser.add_argument("--communities", type=int, default=10)
    parser.add_argument("--topics", type=int, default=10)
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-network", action="store_true")
    parser.add_argument(
        "--nodes", type=int, default=1,
        help="simulated cluster nodes (>1 uses the parallel sampler)",
    )


def _add_analyze(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("analyze", help="explore a trained model")
    parser.add_argument("model", type=Path, help="model path (no suffix)")
    parser.add_argument("corpus", type=Path, help="JSONL corpus path")
    parser.add_argument("--topic", type=int, default=0)
    parser.add_argument("--top-words", type=int, default=12)


def _add_report(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "report", help="full analysis report for a trained model"
    )
    parser.add_argument("model", type=Path, help="model path (no suffix)")
    parser.add_argument("corpus", type=Path, help="JSONL corpus path")
    parser.add_argument("--topic", type=int, default=None)
    parser.add_argument("--output", type=Path, default=None, help="write to file")


def _add_predict(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "predict", help="time-stamp prediction accuracy on a holdout"
    )
    parser.add_argument("model", type=Path)
    parser.add_argument("corpus", type=Path)
    parser.add_argument("--folds", type=int, default=5)
    parser.add_argument("--tolerances", type=int, nargs="+", default=[0, 1, 2, 4])
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cold",
        description="COLD: Community Level Diffusion Extraction (SIGMOD'15)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_train(subparsers)
    _add_analyze(subparsers)
    _add_report(subparsers)
    _add_predict(subparsers)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        num_users=args.users,
        num_communities=args.communities,
        num_topics=args.topics,
        num_time_slices=args.time_slices,
        vocab_size=args.vocab,
        themed=args.themed,
        seed=args.seed,
    )
    corpus, _truth = generate_corpus(config)
    save_corpus(corpus, args.output)
    print(f"wrote {corpus} -> {args.output}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    corpus = load_corpus(args.corpus)
    print(f"training on {corpus}")
    if args.nodes > 1:
        sampler = ParallelCOLDSampler(
            num_communities=args.communities,
            num_topics=args.topics,
            num_nodes=args.nodes,
            include_network=not args.no_network,
            seed=args.seed,
        ).fit(corpus, num_iterations=args.iterations)
        model = COLDModel(
            num_communities=args.communities,
            num_topics=args.topics,
            include_network=not args.no_network,
            seed=args.seed,
        )
        model.estimates_ = sampler.estimates_
        model.hyperparameters = sampler.hyperparameters
        print(
            f"parallel fit on {args.nodes} nodes: "
            f"{sampler.training_seconds():.2f}s cluster time, "
            f"speedup {sampler.speedup():.2f}x"
        )
    else:
        model = COLDModel(
            num_communities=args.communities,
            num_topics=args.topics,
            include_network=not args.no_network,
            seed=args.seed,
        ).fit(corpus, num_iterations=args.iterations)
    model.save(args.model)
    print(f"saved model -> {args.model}.json / .npz")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    model = COLDModel.load(args.model)
    corpus = load_corpus(args.corpus)
    estimates = model.estimates_
    assert estimates is not None
    print(f"== word cloud of topic {args.topic} ==")
    print(
        word_cloud(
            top_words(estimates, args.topic, corpus.vocabulary, size=args.top_words)
        )
    )
    print(f"\n== diffusion graph of topic {args.topic} ==")
    graph = extract_diffusion_graph(estimates, args.topic)
    print(diffusion_graph_summary(graph))
    print(f"\n== influential communities at topic {args.topic} ==")
    influence = community_influence(estimates, args.topic, num_simulations=100)
    print(pentagon_summary(pentagon_embedding(estimates, influence)))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = COLDModel.load(args.model)
    corpus = load_corpus(args.corpus)
    estimates = model.estimates_
    assert estimates is not None
    split = post_splits(corpus, num_folds=args.folds, seed=args.seed)[0]
    curve = accuracy_curve(
        lambda post: predict_timestamp(estimates, post),
        split.test,
        args.tolerances,
    )
    for tolerance, accuracy in zip(args.tolerances, curve):
        print(f"tolerance {tolerance:>3}: accuracy {accuracy:.3f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import build_report

    model = COLDModel.load(args.model)
    corpus = load_corpus(args.corpus)
    assert model.estimates_ is not None
    report = build_report(model.estimates_, corpus, topic=args.topic)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report)
        print(f"wrote report -> {args.output}")
    else:
        print(report)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "predict": _cmd_predict,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
