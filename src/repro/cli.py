"""Command-line interface: ``cold <subcommand>``.

Subcommands mirror the lifecycle of a COLD study:

* ``generate``  — synthesise a Weibo-like corpus to JSONL, or stream it
  to a packed out-of-core ``.coldpack`` with ``--packed`` (bounded RSS,
  bit-identical draws at equal seed; every subcommand sniffs the format
  from the file's magic bytes);
* ``train``     — fit COLD (serial or parallel) and save estimates;
* ``analyze``   — print word clouds, a topic's diffusion graph, and the
  influential-community summary for a trained model;
* ``report``    — the full analysis report (all Fig. 5-16 analyses);
* ``predict``   — time-stamp prediction accuracy of a trained model on a
  held-out corpus slice;
* ``bench``     — the Gibbs sweep benchmark (reference vs fast kernels),
  written as ``BENCH_gibbs.json``; with ``--parallel``, the parallel
  scaling benchmark over cluster nodes, written as
  ``BENCH_parallel.json``;
* ``profile``   — phase-attribute sweep wall time with the training-plane
  performance observatory (:mod:`repro.telemetry.profiler`): attribution
  table, collapsed-stack output for flamegraphs, worker utilization and
  memory gauges;
* ``monitor``   — tail a (live or finished) run's ``metrics.jsonl``:
  sweep rate, log-likelihood trend, ETA;
* ``diagnose``  — convergence verdict for a run: split-R̂ / ESS across
  chains, Geweke for single chains, quality trajectories (see
  :mod:`repro.diagnostics`);
* ``serve``     — the resilient prediction server (see
  :mod:`repro.serving`): retweet/link/timestamp/influential queries over
  HTTP with deadlines, load shedding, health probes, and hot-swap reload;
* ``stream``    — continuous operation (see :mod:`repro.streaming`):
  bootstrap-fit on the head of an event JSONL, then fold the remainder
  in incremental batches, publishing model generations to a directory
  (and, with ``--serve``, hot-swapping an in-process server on every
  publish).  ``cold bench --streaming`` measures per-update cost against
  a full batch refit (``BENCH_streaming.json``).

``train`` handles SIGINT/SIGTERM gracefully: the fit stops at the next
sweep boundary, writes a final checkpoint when checkpointing is enabled,
and exits with code 3 (instead of a KeyboardInterrupt traceback).

``train --chains N`` fits N independently seeded chains concurrently
(each streaming quality metrics into its own ``metrics.jsonl``), saves
the best chain as the model, and leaves a chains directory ready for
``cold diagnose``.

``train`` takes ``--metrics-out``/``--trace-out`` (the telemetry streams
of :mod:`repro.telemetry`) and ``--log-level``/``--log-format`` to turn
on structured logging.

Model-dimension flags are shared across subcommands via parent parsers:
``--communities``/``--topics`` everywhere, with ``--num-communities`` /
``--num-topics`` accepted as aliases so scripts can use the same spelling
as :class:`repro.api.COLDConfig`.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
from collections.abc import Callable, Iterator
from pathlib import Path

from .core.diffusion import extract_diffusion_graph
from .core.estimates import EstimateError
from .core.influence import community_influence, pentagon_embedding
from .core.model import COLDModel, ModelError, TrainingInterrupted
from .core.patterns import top_words
from .core.prediction import predict_timestamp
from .core.state import StateError
from .datasets.corpus import CorpusError
from .datasets.io import CorpusIOError, load_corpus, save_corpus
from .datasets.splits import post_splits
from .datasets.stream import StreamError
from .datasets.synthetic import SyntheticConfig, SyntheticError, generate_corpus
from .diagnostics.stats import DiagnosticsError
from .eval.timestamp import accuracy_curve
from .parallel.engine import EngineError
from .parallel.sampler import ParallelCOLDSampler
from .resilience.checkpoint import CheckpointError
from .resilience.retry import RetryError
from .serving.robustness import ServingError
from .telemetry.logconfig import configure_logging
from .telemetry.metrics import TelemetryError
from .telemetry.monitor import monitor as _monitor_metrics
from .viz import diffusion_graph_summary, pentagon_summary, word_cloud

#: Typed failures the CLI converts into a one-line message + exit code 2
#: (missing/corrupt inputs, invalid configs) instead of a traceback.
_CLI_ERRORS = (
    CorpusError,
    CorpusIOError,
    CheckpointError,
    DiagnosticsError,
    ModelError,
    EstimateError,
    EngineError,
    StateError,
    RetryError,
    ServingError,
    StreamError,
    SyntheticError,
    TelemetryError,
    FileNotFoundError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


def _seed_parent(default: int = 0) -> argparse.ArgumentParser:
    """Parent parser providing the shared ``--seed`` flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=default)
    return parent


def _dims_parent(communities: int, topics: int) -> argparse.ArgumentParser:
    """Parent parser for model dimensions, with per-command defaults.

    ``--num-communities``/``--num-topics`` are accepted as aliases so CLI
    invocations can mirror :class:`repro.api.COLDConfig` field names.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--communities", "--num-communities", type=int, default=communities,
        dest="communities",
    )
    parent.add_argument(
        "--topics", "--num-topics", type=int, default=topics, dest="topics",
    )
    return parent


def _add_generate(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "generate",
        help="synthesise a corpus",
        parents=[_dims_parent(communities=4, topics=6), _seed_parent()],
    )
    parser.add_argument("output", type=Path, help="output JSONL path")
    parser.add_argument("--users", type=int, default=60)
    parser.add_argument("--time-slices", type=int, default=24)
    parser.add_argument("--vocab", type=int, default=400)
    parser.add_argument("--themed", action="store_true", help="readable tokens")
    parser.add_argument(
        "--events", action="store_true",
        help="write an event JSONL (post/link records with wall-clock "
        "stamps, 'cold stream' input) instead of a corpus JSONL",
    )
    parser.add_argument(
        "--packed", action="store_true",
        help="stream a packed .coldpack corpus to disk (chunked, bounded "
        "memory — use for large --users; bit-identical to the JSONL "
        "corpus at equal seed) instead of a corpus JSONL",
    )
    parser.add_argument(
        "--posts-per-user", type=float, default=None, metavar="MEAN",
        help="mean posts per user (default: 8.0)",
    )
    parser.add_argument(
        "--words-per-post", type=float, default=None, metavar="MEAN",
        help="mean words per post (default: 9.0)",
    )
    parser.add_argument(
        "--links-per-user", type=float, default=None, metavar="MEAN",
        help="mean links per user (default: 5.0)",
    )


def _telemetry_parent() -> argparse.ArgumentParser:
    """Parent parser for the observability flags (see repro.telemetry)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics-out", type=Path, default=None, metavar="JSONL",
        help="append per-sweep metric records to this JSONL file "
        "(tail it live with 'cold monitor')",
    )
    parent.add_argument(
        "--trace-out", type=Path, default=None, metavar="JSON",
        help="write a Chrome trace_event JSON of the fit "
        "(load in chrome://tracing or Perfetto)",
    )
    parent.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="enable structured logging at this level",
    )
    parent.add_argument(
        "--log-format", default="plain", choices=["plain", "json"],
        help="log line format for --log-level (default: plain)",
    )
    return parent


def _add_train(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "train",
        help="fit COLD on a corpus",
        parents=[
            _dims_parent(communities=10, topics=10),
            _seed_parent(),
            _telemetry_parent(),
        ],
    )
    parser.add_argument("corpus", type=Path, help="JSONL corpus path")
    parser.add_argument("model", type=Path, help="output model path (no suffix)")
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--no-network", action="store_true")
    parser.add_argument(
        "--reference-kernels", action="store_true",
        help="use the uncached reference Gibbs kernels (draws are "
        "bit-identical either way; this only trades speed for simplicity)",
    )
    parser.add_argument(
        "--verify-corpus", action="store_true",
        help="for packed .coldpack corpora: stream every column checksum "
        "before training (exit 2 with PackedChecksumError on corruption; "
        "open() alone only validates the header).  No-op for JSONL "
        "corpora, which are fully parsed on load anyway",
    )
    parser.add_argument(
        "--nodes", type=int, default=1,
        help="simulated cluster nodes (>1 uses the parallel sampler)",
    )
    parser.add_argument(
        "--executor", choices=["simulated", "threads", "processes"],
        default="simulated",
        help="how parallel node work runs: 'simulated' (sequential, "
        "simulated-cluster timing), 'threads' (GIL-limited), or "
        "'processes' (shared-memory worker processes, true multi-core); "
        "draws are identical across executors for a given seed",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --executor processes "
        "(default: one per node)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="write an atomic checkpoint every N sweeps (serial fits only)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for checkpoints (defaults to MODEL.ckpt)",
    )
    parser.add_argument(
        "--resume", type=Path, default=None, metavar="CHECKPOINT",
        help="resume a killed fit from a checkpoint file or directory "
        "(falls back to the newest valid checkpoint; ignores --iterations "
        "etc., which are restored from the checkpoint)",
    )
    parser.add_argument(
        "--chains", type=int, default=None, metavar="K",
        help="fit K independently seeded chains concurrently (seeds "
        "SEED..SEED+K-1), stream per-chain quality metrics, and save the "
        "best chain as MODEL; inspect with 'cold diagnose <chains-dir>'",
    )
    parser.add_argument(
        "--chains-dir", type=Path, default=None,
        help="directory for per-chain metrics/estimates and the "
        "chains.json manifest (default: MODEL.chains)",
    )
    parser.add_argument(
        "--diag-stride", type=int, default=5, metavar="N",
        help="evaluate streaming quality diagnostics (coherence, "
        "likelihood chains) every N sweeps of a --chains fit (default: 5)",
    )


def _add_analyze(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser("analyze", help="explore a trained model")
    parser.add_argument("model", type=Path, help="model path (no suffix)")
    parser.add_argument("corpus", type=Path, help="JSONL corpus path")
    parser.add_argument("--topic", type=int, default=0)
    parser.add_argument("--top-words", type=int, default=12)


def _add_report(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "report", help="full analysis report for a trained model"
    )
    parser.add_argument("model", type=Path, help="model path (no suffix)")
    parser.add_argument("corpus", type=Path, help="JSONL corpus path")
    parser.add_argument("--topic", type=int, default=None)
    parser.add_argument("--output", type=Path, default=None, help="write to file")


def _add_predict(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "predict",
        help="time-stamp prediction accuracy on a holdout",
        parents=[_seed_parent()],
    )
    parser.add_argument("model", type=Path)
    parser.add_argument("corpus", type=Path)
    parser.add_argument("--folds", type=int, default=5)
    parser.add_argument("--tolerances", type=int, nargs="+", default=[0, 1, 2, 4])


def _add_bench(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="benchmark the Gibbs kernels, or parallel scaling (--parallel)",
    )
    parser.add_argument(
        "output", type=Path, nargs="?", default=None,
        help="output JSON path (default: BENCH_gibbs.json, or "
        "BENCH_parallel.json with --parallel)",
    )
    parser.add_argument(
        "--cases", nargs="+", choices=["smoke", "medium"],
        default=None,
        help="which benchmark cases to run (default: smoke medium, or "
        "just medium with --parallel)",
    )
    parser.add_argument("--warmup", type=int, default=10)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--sweeps-per-rep", type=int, default=2)
    parser.add_argument(
        "--parallel", action="store_true",
        help="benchmark parallel sampling scaling over cluster nodes "
        "instead of the serial Gibbs kernels",
    )
    parser.add_argument(
        "--packed-large", action="store_true",
        help="with --parallel: additionally run the out-of-core packed "
        "sweep (chunked .coldpack generation plus mmap-backed training at "
        "1K/10K/100K users, per-point peak RSS); takes minutes",
    )
    parser.add_argument(
        "--diagnostics", action="store_true",
        help="benchmark quality-streaming overhead (diagnostics on vs "
        "off) instead of the serial Gibbs kernels",
    )
    parser.add_argument(
        "--serving", action="store_true",
        help="benchmark the prediction serving layer (QPS and client-side "
        "p50/p99 over a live loopback server) instead of the Gibbs kernels",
    )
    parser.add_argument(
        "--streaming", action="store_true",
        help="benchmark incremental updates against a full batch refit "
        "(per-update latency, speedup, statistical equivalence) instead "
        "of the Gibbs kernels",
    )
    parser.add_argument(
        "--updates", type=int, default=5,
        help="incremental updates per --streaming case (default: 5)",
    )
    parser.add_argument(
        "--bootstrap-fraction", type=float, default=0.6, metavar="F",
        help="event fraction for the --streaming bootstrap fit",
    )
    parser.add_argument(
        "--requests", type=int, default=600,
        help="timed requests per --serving case (default: 600)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=4,
        help="client threads for --serving (default: 4)",
    )
    parser.add_argument(
        "--stride", type=int, default=10,
        help="quality-streaming stride for --diagnostics (default: 10)",
    )
    parser.add_argument(
        "--nodes", type=int, nargs="+", default=[1, 2, 4, 8],
        help="node counts for the --parallel scaling curve",
    )
    parser.add_argument(
        "--executor", choices=["simulated", "threads", "processes"],
        default="processes",
        help="executor under test for --parallel (default: processes)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes per fit for --parallel with the "
        "processes executor (default: one per node)",
    )
    parser.add_argument(
        "--sweeps", type=int, default=None,
        help="Gibbs sweeps per timed fit (default: 5 for --parallel, "
        "20 for --diagnostics)",
    )
    parser.add_argument(
        "--equivalence-sweeps", type=int, default=2,
        help="sweeps of the --parallel draws_match equivalence check",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="after the run, diff the new numbers against a baseline and "
        "print per-metric verdicts (ok/improved/regressed)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="REF_OR_FILE",
        help="baseline for --compare: a BENCH json file, a .jsonl ledger "
        "(last matching record wins), or a git ref holding the committed "
        "snapshot (default: the snapshot at the output path before this "
        "run overwrites it)",
    )
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="FRACTION",
        help="relative change counted as a regression/improvement for "
        "--compare (default: 0.10)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="with --compare: exit nonzero when any metric regressed",
    )
    parser.add_argument(
        "--history", type=Path, default=None, metavar="PATH",
        help="benchmark regression ledger to append this run to "
        "(default: benchmarks/history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip the ledger append",
    )


def _add_profile(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "profile",
        help="phase-attribute Gibbs sweep wall time (training-plane "
        "performance observatory)",
    )
    parser.add_argument(
        "--case", choices=["smoke", "medium"], default="medium",
        help="benchmark corpus to profile (default: medium)",
    )
    parser.add_argument(
        "--sweeps", type=int, default=5,
        help="instrumented sweeps to attribute (default: 5)",
    )
    parser.add_argument(
        "--warmup", type=int, default=2,
        help="dark warmup sweeps before timing, serial executor only "
        "(default: 2)",
    )
    parser.add_argument(
        "--executor", choices=["serial", "simulated", "threads", "processes"],
        default="serial",
        help="profile the serial kernels directly, or a parallel "
        "executor's full superstep loop (default: serial)",
    )
    parser.add_argument(
        "--nodes", type=int, default=2,
        help="cluster nodes for a parallel executor (default: 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --executor processes "
        "(default: one per node)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the full report record as JSON",
    )
    parser.add_argument(
        "--collapsed", type=Path, default=None, metavar="PATH",
        help="also write collapsed-stack lines (flamegraph.pl / speedscope "
        "input)",
    )


def _add_monitor(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "monitor",
        help="tail a run's metrics.jsonl: sweep rate, loglik trend, ETA",
    )
    parser.add_argument(
        "metrics", type=Path,
        help="metrics.jsonl written by 'cold train --metrics-out' "
        "(or a checkpointed fit's default <ckpt-dir>/metrics.jsonl)",
    )
    parser.add_argument(
        "--follow", "-f", action="store_true",
        help="keep polling until the run's fit_end record appears "
        "(default: print one summary and exit)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval for --follow (default: 2s)",
    )
    parser.add_argument(
        "--window", type=int, default=20, metavar="N",
        help="trailing sweep window for rate/trend estimates (default: 20)",
    )
    parser.add_argument(
        "--max-updates", type=int, default=None, metavar="N",
        help="stop --follow after N render cycles even if the run "
        "has not finished (for scripts)",
    )
    parser.add_argument(
        "--serving", action="store_true",
        help="read the file as a serving metrics stream ('cold serve "
        "--metrics-out'): qps, latency quantiles, shed/breaker state, "
        "staleness, SLO burn",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="read the file as a streaming-trainer metrics stream "
        "('cold stream --metrics-out'): update rate, publish cadence, "
        "event-to-publish freshness; combine with --serving for the "
        "unified train+serve dashboard over one shared file",
    )


def _add_serve(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="serve a trained model's predictions over HTTP",
        description="Boot the resilient prediction server on a saved "
        "model: JSON endpoints for retweet/link/timestamp/influential "
        "queries plus /healthz, /readyz, and /metrics; every request gets "
        "a deadline and a bounded admission queue (overload sheds with "
        "503 + Retry-After).  SIGHUP or POST /admin/reload hot-swaps the "
        "model after validating it (rolls back on failure); "
        "SIGTERM/SIGINT drain in-flight requests and exit cleanly.",
        parents=[_telemetry_parent()],
    )
    parser.add_argument("model", type=Path, help="model path (no suffix)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--deadline-ms", type=int, default=2000, metavar="MS",
        help="default per-request deadline; clients may lower it per "
        "request via a deadline_ms body field or X-Deadline-Ms header",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="concurrent requests executing (default: 8)",
    )
    parser.add_argument(
        "--max-waiting", type=int, default=16, metavar="N",
        help="requests allowed to wait for a slot; beyond this they are "
        "shed immediately (default: 16)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive degenerate results that open the circuit "
        "breaker (default: 3)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="SECONDS",
        help="cooldown before the open breaker lets a probe through",
    )
    parser.add_argument(
        "--cache-size", type=int, default=1024, metavar="N",
        help="hot-user fold cache entries (default: 1024)",
    )
    parser.add_argument(
        "--top-comm", type=int, default=5, metavar="S",
        help="TopComm truncation of retweet scoring (default: 5)",
    )
    parser.add_argument(
        "--ic-simulations", type=int, default=100, metavar="N",
        help="Monte-Carlo runs per influential-community query",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=2.0, metavar="SECONDS",
        help="cadence of --metrics-out serving snapshots (default: 2s)",
    )
    parser.add_argument(
        "--slo-availability", type=float, default=0.999, metavar="TARGET",
        help="availability objective tracked on /metrics and /readyz "
        "(default: 0.999)",
    )
    parser.add_argument(
        "--slo-latency-ms", type=float, default=500.0, metavar="MS",
        help="latency objective threshold: requests slower than this "
        "count against the latency SLO (default: 500ms)",
    )


def _add_stream(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "stream",
        help="continuous operation: bootstrap fit + incremental updates",
        description="Read an event JSONL (see 'cold generate --events'), "
        "bootstrap-fit COLD on its head, then fold the remaining events "
        "in batches via windowed incremental Gibbs.  Every publish "
        "interval the current model is published atomically to "
        "--publish-dir (MANIFEST.json written last); with --serve an "
        "in-process prediction server hot-swaps on every publish, "
        "event-driven (no polling).",
        parents=[
            _dims_parent(communities=4, topics=6),
            _seed_parent(),
            _telemetry_parent(),
        ],
    )
    parser.add_argument("events", type=Path, help="event JSONL path")
    parser.add_argument(
        "model", type=Path, help="final model output path (no suffix)"
    )
    parser.add_argument(
        "--publish-dir", type=Path, default=None,
        help="directory for published model generations "
        "(default: MODEL.pub)",
    )
    parser.add_argument(
        "--bootstrap-fraction", type=float, default=0.5, metavar="F",
        help="fraction of events used for the initial batch fit "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=200, metavar="N",
        help="events folded per incremental update (default: 200)",
    )
    parser.add_argument(
        "--iterations", type=int, default=100,
        help="Gibbs sweeps for the bootstrap fit (default: 100)",
    )
    parser.add_argument(
        "--update-sweeps", type=int, default=8, metavar="N",
        help="windowed sweeps per incremental update (default: 8)",
    )
    parser.add_argument(
        "--window-posts", type=int, default=512, metavar="N",
        help="recent-post tail resampled alongside new posts",
    )
    parser.add_argument(
        "--window-links", type=int, default=512, metavar="N",
        help="recent-link tail resampled alongside new links",
    )
    parser.add_argument(
        "--publish-interval", type=int, default=1, metavar="N",
        help="publish a model generation every N updates (default: 1)",
    )
    parser.add_argument(
        "--rollover", choices=["grow", "clamp", "error"], default="grow",
        help="time-grid policy for events past the fitted span: 'grow' "
        "appends slices (psi gets prior-mass columns), 'clamp' bins "
        "into the last slice, 'error' rejects the increment",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for streaming checkpoints "
        "(default: MODEL.ckpt when checkpointing is on)",
    )
    parser.add_argument(
        "--checkpoint-every-updates", type=int, default=None, metavar="N",
        help="write an atomic lineage checkpoint every N updates",
    )
    parser.add_argument(
        "--time-slices", type=int, default=24,
        help="time-grid resolution of the bootstrap corpus (default: 24)",
    )
    parser.add_argument(
        "--min-posts", type=int, default=1, metavar="N",
        help="bootstrap low-activity filter: drop users with fewer posts",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also serve predictions in-process, hot-swapping on publish",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port for --serve (0 picks a free one)",
    )


def _add_diagnose(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "diagnose",
        help="convergence verdict for a run (R-hat, ESS, Geweke, quality)",
        description="Read per-chain metrics (a chains directory written "
        "by 'cold train --chains', or one or more metrics.jsonl files) "
        "and print a convergence report.  Exits 0 when every tracked "
        "quantity is converged, 1 otherwise, 2 on bad inputs.",
    )
    parser.add_argument(
        "source", type=Path, nargs="+",
        help="a chains directory / chains.json manifest, or metrics.jsonl "
        "file(s) — one per chain",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--discard", type=float, default=0.5, metavar="FRACTION",
        help="warm-up fraction dropped from the front of every chain "
        "before computing statistics (default: 0.5)",
    )
    parser.add_argument(
        "--rhat-threshold", type=float, default=1.1, metavar="X",
        help="split-R-hat above this flags 'not converged' (default: 1.1)",
    )
    parser.add_argument(
        "--ess-min", type=float, default=10.0, metavar="N",
        help="effective sample size below this is 'inconclusive' "
        "(default: 10)",
    )
    parser.add_argument(
        "--geweke-threshold", type=float, default=2.0, metavar="Z",
        help="single-chain Geweke |z| above this flags 'not converged' "
        "(default: 2)",
    )
    parser.add_argument(
        "--min-samples", type=int, default=8, metavar="N",
        help="fewer post-warm-up samples than this is itself "
        "'not converged' (default: 8)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cold",
        description="COLD: Community Level Diffusion Extraction (SIGMOD'15)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_train(subparsers)
    _add_analyze(subparsers)
    _add_report(subparsers)
    _add_predict(subparsers)
    _add_bench(subparsers)
    _add_profile(subparsers)
    _add_monitor(subparsers)
    _add_diagnose(subparsers)
    _add_serve(subparsers)
    _add_stream(subparsers)
    return parser


@contextlib.contextmanager
def _graceful_interrupts() -> Iterator[Callable[[], bool]]:
    """SIGINT/SIGTERM set a stop flag instead of raising mid-sweep.

    Yields the flag poll; the fit loop checks it at sweep boundaries and
    raises :class:`TrainingInterrupted` with consistent state (writing a
    final checkpoint when enabled).  Previous handlers are restored on
    exit so a hung post-interrupt phase can still be killed normally.
    """
    stop = threading.Event()

    def handler(signum: int, frame: object) -> None:
        stop.set()

    previous = [
        (sig, signal.signal(sig, handler))
        for sig in (signal.SIGINT, signal.SIGTERM)
    ]
    try:
        yield stop.is_set
    finally:
        for sig, old in previous:
            signal.signal(sig, old)


def _report_interrupt(exc: TrainingInterrupted, args: argparse.Namespace) -> int:
    """One-line interrupt report + resume hint; exit code 3."""
    print(f"interrupted: {exc}", file=sys.stderr)
    if exc.checkpoint is not None:
        print(
            f"resume with: cold train {args.corpus} {args.model} "
            f"--resume {exc.checkpoint}",
            file=sys.stderr,
        )
    return 3


def _cmd_generate(args: argparse.Namespace) -> int:
    rates = {}
    if args.posts_per_user is not None:
        rates["mean_posts_per_user"] = args.posts_per_user
    if args.words_per_post is not None:
        rates["mean_words_per_post"] = args.words_per_post
    if args.links_per_user is not None:
        rates["mean_links_per_user"] = args.links_per_user
    config = SyntheticConfig(
        num_users=args.users,
        num_communities=args.communities,
        num_topics=args.topics,
        num_time_slices=args.time_slices,
        vocab_size=args.vocab,
        themed=args.themed,
        seed=args.seed,
        **rates,
    )
    if args.packed:
        if args.events:
            raise SyntheticError("--packed and --events are mutually exclusive")
        from .datasets.synthetic import generate_packed_corpus

        corpus, _truth = generate_packed_corpus(config, path=args.output)
        size_mb = args.output.stat().st_size / (1024 * 1024)
        print(f"wrote {corpus} ({size_mb:.1f} MB)")
        corpus.close()
        return 0
    corpus, _truth = generate_corpus(config)
    if args.events:
        from .streaming import corpus_to_events, write_events

        count = write_events(args.output, corpus_to_events(corpus))
        print(f"wrote {count} event(s) from {corpus} -> {args.output}")
        return 0
    save_corpus(corpus, args.output)
    print(f"wrote {corpus} -> {args.output}")
    return 0


def _load_train_corpus(args: argparse.Namespace):
    corpus = load_corpus(args.corpus)
    if getattr(args, "verify_corpus", False):
        from .datasets.packed import PackedCorpus

        if isinstance(corpus, PackedCorpus):
            corpus.verify()
            print(f"verified {corpus.path}: all column checksums match")
        else:
            print("corpus is JSONL (fully parsed on load); nothing to verify")
    return corpus


def _cmd_train(args: argparse.Namespace) -> int:
    if args.log_level is not None:
        configure_logging(level=args.log_level, fmt=args.log_format)
    parallel = args.nodes > 1 or args.executor != "simulated"
    if args.chains is not None:
        if args.resume is not None or args.checkpoint_every is not None:
            raise ModelError(
                "--chains does not combine with --resume/--checkpoint-every"
            )
        if args.nodes > 1:
            raise ModelError(
                "--chains runs serial per-chain fits; drop --nodes "
                "(chains already run concurrently across processes)"
            )
        return _train_chains(args)
    if args.resume is not None:
        if parallel:
            raise EngineError(
                "--resume only supports serial fits "
                "(--nodes 1, --executor simulated)"
            )
        corpus = _load_train_corpus(args)
        print(f"resuming from {args.resume}")
        with _graceful_interrupts() as stop_requested:
            try:
                model = COLDModel.resume(
                    args.resume, corpus=corpus, stop_requested=stop_requested
                )
            except TrainingInterrupted as exc:
                return _report_interrupt(exc, args)
        _report_degeneracy(model)
        model.save(args.model)
        print(f"saved model -> {args.model}.json / .npz")
        return 0

    corpus = _load_train_corpus(args)
    print(f"training on {corpus}")
    checkpoint_every = args.checkpoint_every
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_every is not None and checkpoint_dir is None:
        checkpoint_dir = args.model.with_suffix(".ckpt")
    if checkpoint_every is not None and parallel:
        raise EngineError(
            "--checkpoint-every only supports serial fits "
            "(--nodes 1, --executor simulated)"
        )
    fast = not args.reference_kernels
    if parallel:
        sampler = ParallelCOLDSampler(
            num_communities=args.communities,
            num_topics=args.topics,
            num_nodes=args.nodes,
            include_network=not args.no_network,
            seed=args.seed,
            fast=fast,
            executor=args.executor,
            num_workers=args.workers,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
        ).fit(corpus, num_iterations=args.iterations)
        model = COLDModel(
            num_communities=args.communities,
            num_topics=args.topics,
            include_network=not args.no_network,
            seed=args.seed,
            fast=fast,
            executor=args.executor,
            num_nodes=args.nodes,
            num_workers=args.workers,
        )
        model.estimates_ = sampler.estimates_
        model.hyperparameters = sampler.hyperparameters
        model.cluster_report_ = sampler.report_
        print(
            f"parallel fit on {args.nodes} node(s) "
            f"[{args.executor} executor]: "
            f"{sampler.training_seconds():.2f}s cluster time, "
            f"speedup {sampler.speedup():.2f}x"
        )
        model.monitor_ = sampler.monitor_
        _report_degeneracy(model)
    else:
        with _graceful_interrupts() as stop_requested:
            try:
                model = COLDModel(
                    num_communities=args.communities,
                    num_topics=args.topics,
                    include_network=not args.no_network,
                    seed=args.seed,
                    fast=fast,
                    metrics_out=args.metrics_out,
                    trace_out=args.trace_out,
                ).fit(
                    corpus,
                    num_iterations=args.iterations,
                    checkpoint_every=checkpoint_every,
                    checkpoint_dir=checkpoint_dir,
                    stop_requested=stop_requested,
                )
            except TrainingInterrupted as exc:
                return _report_interrupt(exc, args)
        if checkpoint_every is not None:
            print(f"checkpoints every {checkpoint_every} sweeps -> {checkpoint_dir}")
        _report_degeneracy(model)
    model.save(args.model)
    print(f"saved model -> {args.model}.json / .npz")
    return 0


def _train_chains(args: argparse.Namespace) -> int:
    """``cold train --chains K``: multi-chain fit + best-chain model."""
    from .core.config import COLDConfig
    from .diagnostics import run_chains

    corpus = load_corpus(args.corpus)
    chains_dir = args.chains_dir
    if chains_dir is None:
        chains_dir = args.model.with_suffix(".chains")
    config = COLDConfig(
        num_communities=args.communities,
        num_topics=args.topics,
        include_network=not args.no_network,
        seed=args.seed,
        fast=not args.reference_kernels,
        num_iterations=args.iterations,
    )
    print(f"training {args.chains} chain(s) on {corpus}")
    result = run_chains(
        corpus,
        config,
        num_chains=args.chains,
        out_dir=chains_dir,
        executor="serial" if args.chains == 1 else "processes",
        num_workers=args.workers,
        stride=args.diag_stride,
    )
    for chain in result.chains:
        likelihood = chain.final_log_likelihood
        shown = "n/a" if likelihood is None else f"{likelihood:.1f}"
        print(
            f"chain {chain.chain_id} (seed {chain.seed}): "
            f"final log-likelihood {shown}, "
            f"{chain.quality_records} quality record(s) -> {chain.metrics}"
        )
    best = result.best_chain()
    model = COLDModel(config.evolve(seed=best.seed))
    model.estimates_ = best.load_estimates()
    model.save(args.model)
    print(f"saved best chain (chain {best.chain_id}) -> {args.model}.json / .npz")
    print(f"chains manifest -> {result.manifest}")
    print(f"next: cold diagnose {result.directory}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from .diagnostics import diagnose

    source = args.source[0] if len(args.source) == 1 else list(args.source)
    report = diagnose(
        source,
        discard=args.discard,
        rhat_threshold=args.rhat_threshold,
        ess_min=args.ess_min,
        geweke_threshold=args.geweke_threshold,
        min_samples=args.min_samples,
    )
    print(report.to_json() if args.as_json else report.render())
    return 0 if report.verdict == "converged" else 1


def _report_degeneracy(model: COLDModel) -> None:
    """Surface the uniform-fallback tally so numerical collapse is visible."""
    monitor = model.monitor_
    if monitor is not None and monitor.degenerate_draws:
        print(
            f"warning: {monitor.degenerate_draws} degenerate categorical "
            "draws fell back to uniform (numerical underflow); inspect "
            "hyperparameters if this number is large"
        )


def _cmd_analyze(args: argparse.Namespace) -> int:
    model = COLDModel.load(args.model)
    corpus = load_corpus(args.corpus)
    estimates = model.estimates_
    assert estimates is not None
    print(f"== word cloud of topic {args.topic} ==")
    print(
        word_cloud(
            top_words(estimates, args.topic, corpus.vocabulary, size=args.top_words)
        )
    )
    print(f"\n== diffusion graph of topic {args.topic} ==")
    graph = extract_diffusion_graph(estimates, args.topic)
    print(diffusion_graph_summary(graph))
    print(f"\n== influential communities at topic {args.topic} ==")
    influence = community_influence(estimates, args.topic, num_simulations=100)
    print(pentagon_summary(pentagon_embedding(estimates, influence)))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    model = COLDModel.load(args.model)
    corpus = load_corpus(args.corpus)
    estimates = model.estimates_
    assert estimates is not None
    split = post_splits(corpus, num_folds=args.folds, seed=args.seed)[0]
    curve = accuracy_curve(
        lambda post: predict_timestamp(estimates, post),
        split.test,
        args.tolerances,
    )
    for tolerance, accuracy in zip(args.tolerances, curve):
        print(f"tolerance {tolerance:>3}: accuracy {accuracy:.3f}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import build_report

    model = COLDModel.load(args.model)
    corpus = load_corpus(args.corpus)
    assert model.estimates_ is not None
    report = build_report(model.estimates_, corpus, topic=args.topic)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report)
        print(f"wrote report -> {args.output}")
    else:
        print(report)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (
        MEDIUM,
        PACKED_SCALES,
        SMOKE,
        write_benchmark,
        write_diagnostics_benchmark,
        write_parallel_benchmark,
        write_serving_benchmark,
        write_streaming_benchmark,
    )

    exclusive = [args.parallel, args.diagnostics, args.serving, args.streaming]
    if sum(exclusive) > 1:
        raise TelemetryError(
            "--parallel, --diagnostics, --serving, and --streaming are "
            "exclusive"
        )
    if args.packed_large and not args.parallel:
        raise TelemetryError("--packed-large requires --parallel")
    available = {"smoke": SMOKE, "medium": MEDIUM}
    case_names = args.cases
    if case_names is None:
        case_names = (
            ["medium"] if args.parallel or args.diagnostics or args.streaming
            else ["smoke", "medium"]
        )
    cases = tuple(available[name] for name in dict.fromkeys(case_names))
    output = args.output
    if output is None:
        if args.parallel:
            output = Path("BENCH_parallel.json")
        elif args.diagnostics:
            output = Path("BENCH_diagnostics.json")
        elif args.serving:
            output = Path("BENCH_serving.json")
        elif args.streaming:
            output = Path("BENCH_streaming.json")
        else:
            output = Path("BENCH_gibbs.json")
    baseline = None
    if args.compare:
        # Read the baseline *before* the run overwrites the snapshot at
        # the output path (the default baseline when no --baseline given).
        from .perf import resolve_baseline

        baseline = resolve_baseline(args.baseline, output)
    print(f"benchmarking {len(cases)} case(s): {', '.join(c.name for c in cases)}")

    if args.streaming:
        payload = write_streaming_benchmark(
            output,
            cases=cases,
            num_updates=args.updates,
            bootstrap_fraction=args.bootstrap_fraction,
        )
        for record in payload["cases"]:
            print(
                f"{record['name']:>8}: "
                f"{record['mean_update_seconds']*1e3:.1f}ms per update vs "
                f"{record['refit_seconds']*1e3:.1f}ms full refit, "
                f"speedup {record['speedup']:.1f}x, "
                f"equivalent={record['equivalent']}, "
                f"peak rss {record['peak_rss_mb']:.0f}MB"
            )
        return _bench_finish(payload, output, args, baseline)

    if args.serving:
        payload = write_serving_benchmark(
            output,
            cases=cases,
            num_requests=args.requests,
            concurrency=args.concurrency,
        )
        for record in payload["cases"]:
            print(
                f"{record['name']:>8}: {record['qps']:.0f} qps, "
                f"p50 {record['p50_ms']:.2f}ms, p99 {record['p99_ms']:.2f}ms, "
                f"{record['completed']}/{record['num_requests']} ok, "
                f"{record['errors']} errors, "
                f"peak rss {record['peak_rss_mb']:.0f}MB"
            )
        return _bench_finish(payload, output, args, baseline)

    if args.diagnostics:
        payload = write_diagnostics_benchmark(
            output,
            cases=cases,
            sweeps=args.sweeps if args.sweeps is not None else 20,
            reps=args.reps,
            stride=args.stride,
            equivalence_sweeps=args.equivalence_sweeps,
        )
        for record in payload["cases"]:
            print(
                f"{record['name']:>8}: "
                f"{record['off_seconds_per_sweep']*1e3:.1f}ms plain -> "
                f"{record['on_seconds_per_sweep']*1e3:.1f}ms streaming "
                f"at stride {record['stride']}, "
                f"overhead {record['overhead_fraction']:+.1%}, "
                f"draws_match={record['draws_match']}, "
                f"peak rss {record['peak_rss_mb']:.0f}MB"
            )
        return _bench_finish(payload, output, args, baseline)

    if args.parallel:
        payload = write_parallel_benchmark(
            output,
            cases=cases,
            node_counts=tuple(args.nodes),
            executor=args.executor,
            num_workers=args.workers,
            sweeps=args.sweeps if args.sweeps is not None else 5,
            equivalence_sweeps=args.equivalence_sweeps,
            packed_scales=PACKED_SCALES if args.packed_large else (),
        )
        for record in payload["cases"]:
            for point in record["scaling"]:
                print(
                    f"{record['name']:>8} @ {point['nodes']} node(s): "
                    f"{point['cluster_seconds_per_sweep']*1e3:.1f}ms cluster "
                    f"time per sweep, "
                    f"speedup {point['speedup_vs_1_node']:.2f}x"
                )
            print(
                f"{record['name']:>8}: draws_match={record['draws_match']} "
                f"({record['executor']} vs simulated at "
                f"{record['draws_match_nodes']} nodes), "
                f"peak rss {record['peak_rss_mb']:.0f}MB"
            )
        packed = payload.get("packed_scaling")
        if packed:
            for point in packed["scaling"]:
                print(
                    f"  packed @ {point['users']:>7} users "
                    f"({point['tokens']} tokens, {point['file_mb']:.1f}MB "
                    f"file): generate {point['generate_seconds']:.1f}s at "
                    f"{point['generate_peak_rss_mb']:.0f}MB peak rss, train "
                    f"{point['wall_seconds_per_sweep']:.2f}s/sweep at "
                    f"{point['train_peak_rss_mb']:.0f}MB peak rss"
                )
            print(
                f"  packed: draws_match={packed['draws_match']} "
                f"(mmap processes vs in-RAM simulated at "
                f"{packed['draws_match_users']} users)"
            )
        return _bench_finish(payload, output, args, baseline)

    payload = write_benchmark(
        output,
        cases=cases,
        warmup=args.warmup,
        reps=args.reps,
        sweeps_per_rep=args.sweeps_per_rep,
    )
    for record in payload["cases"]:
        print(
            f"{record['name']:>8}: {record['reference_seconds_per_sweep']*1e3:.1f}ms"
            f" -> {record['fast_seconds_per_sweep']*1e3:.1f}ms per sweep, "
            f"speedup {record['speedup']:.2f}x, "
            f"draws_match={record['draws_match']}, "
            f"peak rss {record['peak_rss_mb']:.0f}MB"
        )
    return _bench_finish(payload, output, args, baseline)


def _bench_finish(
    payload: dict,
    output: Path,
    args: argparse.Namespace,
    baseline: dict | None,
) -> int:
    """Ledger append + baseline comparison shared by every bench suite."""
    from .perf import (
        DEFAULT_COMPARE_THRESHOLD,
        DEFAULT_HISTORY_PATH,
        append_history,
        compare_benchmarks,
        comparison_regressed,
        machine_fingerprint,
        render_comparison,
    )

    print(f"wrote benchmark -> {output}")
    if not args.no_history:
        history = args.history if args.history is not None else DEFAULT_HISTORY_PATH
        append_history(payload, history)
        print(f"appended run to ledger -> {history}")
    if not args.compare:
        return 0
    if baseline is None:
        spec = args.baseline if args.baseline is not None else str(output)
        print(f"no baseline found at {spec}; nothing to compare")
        return 0
    base_machine = baseline.get("machine")
    if base_machine is not None and base_machine != machine_fingerprint():
        print(
            "warning: baseline was recorded on a different machine; "
            "verdicts may reflect hardware, not code"
        )
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_COMPARE_THRESHOLD
    )
    verdicts = compare_benchmarks(payload, baseline, threshold=threshold)
    print(render_comparison(verdicts))
    if args.strict and comparison_regressed(verdicts):
        print("error: benchmark regression detected", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .perf import MEDIUM, SMOKE, run_profile_case
    from .telemetry.profiler import render_profile_report

    if args.sweeps <= 0:
        raise TelemetryError("--sweeps must be positive")
    case = {"smoke": SMOKE, "medium": MEDIUM}[args.case]
    label = (
        "serial kernels"
        if args.executor == "serial"
        else f"{args.executor} executor, {args.nodes} node(s)"
    )
    print(f"profiling {case.name} case: {args.sweeps} sweep(s), {label}")
    record = run_profile_case(
        case,
        sweeps=args.sweeps,
        warmup=args.warmup,
        executor=args.executor,
        nodes=args.nodes,
        num_workers=args.workers,
    )
    print(render_profile_report(record))
    if record["utilization"] is not None:
        util = record["utilization"]
        print(
            f"workers: busy {util['busy_fraction']:.0%} of sweep wall, "
            f"straggler ratio {util['straggler_ratio']:.2f}x"
        )
    memory = record["memory"]
    print(
        f"memory: peak rss {memory['rss_peak_mb']:.0f}MB, "
        f"{memory['major_page_faults']} major page fault(s)"
    )
    if args.json is not None:
        args.json.write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote profile json -> {args.json}")
    if args.collapsed is not None:
        args.collapsed.write_text(record["collapsed"], encoding="utf-8")
        print(f"wrote collapsed stacks -> {args.collapsed}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    if args.interval <= 0:
        raise TelemetryError("--interval must be positive")
    if not args.follow and not args.metrics.exists():
        raise FileNotFoundError(f"no metrics file at {args.metrics}")
    if args.serving and args.stream:
        mode = "combined"
    elif args.serving:
        mode = "serving"
    elif args.stream:
        mode = "stream"
    else:
        mode = "train"
    _monitor_metrics(
        args.metrics,
        follow=args.follow,
        interval=args.interval,
        window=args.window,
        max_updates=args.max_updates,
        mode=mode,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import ColdHTTPServer, ServerConfig
    from .telemetry import tracing

    if args.log_level is not None:
        configure_logging(level=args.log_level, fmt=args.log_format)
    tracer = None
    if args.trace_out is not None:
        tracer = tracing.Tracer()
        tracing.set_tracer(tracer)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
        max_waiting=args.max_waiting,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_seconds=args.breaker_cooldown,
        cache_size=args.cache_size,
        top_comm_size=args.top_comm,
        ic_simulations=args.ic_simulations,
        metrics_out=args.metrics_out,
        metrics_interval_seconds=args.metrics_interval,
        slo_availability_target=args.slo_availability,
        slo_latency_ms=args.slo_latency_ms,
    )
    server = ColdHTTPServer(config, model_path=args.model)
    checks = server.engine.self_check()
    print(f"model {args.model}: self-check ok {checks}", flush=True)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}", flush=True)
    server.install_signal_handlers()
    try:
        server.serve_until_shutdown()
    finally:
        if tracer is not None:
            tracing.set_tracer(None)
            tracer.save(args.trace_out)
            print(f"wrote trace -> {args.trace_out}", flush=True)
    print("drained cleanly")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .core.config import StreamConfig
    from .datasets.stream import CorpusStreamBuilder, PostEvent
    from .streaming import ModelWatcher, OnlineTrainer, read_events, split_events

    if args.log_level is not None:
        configure_logging(level=args.log_level, fmt=args.log_format)
    events = read_events(args.events)
    bootstrap, remainder = split_events(events, args.bootstrap_fraction)
    builder = CorpusStreamBuilder(
        num_time_slices=args.time_slices, min_posts_per_user=args.min_posts
    )
    for event in bootstrap:
        if isinstance(event, PostEvent):
            builder.add_post(event.author_key, event.tokens, event.time)
        else:
            builder.add_link(event.source_key, event.target_key, event.time)
    corpus = builder.build(incremental=True)
    print(f"bootstrap: {len(bootstrap)}/{len(events)} event(s) -> {corpus}")

    checkpoint_interval = args.checkpoint_every_updates
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_interval is not None and checkpoint_dir is None:
        checkpoint_dir = args.model.with_suffix(".ckpt")
    stream_config = StreamConfig(
        window_posts=args.window_posts,
        window_links=args.window_links,
        update_sweeps=args.update_sweeps,
        publish_interval=args.publish_interval,
        rollover=args.rollover,
        checkpoint_interval=checkpoint_interval,
    )
    model = COLDModel(
        num_communities=args.communities,
        num_topics=args.topics,
        seed=args.seed,
        trace_out=args.trace_out,
        stream=stream_config,
    )
    with _graceful_interrupts() as stop_requested:
        try:
            model.fit(
                corpus,
                num_iterations=args.iterations,
                stop_requested=stop_requested,
            )
        except TrainingInterrupted as exc:
            return _report_interrupt(exc, args)
    _report_degeneracy(model)

    publish_dir = args.publish_dir
    if publish_dir is None:
        publish_dir = args.model.with_suffix(".pub")
    trainer = OnlineTrainer(
        model,
        builder,
        publish_dir=publish_dir,
        checkpoint_dir=checkpoint_dir,
        metrics_out=args.metrics_out,
    )
    trainer.subscribe(
        lambda generation, path: print(
            f"published generation {generation} -> {path.name}", flush=True
        )
    )
    trainer.publish()

    server = None
    server_thread = None
    if args.serve:
        from .serving import ColdHTTPServer, ServerConfig

        # The in-process server appends to the same metrics JSONL as the
        # trainer (full-line appends + flush keep interleavings intact),
        # which is what 'cold monitor --serving --stream' reads back as
        # one unified train+serve dashboard.
        server_config = ServerConfig(
            host=args.host, port=args.port, metrics_out=args.metrics_out
        )
        stem = publish_dir / f"model-{trainer.generation:06d}"
        server = ColdHTTPServer(server_config, model_path=stem)
        watcher = ModelWatcher(server, publish_dir)
        # The boot generation is already live; only later publishes swap.
        watcher.seen_generation = trainer.generation

        def hot_swap(generation: int, path: Path) -> None:
            if watcher.poke():
                print(f"reloaded generation {generation}", flush=True)

        trainer.subscribe(hot_swap)
        server_thread = threading.Thread(
            target=server.serve_until_shutdown,
            name="cold-stream-serve",
            daemon=True,
        )
        server_thread.start()
        host, port = server.server_address[:2]
        print(f"serving on http://{host}:{port}", flush=True)

    exit_code = 0
    with _graceful_interrupts() as stop_requested:
        for start in range(0, len(remainder), args.batch_size):
            if stop_requested():
                print("interrupted: stopping at batch boundary", file=sys.stderr)
                exit_code = 3
                break
            trainer.feed(remainder[start:start + args.batch_size])
            report = trainer.step()
            if report is not None:
                print(
                    f"update {report.update_index}: "
                    f"+{report.new_posts} post(s) +{report.new_links} link(s) "
                    f"+{report.new_users} user(s) +{report.new_terms} term(s) "
                    f"+{report.new_slices} slice(s), "
                    f"window {report.window_posts}, "
                    f"{report.seconds:.2f}s, "
                    f"loglik {report.log_likelihood:.1f}"
                )
        else:
            trainer.drain()
    trainer.close()
    model.save(args.model)
    print(f"saved model -> {args.model}.json / .npz")
    if server is not None:
        server.begin_drain()
        assert server_thread is not None
        server_thread.join(timeout=10)
    print("drained cleanly")
    return exit_code


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "predict": _cmd_predict,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "monitor": _cmd_monitor,
    "diagnose": _cmd_diagnose,
    "serve": _cmd_serve,
    "stream": _cmd_stream,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Typed failures (missing/corrupt inputs, invalid checkpoints, bad
    configs) print a one-line ``error: <Type>: <message>`` to stderr and
    exit with code 2 instead of dumping a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except TrainingInterrupted as exc:
        # Fallback for interrupts surfacing outside _cmd_train's handler.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        # Paths without cooperative stop support (parallel fits, chains):
        # a clean one-liner instead of a traceback.
        print("error: interrupted", file=sys.stderr)
        return 130
    except _CLI_ERRORS as exc:
        message = " ".join(str(exc).split())
        print(f"error: {type(exc).__name__}: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
