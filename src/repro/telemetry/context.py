"""Request-scoped context: the ``X-Request-Id`` contextvar.

The serving layer stamps every request with an id — accepted from the
client's ``X-Request-Id`` header when it is well-formed, generated
otherwise — and sets it here for the duration of the handler.  Everything
downstream reads it ambiently: structured log records
(:mod:`~repro.telemetry.logconfig` attaches it via a handler filter),
trace spans (:meth:`Tracer._record <repro.telemetry.tracing.Tracer>`
stamps it into span args), and the response envelope.  One grep (or one
Chrome-trace filter) by id reconstructs a request's full path.

A contextvar — not a thread-local — so the id also flows correctly into
any ``asyncio``/executor continuations a future handler might spawn;
within the stdlib threading server each handler thread simply owns its
own context.
"""

from __future__ import annotations

import contextvars
import re
import uuid
from collections.abc import Iterator
from contextlib import contextmanager

#: Longest client-supplied request id accepted verbatim.
MAX_REQUEST_ID_LENGTH = 128

#: Charset a client-supplied id must match to be trusted into logs,
#: traces, and response headers (no whitespace, quotes, or control chars).
_SAFE_ID = re.compile(r"[A-Za-z0-9._:-]{1,%d}$" % MAX_REQUEST_ID_LENGTH)

_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """A fresh 32-hex-char request id."""
    return uuid.uuid4().hex


def sanitize_request_id(value: object) -> str | None:
    """A client-supplied id when usable, else ``None`` (caller generates).

    Ids are propagated into log lines, trace args, and response headers,
    so anything outside a conservative charset (or overlong) is rejected
    rather than escaped — the caller falls back to a generated id and the
    client still gets it echoed back.
    """
    if not isinstance(value, str):
        return None
    value = value.strip()
    if not value or not _SAFE_ID.match(value):
        return None
    return value


def set_request_id(request_id: str | None) -> contextvars.Token:
    """Install ``request_id`` for the current context; returns a reset token."""
    return _REQUEST_ID.set(request_id)


def get_request_id() -> str | None:
    """The active request id, or ``None`` outside a request."""
    return _REQUEST_ID.get()


def reset_request_id(token: contextvars.Token) -> None:
    """Restore the id that was active before :func:`set_request_id`."""
    _REQUEST_ID.reset(token)


@contextmanager
def request_context(request_id: str | None = None) -> Iterator[str]:
    """Scope a request id over a ``with`` block (generated when omitted)."""
    rid = request_id or new_request_id()
    token = set_request_id(rid)
    try:
        yield rid
    finally:
        reset_request_id(token)
