"""``repro.telemetry``: zero-dependency observability for COLD training.

The layer has four pieces, all importable from this package root:

* **Metrics** — :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) with per-sweep JSONL emission to ``metrics.jsonl``;
* **Tracing** — ``trace.span("sweep", sweep=i)`` markers buffered by a
  :class:`Tracer` and exported as Chrome ``trace_event`` JSON for
  ``chrome://tracing``;
* **Logging** — module loggers under the ``repro.`` hierarchy,
  :func:`configure_logging` with plain/JSON formatters, and worker-process
  log forwarding over the pool's reply pipe;
* **Attribution** — a :func:`write_run_manifest` ``run.json`` stamped at
  fit start (config hash, seed, git describe, executor topology).

Everything is stdlib-only and off-by-default-cheap: with no
``metrics_out`` / ``trace_out`` configured the instrumentation in the
samplers amounts to an attribute check per sweep, and enabling it never
touches the RNG — telemetry-on and telemetry-off fits draw bit-identical
chains (enforced by the ``benchmarks/perf`` overhead gate).
"""

from . import tracing as trace
from .logconfig import (
    BufferingLogHandler,
    JsonFormatter,
    PlainFormatter,
    configure_logging,
    get_logger,
    parse_level,
    replay_records,
    reset_logging,
)
from .manifest import build_run_manifest, config_hash, git_describe, write_run_manifest
from .metrics import (
    TIMING_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    JsonlWriter,
    MetricsRegistry,
    TelemetryError,
    read_jsonl,
)
from .monitor import monitor, render_summary, summarize
from .session import NULL_SESSION, TelemetrySession
from .tracing import Tracer, get_tracer, set_tracer, span

__all__ = [
    "NULL_SESSION",
    "TIMING_BUCKETS",
    "BufferingLogHandler",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "JsonlWriter",
    "MetricsRegistry",
    "PlainFormatter",
    "TelemetryError",
    "TelemetrySession",
    "Tracer",
    "build_run_manifest",
    "config_hash",
    "configure_logging",
    "get_logger",
    "get_tracer",
    "git_describe",
    "monitor",
    "parse_level",
    "read_jsonl",
    "render_summary",
    "replay_records",
    "reset_logging",
    "set_tracer",
    "span",
    "summarize",
    "trace",
    "write_run_manifest",
]
