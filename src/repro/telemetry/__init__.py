"""``repro.telemetry``: zero-dependency observability for COLD training.

The layer has four pieces, all importable from this package root:

* **Metrics** — :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) with per-sweep JSONL emission to ``metrics.jsonl``;
* **Tracing** — ``trace.span("sweep", sweep=i)`` markers buffered by a
  :class:`Tracer` and exported as Chrome ``trace_event`` JSON for
  ``chrome://tracing``;
* **Logging** — module loggers under the ``repro.`` hierarchy,
  :func:`configure_logging` with plain/JSON formatters, and worker-process
  log forwarding over the pool's reply pipe;
* **Attribution** — a :func:`write_run_manifest` ``run.json`` stamped at
  fit start (config hash, seed, git describe, executor topology).

Everything is stdlib-only and off-by-default-cheap: with no
``metrics_out`` / ``trace_out`` configured the instrumentation in the
samplers amounts to an attribute check per sweep, and enabling it never
touches the RNG — telemetry-on and telemetry-off fits draw bit-identical
chains (enforced by the ``benchmarks/perf`` overhead gate).
"""

from . import tracing as trace
from .context import (
    get_request_id,
    new_request_id,
    request_context,
    reset_request_id,
    sanitize_request_id,
    set_request_id,
)
from .logconfig import (
    BufferingLogHandler,
    JsonFormatter,
    PlainFormatter,
    RequestIdFilter,
    configure_logging,
    get_logger,
    parse_level,
    replay_records,
    reset_logging,
)
from .manifest import build_run_manifest, config_hash, git_describe, write_run_manifest
from .metrics import (
    BUCKET_PRESETS,
    LATENCY_BUCKETS,
    STREAM_UPDATE_BUCKETS,
    TIMING_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    JsonlWriter,
    MetricsRegistry,
    TelemetryError,
    bucket_preset,
    format_series,
    read_jsonl,
)
from .monitor import (
    MONITOR_MODES,
    monitor,
    render_combined_summary,
    render_serving_summary,
    render_stream_summary,
    render_summary,
    summarize,
    summarize_combined,
    summarize_serving,
    summarize_stream,
)
from . import profiler as profiler
from .profiler import (
    PhaseProfiler,
    build_profile_report,
    compare_profiles,
    escape_phase,
    get_profiler,
    memory_gauges,
    parse_collapsed,
    render_collapsed,
    render_profile_report,
    set_profiler,
    unescape_phase,
    worker_utilization,
)
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    ParsedExposition,
    Sample,
    parse_prometheus_text,
    render_prometheus,
    wants_prometheus,
)
from .session import NULL_SESSION, TelemetrySession
from .slo import SLOConfig, SLOTracker
from .tracing import Tracer, get_tracer, set_tracer, span

__all__ = [
    "BUCKET_PRESETS",
    "LATENCY_BUCKETS",
    "MONITOR_MODES",
    "NULL_SESSION",
    "PROMETHEUS_CONTENT_TYPE",
    "STREAM_UPDATE_BUCKETS",
    "TIMING_BUCKETS",
    "BufferingLogHandler",
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "JsonFormatter",
    "JsonlWriter",
    "MetricsRegistry",
    "ParsedExposition",
    "PhaseProfiler",
    "PlainFormatter",
    "RequestIdFilter",
    "SLOConfig",
    "SLOTracker",
    "Sample",
    "TelemetryError",
    "TelemetrySession",
    "Tracer",
    "bucket_preset",
    "build_profile_report",
    "build_run_manifest",
    "compare_profiles",
    "config_hash",
    "configure_logging",
    "escape_phase",
    "format_series",
    "get_logger",
    "get_profiler",
    "get_request_id",
    "get_tracer",
    "git_describe",
    "memory_gauges",
    "monitor",
    "new_request_id",
    "parse_collapsed",
    "parse_level",
    "parse_prometheus_text",
    "profiler",
    "read_jsonl",
    "render_collapsed",
    "render_combined_summary",
    "render_profile_report",
    "render_prometheus",
    "render_serving_summary",
    "render_stream_summary",
    "render_summary",
    "replay_records",
    "request_context",
    "reset_logging",
    "reset_request_id",
    "sanitize_request_id",
    "set_profiler",
    "set_request_id",
    "set_tracer",
    "span",
    "summarize",
    "summarize_combined",
    "summarize_serving",
    "summarize_stream",
    "trace",
    "unescape_phase",
    "wants_prometheus",
    "worker_utilization",
    "write_run_manifest",
]
