"""Prometheus text exposition (format 0.0.4): render and parse.

:func:`render_prometheus` turns a :class:`~repro.telemetry.metrics.
MetricsRegistry` into the plain-text format every Prometheus-compatible
scraper understands — ``# TYPE`` metadata lines, escaped label values,
and cumulative ``_bucket``/``_sum``/``_count`` histogram series.  The
serving layer content-negotiates it on ``/metrics`` next to the existing
JSON snapshot.

:func:`parse_prometheus_text` is the minimal in-repo parser: enough to
validate an exposition end-to-end (the CI smoke and the chaos-scrape
tests use it) and to round-trip the escaping rules under property
testing.  It is deliberately strict — a malformed line raises
``ValueError`` with its line number rather than being skipped, because a
scraper that silently drops samples is worse than one that fails loudly.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)

#: The Content-Type a text-format scrape response must carry.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary metric name into the Prometheus charset.

    Invalid characters become ``_``; a leading digit gets an underscore
    prefix.  Registry names are already clean in practice — this is the
    guarantee that exposition output never emits an unparseable line.
    """
    name = _INVALID_NAME_CHARS.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def format_sample_value(value: float | None) -> str:
    """A sample value as Prometheus text: ``NaN``/``+Inf``/``-Inf`` literals."""
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(str(key))}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _histogram_lines(
    name: str, labels: dict[str, str], histogram: Histogram
) -> list[str]:
    """Cumulative ``_bucket`` series plus ``_sum`` and ``_count``."""
    lines = []
    counts = histogram.bucket_counts()
    cumulative = 0
    for bound, count in zip(histogram.bounds, counts):
        cumulative += count
        bucket_labels = {**labels, "le": f"{bound:g}"}
        lines.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
        )
    cumulative += counts[-1]
    lines.append(
        f"{name}_bucket{_format_labels({**labels, 'le': '+Inf'})} {cumulative}"
    )
    lines.append(
        f"{name}_sum{_format_labels(labels)} "
        f"{format_sample_value(histogram.sum)}"
    )
    lines.append(f"{name}_count{_format_labels(labels)} {histogram.count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    Counters and gauges render one sample per series; histograms render
    cumulative ``le``-labeled buckets the way native Prometheus
    histograms do, so ``histogram_quantile()`` works on the scrape
    unchanged.  Unset gauges render as ``NaN`` (explicitly absent data,
    not zero).
    """
    lines: list[str] = []
    for name, kind, series in registry.collect():
        pname = sanitize_metric_name(name)
        lines.append(f"# TYPE {pname} {kind}")
        for labels, metric in series:
            if isinstance(metric, Histogram):
                lines.extend(_histogram_lines(pname, labels, metric))
            elif isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{pname}{_format_labels(labels)} "
                    f"{format_sample_value(metric.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def wants_prometheus(accept: str | None) -> bool:
    """Content negotiation: does this Accept header ask for text format?

    ``application/json`` (and the default of no header) keeps the JSON
    snapshot; ``text/plain`` or any OpenMetrics media type selects the
    exposition format.
    """
    if not accept:
        return False
    accept = accept.lower()
    if "application/json" in accept:
        return False
    return "text/plain" in accept or "openmetrics" in accept


# -- the minimal parser ----------------------------------------------------


@dataclass(frozen=True)
class Sample:
    """One parsed exposition sample: ``name{labels} value``."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = math.nan

    def key(self) -> tuple:
        return (self.name, tuple(sorted(self.labels.items())))


@dataclass(frozen=True)
class ParsedExposition:
    """Samples plus ``# TYPE`` metadata from one scrape body."""

    samples: list[Sample]
    types: dict[str, str]

    def value(self, name: str, **labels: str) -> float | None:
        """The value of the sample matching ``name`` and ``labels`` exactly."""
        wanted = {key: str(val) for key, val in labels.items()}
        for sample in self.samples:
            if sample.name == name and sample.labels == wanted:
                return sample.value
        return None

    def series(self, name: str) -> list[Sample]:
        return [s for s in self.samples if s.name == name]


def _parse_labels(text: str, lineno: int) -> tuple[dict[str, str], str]:
    """Parse ``{a="x",b="y"}...`` honoring escapes; returns (labels, rest)."""
    labels: dict[str, str] = {}
    i = 1  # past "{"
    while True:
        if i >= len(text):
            raise ValueError(f"line {lineno}: unterminated label set")
        if text[i] == "}":
            return labels, text[i + 1 :]
        match = _LABEL_NAME_RE.match(text, i)
        if match is None:
            raise ValueError(f"line {lineno}: bad label name at {text[i:]!r}")
        label_name = match.group(0)
        i = match.end()
        if text[i : i + 2] != '="':
            raise ValueError(f"line {lineno}: expected '=\"' after {label_name}")
        i += 2
        out: list[str] = []
        while True:
            if i >= len(text):
                raise ValueError(f"line {lineno}: unterminated label value")
            char = text[i]
            if char == "\\":
                if i + 1 >= len(text):
                    raise ValueError(f"line {lineno}: dangling escape")
                out.append(_UNESCAPES.get(text[i + 1], "\\" + text[i + 1]))
                i += 2
            elif char == '"':
                i += 1
                break
            else:
                out.append(char)
                i += 1
        labels[label_name] = "".join(out)
        if i < len(text) and text[i] == ",":
            i += 1


def parse_prometheus_text(text: str) -> ParsedExposition:
    """Parse a text-format scrape body; raises ``ValueError`` when invalid.

    Returns every sample (histogram ``_bucket``/``_sum``/``_count``
    series appear under their suffixed names, as scraped) plus the
    declared ``# TYPE`` map.
    """
    samples: list[Sample] = []
    types: dict[str, str] = {}
    seen: set[tuple] = set()
    # split("\n"), not splitlines(): the format delimits samples with
    # newlines only, and splitlines() would also break on control
    # characters (\x1c-\x1e,  ...) that are legal inside an escaped
    # label value's surroundings.
    for lineno, line in enumerate(text.split("\n"), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _NAME_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad metric name in {line!r}")
        name = match.group(0)
        rest = line[match.end() :]
        labels: dict[str, str] = {}
        if rest.startswith("{"):
            labels, rest = _parse_labels(rest, lineno)
        rest = rest.strip()
        if not rest:
            raise ValueError(f"line {lineno}: missing sample value")
        value_text = rest.split()[0]
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}"
            ) from None
        sample = Sample(name=name, labels=labels, value=value)
        key = sample.key()
        if key in seen:
            raise ValueError(
                f"line {lineno}: duplicate series {name}{labels!r}"
            )
        seen.add(key)
        samples.append(sample)
    return ParsedExposition(samples=samples, types=types)
