"""One object tying a fit's telemetry together: registry + tracer + files.

A :class:`TelemetrySession` is created per fit from the configured output
paths (``metrics_out`` / ``trace_out``).  With neither set the session is
*disabled*: every call is a cheap no-op and the training loops pay only
an attribute check per sweep — the off-by-default-cheap contract the
telemetry overhead gate (``benchmarks/perf``) enforces.

Enabled, the session owns:

* a :class:`~repro.telemetry.metrics.MetricsRegistry` plus a
  :class:`~repro.telemetry.metrics.JsonlWriter` appending to
  ``metrics.jsonl``;
* a :class:`~repro.telemetry.tracing.Tracer`, installed process-wide for
  the duration of the ``with`` block so :func:`repro.telemetry.trace.span`
  markers anywhere in the package (fast kernels, engine, checkpointing)
  land in the same buffer, saved as Chrome ``trace_event`` JSON on exit;
* the run manifest (``run.json`` next to the metrics file) written on
  :meth:`begin` so every artefact is attributable to an exact config.

Telemetry never touches the sampler's RNG, so draws are bit-identical
with the session enabled or disabled (also enforced by the perf gate).
"""

from __future__ import annotations

import math
import time
from pathlib import Path

from . import logconfig, profiler, tracing
from .manifest import MANIFEST_NAME, write_run_manifest
from .metrics import JsonlWriter, MetricsRegistry

_log = logconfig.get_logger(__name__)


class TelemetrySession:
    """Per-fit telemetry bundle; use as a context manager around the fit.

    Parameters
    ----------
    metrics_path:
        Destination for JSONL metric records; ``None`` disables metric
        emission (the in-memory registry still works when ``trace_path``
        keeps the session enabled).
    trace_path:
        Destination for the Chrome trace JSON; ``None`` disables tracing.
    """

    def __init__(
        self,
        metrics_path: str | Path | None = None,
        trace_path: str | Path | None = None,
    ) -> None:
        self.metrics_path = None if metrics_path is None else Path(metrics_path)
        self.trace_path = None if trace_path is None else Path(trace_path)
        self.enabled = metrics_path is not None or trace_path is not None
        self.metrics = MetricsRegistry()
        self.tracer = tracing.Tracer() if trace_path is not None else None
        self._writer = (
            JsonlWriter(self.metrics_path) if metrics_path is not None else None
        )
        self._previous_tracer: tracing.Tracer | None = None
        self._started = 0.0
        self._closed = False

    @classmethod
    def create(
        cls,
        metrics_path: str | Path | None = None,
        trace_path: str | Path | None = None,
    ) -> "TelemetrySession":
        return cls(metrics_path=metrics_path, trace_path=trace_path)

    @classmethod
    def disabled(cls) -> "TelemetrySession":
        return cls()

    # -- lifecycle ---------------------------------------------------------

    def begin(
        self,
        config: dict,
        seed: int,
        executor: str = "simulated",
        num_nodes: int = 1,
        num_workers: int | None = None,
        **fields: object,
    ) -> None:
        """Write the run manifest and the ``fit_start`` record.

        ``config`` must be JSON-able; it is hashed into the manifest so a
        metrics file can always be traced back to its exact settings.
        """
        self._started = time.perf_counter()
        if not self.enabled:
            return
        manifest_dir = (
            self.metrics_path.parent
            if self.metrics_path is not None
            else self.trace_path.parent  # type: ignore[union-attr]
        )
        # Address the run.json explicitly: the directory may not exist yet
        # and may carry a suffix (e.g. a `model.ckpt/` checkpoint dir),
        # which would defeat write_run_manifest's dir-vs-file heuristic.
        manifest = write_run_manifest(
            manifest_dir / MANIFEST_NAME,
            config,
            seed=seed,
            executor=executor,
            num_nodes=num_nodes,
            num_workers=num_workers,
        )
        _log.info("telemetry enabled: manifest -> %s", manifest)
        self.emit(
            "fit_start",
            seed=seed,
            executor=executor,
            num_nodes=num_nodes,
            num_workers=num_workers,
            **fields,
        )

    def activate(self) -> "TelemetrySession":
        """Install the session's tracer process-wide (undone by :meth:`close`).

        Equivalent to entering the context manager; offered for call sites
        whose fit loop is too deeply nested for another ``with`` level.
        """
        return self.__enter__()

    def __enter__(self) -> "TelemetrySession":
        if self.tracer is not None:
            self._previous_tracer = tracing.set_tracer(self.tracer)
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Restore the tracer, save the trace file, close the writer."""
        if self._closed:
            return
        self._closed = True
        if self.tracer is not None:
            tracing.set_tracer(self._previous_tracer)
            saved = self.tracer.save(self.trace_path)
            _log.info("wrote trace -> %s", saved)
        if self._writer is not None:
            self._writer.close()

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> None:
        """Append one JSONL record (no-op without a metrics file)."""
        if self._writer is not None:
            self._writer.write(kind, **fields)

    def emit_snapshot(self, **fields: object) -> None:
        """Append the registry aggregate as a ``metrics`` record."""
        if self._writer is not None:
            self._writer.write("metrics", **fields, **self.metrics.snapshot())

    def set_gauges(self, **values: object) -> None:
        """Set several registry gauges at once, skipping ``None`` values.

        The convenience behind stride-gated quality streaming
        (:mod:`repro.diagnostics.quality`): its signals are optional per
        record — ``None`` means "not measured this sweep" and leaves the
        gauge at its previous value.
        """
        for name, value in values.items():
            if value is not None:
                self.metrics.gauge(name).set(float(value))  # type: ignore[arg-type]

    def end(self, **fields: object) -> None:
        """Emit the terminal ``fit_end`` record (monitor's stop signal)."""
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._started if self._started else None
        self.emit_snapshot()
        self.emit("fit_end", elapsed_seconds=elapsed, **fields)

    # -- convergence-monitor integration -----------------------------------

    def likelihood_sink(self, num_tokens: int):
        """A ``ConvergenceMonitor.attach``-able callback feeding the registry.

        Sets the ``log_likelihood`` gauge and a ``perplexity`` gauge
        (``exp(-ll / num_tokens)`` — the collapsed-joint proxy; the joint
        includes the non-word blocks, so treat it as a trend signal, not a
        held-out perplexity).  The monitor's own evaluation is reused —
        the likelihood is never computed twice.
        """
        log_likelihood = self.metrics.gauge("log_likelihood")
        perplexity = self.metrics.gauge("perplexity")
        tokens = max(int(num_tokens), 1)

        def sink(value: float) -> None:
            log_likelihood.set(value)
            try:
                perplexity.set(math.exp(-value / tokens))
            except OverflowError:
                perplexity.set(math.inf)

        return sink

    # -- worker-process integration -----------------------------------------

    def worker_config(self) -> dict:
        """The picklable knobs a worker process needs to mirror telemetry.

        ``profile`` rides along independently of ``enabled``: the phase
        profiler is a process-wide global (see
        :mod:`repro.telemetry.profiler`), active during ``cold profile``
        runs that may not configure metrics/trace files at all.
        """
        import logging

        root = logconfig.get_logger(logconfig.ROOT_LOGGER_NAME)
        level = root.getEffectiveLevel()
        return {
            "enabled": self.enabled,
            "trace": self.tracer is not None,
            "profile": profiler.get_profiler() is not None,
            "log_level": level if level != logging.NOTSET else logging.WARNING,
        }

    def absorb_worker_payload(self, payload: dict) -> None:
        """Fold a worker reply's logs, spans and phase profile into this
        session (the profile goes to the process-wide profiler, prefixed
        ``worker`` so concurrent shard time stays distinguishable from
        parent wall time)."""
        records = payload.get("logs")
        if records:
            logconfig.replay_records(records)
        spans = payload.get("spans")
        if spans and self.tracer is not None:
            self.tracer.extend(spans)
        profile = payload.get("profile")
        if profile:
            active = profiler.get_profiler()
            if active is not None:
                active.absorb(profile, prefix="worker")


#: Shared disabled session for call sites that want a never-None default.
NULL_SESSION = TelemetrySession.disabled()
