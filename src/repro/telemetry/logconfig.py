"""Structured logging for the ``repro`` package.

Every module logs through ``logging.getLogger(__name__)`` (all names live
under the ``repro.`` hierarchy); :func:`configure_logging` attaches one
stream handler to the ``repro`` root with either a human ``plain``
formatter or a machine-parseable ``json`` formatter.  Calling it again
reconfigures in place (the previous handler is replaced, never stacked),
so the CLI, tests, and notebooks can all call it freely.

Worker processes cannot share the parent's handlers, so they buffer
records with :class:`BufferingLogHandler` and ship them home serialised
(:func:`serialize_record`) over the pool's existing reply pipe; the
parent replays them with :func:`replay_records` through its own logger
hierarchy, tagged with the worker's pid so interleaved output stays
attributable.
"""

from __future__ import annotations

import json
import logging
import sys

from .context import get_request_id

#: The package root logger every module logger descends from.
ROOT_LOGGER_NAME = "repro"

#: Attribute marking handlers installed by configure_logging.
_MANAGED_FLAG = "_repro_telemetry_managed"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


class RequestIdFilter(logging.Filter):
    """Stamp the ambient request id onto every record passing the handler.

    Attached to the managed handler by :func:`configure_logging`, so a
    serving request's log lines carry its ``X-Request-Id`` without any
    call-site changes — grep the id and get the request's whole story.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "request_id"):
            record.request_id = get_request_id()
        return True


class PlainFormatter(logging.Formatter):
    """``HH:MM:SS.mmm LEVEL logger: message`` — terse, grep-friendly.

    Records carrying a request id get a trailing ``[rid=...]`` marker so
    plain-mode logs stay greppable by request.
    """

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        request_id = getattr(record, "request_id", None)
        if request_id:
            line = f"{line} [rid={request_id}]"
        return line


class JsonFormatter(logging.Formatter):
    """One JSON object per line, mirroring the metrics.jsonl record shape."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
        }
        worker = getattr(record, "worker_pid", None)
        if worker is not None:
            payload["worker_pid"] = worker
        request_id = getattr(record, "request_id", None)
        if request_id:
            payload["request_id"] = request_id
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent convenience)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def parse_level(level: int | str) -> int:
    """Accept logging ints or case-insensitive names ('info', 'DEBUG')."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.strip().lower()]
    except (KeyError, AttributeError):
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def configure_logging(
    level: int | str = "info",
    fmt: str = "plain",
    stream=None,
) -> logging.Logger:
    """Install (or reconfigure) the package log handler; returns the root.

    Parameters
    ----------
    level:
        Threshold for the ``repro`` hierarchy — an int or a name.
    fmt:
        ``"plain"`` for human-readable lines, ``"json"`` for one JSON
        object per line.
    stream:
        Destination stream; defaults to ``sys.stderr`` so structured logs
        never mix with CLI stdout output.
    """
    if fmt not in ("plain", "json"):
        raise ValueError(f"fmt must be 'plain' or 'json', got {fmt!r}")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(parse_level(level))
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED_FLAG, False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json" else PlainFormatter())
    handler.addFilter(RequestIdFilter())
    setattr(handler, _MANAGED_FLAG, True)
    root.addHandler(handler)
    # Keep records inside the configured handler rather than bubbling to
    # the (possibly unconfigured) global root, which double-prints.
    root.propagate = False
    return root


def reset_logging() -> None:
    """Remove managed handlers and restore propagation (test hygiene)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED_FLAG, False):
            root.removeHandler(handler)
            handler.close()
    root.propagate = True
    root.setLevel(logging.NOTSET)


# -- worker-process log forwarding ----------------------------------------


class BufferingLogHandler(logging.Handler):
    """Collects records in memory for shipment over a pipe.

    Workers attach one of these to the ``repro`` root; after each shard
    run they :meth:`drain` the buffer into the reply payload.  Records are
    reduced to plain dicts immediately (``record.getMessage()`` resolves
    %-args) so nothing unpicklable ever crosses the pipe.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        super().__init__()
        self.capacity = capacity
        self.dropped = 0
        self._records: list[dict] = []

    def emit(self, record: logging.LogRecord) -> None:
        if len(self._records) >= self.capacity:
            self.dropped += 1
            return
        self._records.append(serialize_record(record))

    def drain(self) -> list[dict]:
        records, self._records = self._records, []
        if self.dropped:
            records.append(
                {
                    "name": ROOT_LOGGER_NAME + ".telemetry",
                    "levelno": logging.WARNING,
                    "message": f"worker dropped {self.dropped} buffered "
                    "log records (buffer full)",
                    "created": 0.0,
                    "process": None,
                }
            )
            self.dropped = 0
        return records


def serialize_record(record: logging.LogRecord) -> dict:
    """The picklable subset of a log record the parent needs to replay it."""
    return {
        "name": record.name,
        "levelno": record.levelno,
        "message": record.getMessage(),
        "created": record.created,
        "process": record.process,
    }


def replay_records(records: list[dict]) -> None:
    """Re-emit serialised worker records through the parent's loggers.

    Each record goes through the named logger's normal ``handle`` path —
    level filters and the configured handler apply exactly as for local
    records — with ``worker_pid`` attached for the JSON formatter.
    """
    for payload in records:
        logger = logging.getLogger(str(payload.get("name", ROOT_LOGGER_NAME)))
        level = int(payload.get("levelno", logging.INFO))
        if not logger.isEnabledFor(level):
            continue
        record = logger.makeRecord(
            logger.name,
            level,
            fn="(worker)",
            lno=0,
            msg=str(payload.get("message", "")),
            args=(),
            exc_info=None,
        )
        created = payload.get("created")
        if created:
            record.created = float(created)
        record.worker_pid = payload.get("process")
        logger.handle(record)
