"""Live run monitoring: tail a ``metrics.jsonl`` and render progress.

``cold monitor RUN/metrics.jsonl`` reads the per-sweep records the
training loop emits and prints sweep rate, the log-likelihood trend, and
an ETA; ``--follow`` keeps polling the file until the run's terminal
``fit_end`` record appears.  The analysis functions are pure (records in,
summary dict / text out) so tests and notebooks can reuse them without a
terminal.

Three further modes tail the production paths:

* ``mode="serving"`` reads the periodic ``serving`` snapshots a
  :class:`~repro.serving.server.ColdHTTPServer` writes when configured
  with ``metrics_out`` — qps and p50/p99 from counter/histogram deltas,
  shed/breaker state, model staleness, and SLO burn;
* ``mode="stream"`` reads an :class:`~repro.streaming.trainer.
  OnlineTrainer`'s ``update``/``publish`` records — update rate, publish
  cadence, and event-to-publish freshness;
* ``mode="combined"`` renders both from one file (``cold stream
  --serve --metrics-out`` interleaves trainer and server records).
"""

from __future__ import annotations

import math
import time
from pathlib import Path

from .metrics import read_jsonl

#: Record kinds produced by the training loops.
SWEEP_KIND = "sweep"
END_KIND = "fit_end"

#: Record kinds produced by the serving snapshotter and the online trainer.
SERVING_KIND = "serving"
SERVING_END_KIND = "serving_end"
UPDATE_KIND = "update"
PUBLISH_KIND = "publish"


def sweep_records(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("kind") == SWEEP_KIND]


def trailing_segment(sweeps: list[dict]) -> list[dict]:
    """The sweep records of the latest fit segment in a metrics file.

    A resumed fit (``cold train --resume``) appends to the same
    ``metrics.jsonl`` it was writing before the crash, restarting sweep
    numbering at the checkpoint — so the file can hold several
    overlapping sweep sequences separated by arbitrary downtime.  Rate,
    trend, and ETA are only meaningful within the newest sequence; a
    window that straddles the restart counts the crash's downtime as
    sweep time and mixes duplicate sweep numbers into the trend.  A new
    segment starts wherever the sweep number fails to increase.
    """
    start = 0
    previous: int | None = None
    for index, record in enumerate(sweeps):
        sweep = record.get("sweep")
        if sweep is None:
            continue
        if previous is not None and int(sweep) <= previous:
            start = index
        previous = int(sweep)
    return sweeps[start:]


def run_finished(records: list[dict]) -> bool:
    return any(r.get("kind") == END_KIND for r in records)


def summarize(records: list[dict], window: int = 20) -> dict:
    """Progress summary over the last ``window`` sweep records.

    Returns a JSON-able dict: last/total sweeps, sweeps/s over the recent
    window (wall-clock, from record timestamps), mean sweep seconds, the
    latest log-likelihood with its delta over the window, perplexity, and
    the ETA in seconds (``None`` until a rate is measurable or when the
    total is unknown).

    Only the newest fit segment is analysed (see
    :func:`trailing_segment`), so a resumed run's rate and ETA reflect
    the live fit rather than averaging across the crash.
    """
    sweeps = trailing_segment(sweep_records(records))
    if not sweeps:
        # ``records`` distinguishes a just-created/empty metrics file from
        # one whose run has started but not completed a sweep.
        return {
            "sweeps": 0,
            "total_sweeps": None,
            "finished": run_finished(records),
            "records": len(records),
        }
    recent = sweeps[-max(window, 2):]
    last = sweeps[-1]
    total = last.get("total_sweeps")
    rate = None
    if len(recent) >= 2:
        elapsed = float(recent[-1]["ts"]) - float(recent[0]["ts"])
        if elapsed > 0:
            rate = (len(recent) - 1) / elapsed
    eta = None
    if rate and total is not None:
        remaining = int(total) - int(last.get("sweep", 0))
        eta = max(remaining, 0) / rate
    likelihoods = [
        (r.get("sweep"), r["log_likelihood"])
        for r in recent
        if r.get("log_likelihood") is not None
    ]
    ll = likelihoods[-1][1] if likelihoods else None
    ll_delta = (
        likelihoods[-1][1] - likelihoods[0][1] if len(likelihoods) >= 2 else None
    )
    wall = [
        float(r["wall_seconds"]) for r in recent if r.get("wall_seconds") is not None
    ]
    busy = [
        float(r["busy_fraction"]) for r in recent
        if r.get("busy_fraction") is not None
    ]
    straggler = [
        float(r["straggler_ratio"]) for r in recent
        if r.get("straggler_ratio") is not None
    ]
    return {
        "sweeps": int(last.get("sweep", len(sweeps))),
        "total_sweeps": None if total is None else int(total),
        "finished": run_finished(records),
        "sweeps_per_second": rate,
        "mean_sweep_seconds": sum(wall) / len(wall) if wall else None,
        "log_likelihood": ll,
        "log_likelihood_delta": ll_delta,
        "perplexity": last.get("perplexity"),
        "eta_seconds": eta,
        # Parallel-fit utilization gauges (see repro.telemetry.profiler);
        # None for serial fits, whose records carry neither field.
        "worker_busy_fraction": sum(busy) / len(busy) if busy else None,
        "straggler_ratio": sum(straggler) / len(straggler) if straggler else None,
    }


def _fmt_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_summary(summary: dict) -> str:
    """One status line for the terminal (stable field order for tests)."""
    if not summary.get("sweeps"):
        if not summary.get("records"):
            return "no records yet (empty metrics file — run starting up?)"
        return "no sweep records yet"
    total = summary.get("total_sweeps")
    progress = f"sweep {summary['sweeps']}"
    if total:
        percent = 100.0 * summary["sweeps"] / total
        progress += f"/{total} ({percent:.0f}%)"
    parts = [progress]
    rate = summary.get("sweeps_per_second")
    if rate:
        parts.append(f"{rate:.2f} sweeps/s")
    ll = summary.get("log_likelihood")
    if ll is not None:
        trend = ""
        delta = summary.get("log_likelihood_delta")
        if delta is not None:
            arrow = "+" if delta >= 0 else ""
            trend = f" ({arrow}{delta:.1f} over window)"
        parts.append(f"loglik {ll:.1f}{trend}")
    perplexity = summary.get("perplexity")
    if perplexity is not None:
        parts.append(f"perplexity {perplexity:.1f}")
    busy = summary.get("worker_busy_fraction")
    if busy is not None:
        workers = f"workers {busy:.0%} busy"
        straggler = summary.get("straggler_ratio")
        if straggler is not None:
            workers += f" (straggler {straggler:.2f}x)"
        parts.append(workers)
    if summary.get("finished"):
        parts.append("run finished")
    elif summary.get("eta_seconds") is not None:
        parts.append(f"ETA {_fmt_duration(summary['eta_seconds'])}")
    return " | ".join(parts)


# -- serving snapshots -----------------------------------------------------


def serving_records(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("kind") == SERVING_KIND]


def serving_finished(records: list[dict]) -> bool:
    return any(r.get("kind") == SERVING_END_KIND for r in records)


def _series_total(counters: dict, name: str) -> float:
    """Sum a counter across its labeled series (and any unlabeled twin)."""
    total = 0.0
    prefix = name + "{"
    for key, value in counters.items():
        if key == name or key.startswith(prefix):
            total += value
    return total


def _bucket_bounds(buckets: dict) -> list[float]:
    bounds = []
    for key in buckets:
        if key == "le_inf":
            bounds.append(math.inf)
        elif key.startswith("le_"):
            bounds.append(float(key[3:]))
    return sorted(bounds)


def _merged_latency_delta(first: dict, last: dict, name: str) -> tuple[
    list[float], list[float]
]:
    """Per-bucket observation deltas of ``name``'s series between snapshots.

    Series are merged (summed per bucket) across labels, so the quantiles
    describe overall traffic rather than one endpoint.
    """
    bounds: list[float] = []
    counts: dict[float, float] = {}
    prefix = name + "{"
    for key, histogram in last.get("histograms", {}).items():
        if key != name and not key.startswith(prefix):
            continue
        buckets = histogram.get("buckets", {})
        previous = (
            first.get("histograms", {}).get(key, {}).get("buckets", {})
        )
        if not bounds:
            bounds = _bucket_bounds(buckets)
        for bucket_key, count in buckets.items():
            if bucket_key == "le_inf":
                bound = math.inf
            elif bucket_key.startswith("le_"):
                bound = float(bucket_key[3:])
            else:
                continue
            delta = count - previous.get(bucket_key, 0)
            counts[bound] = counts.get(bound, 0.0) + max(delta, 0)
    return bounds, [counts.get(bound, 0.0) for bound in bounds]


def _histogram_quantile(
    bounds: list[float], counts: list[float], q: float
) -> float | None:
    """Linear-interpolated quantile from per-bucket counts (Prometheus-style)."""
    total = sum(counts)
    if total <= 0:
        return None
    target = q * total
    cumulative = 0.0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        if count and cumulative + count >= target:
            if math.isinf(bound):
                return lower
            fraction = (target - cumulative) / count
            return lower + (bound - lower) * fraction
        cumulative += count
        if not math.isinf(bound):
            lower = bound
    return lower


def summarize_serving(records: list[dict], window: int = 20) -> dict:
    """Serving health over the last ``window`` snapshot records.

    Rates come from counter deltas between the oldest and newest snapshot
    in the window (not lifetime averages), quantiles from the latency
    histogram's per-bucket deltas over the same span, and point-in-time
    state (breaker, staleness, SLO burn) from the newest snapshot.
    """
    snapshots = serving_records(records)
    if not snapshots:
        return {"snapshots": 0, "finished": serving_finished(records)}
    recent = snapshots[-max(window, 2):]
    first, last = recent[0], recent[-1]
    elapsed = float(last.get("ts", 0)) - float(first.get("ts", 0))
    counters = last.get("counters", {})
    requests = _series_total(counters, "serving_requests_total")
    responses = _series_total(counters, "serving_responses_total")
    qps = None
    if elapsed > 0 and len(recent) >= 2:
        delta = requests - _series_total(
            first.get("counters", {}), "serving_requests_total"
        )
        qps = max(delta, 0) / elapsed
    bounds, deltas = _merged_latency_delta(
        first, last, "serving_latency_seconds"
    )
    gauges = last.get("gauges", {})
    slo = last.get("slo", {})
    return {
        "snapshots": len(snapshots),
        "finished": serving_finished(records),
        "requests_total": requests,
        "responses_total": responses,
        "qps": qps,
        "p50_seconds": _histogram_quantile(bounds, deltas, 0.50),
        "p99_seconds": _histogram_quantile(bounds, deltas, 0.99),
        "shed_total": _series_total(counters, "serving_shed_total"),
        "timeouts_total": _series_total(counters, "serving_timeouts_total"),
        "breaker": last.get("breaker"),
        "draining": bool(last.get("draining")),
        "generation": last.get("generation"),
        "inflight": gauges.get("serving_inflight"),
        "staleness_seconds": gauges.get("model_staleness_seconds"),
        "event_to_servable_seconds": gauges.get("event_to_servable_seconds"),
        "slo_availability": (slo.get("window") or {}).get("availability"),
        "slo_fast_burn_rate": slo.get("fast_burn_rate"),
    }


def render_serving_summary(summary: dict) -> str:
    """One serving status line (stable field order for tests)."""
    if not summary.get("snapshots"):
        return "no serving snapshots yet"
    parts = [f"gen {summary.get('generation', '?')}"]
    qps = summary.get("qps")
    if qps is not None:
        parts.append(f"{qps:.1f} req/s")
    p50, p99 = summary.get("p50_seconds"), summary.get("p99_seconds")
    if p50 is not None and p99 is not None:
        parts.append(f"p50 {p50 * 1e3:.1f}ms p99 {p99 * 1e3:.1f}ms")
    parts.append(f"shed {summary.get('shed_total', 0):.0f}")
    breaker = summary.get("breaker")
    if breaker:
        parts.append(f"breaker {breaker}")
    staleness = summary.get("staleness_seconds")
    if staleness is not None:
        parts.append(f"staleness {staleness:.1f}s")
    availability = summary.get("slo_availability")
    if availability is not None:
        burn = summary.get("slo_fast_burn_rate")
        slo = f"SLO {availability * 100:.2f}%"
        if burn is not None:
            slo += f" burn {burn:.1f}x"
        parts.append(slo)
    if summary.get("draining"):
        parts.append("draining")
    if summary.get("finished"):
        parts.append("server stopped")
    return " | ".join(parts)


# -- streaming updates ------------------------------------------------------


def summarize_stream(records: list[dict], window: int = 20) -> dict:
    """Streaming-trainer progress: update rate, publish cadence, freshness."""
    updates = [r for r in records if r.get("kind") == UPDATE_KIND]
    publishes = [r for r in records if r.get("kind") == PUBLISH_KIND]
    finished = run_finished(records)
    if not updates and not publishes:
        return {"updates": 0, "publishes": 0, "finished": finished}
    recent = updates[-max(window, 2):]
    rate = None
    if len(recent) >= 2:
        elapsed = float(recent[-1]["ts"]) - float(recent[0]["ts"])
        if elapsed > 0:
            rate = (len(recent) - 1) / elapsed
    seconds = [
        float(r["seconds"]) for r in recent if r.get("seconds") is not None
    ]
    likelihoods = [
        r["log_likelihood"]
        for r in recent
        if r.get("log_likelihood") is not None
    ]
    cadence = None
    recent_publishes = publishes[-max(window, 2):]
    if len(recent_publishes) >= 2:
        span = float(recent_publishes[-1]["ts"]) - float(
            recent_publishes[0]["ts"]
        )
        if span > 0:
            cadence = span / (len(recent_publishes) - 1)
    last_publish = publishes[-1] if publishes else None
    last_ts = float(records[-1].get("ts", 0)) if records else 0.0
    return {
        "updates": (
            int(updates[-1].get("update", len(updates))) if updates else 0
        ),
        "publishes": len(publishes),
        "finished": finished,
        "updates_per_second": rate,
        "mean_update_seconds": sum(seconds) / len(seconds) if seconds else None,
        "log_likelihood": likelihoods[-1] if likelihoods else None,
        "publish_cadence_seconds": cadence,
        "last_publish_generation": (
            last_publish.get("generation") if last_publish else None
        ),
        "last_publish_age_seconds": (
            max(last_ts - float(last_publish["ts"]), 0.0)
            if last_publish
            else None
        ),
        "event_to_publish_seconds": (
            last_publish.get("event_to_publish_seconds")
            if last_publish
            else None
        ),
    }


def render_stream_summary(summary: dict) -> str:
    """One streaming status line (stable field order for tests)."""
    if not summary.get("updates") and not summary.get("publishes"):
        return "no stream records yet"
    parts = [f"update {summary['updates']}"]
    rate = summary.get("updates_per_second")
    if rate:
        parts.append(f"{rate:.2f} updates/s")
    ll = summary.get("log_likelihood")
    if ll is not None:
        parts.append(f"loglik {ll:.1f}")
    generation = summary.get("last_publish_generation")
    if generation is not None:
        publish = f"published gen {generation}"
        age = summary.get("last_publish_age_seconds")
        if age is not None:
            publish += f" ({_fmt_duration(age)} ago)"
        parts.append(publish)
    cadence = summary.get("publish_cadence_seconds")
    if cadence is not None:
        parts.append(f"cadence {cadence:.1f}s")
    freshness = summary.get("event_to_publish_seconds")
    if freshness is not None:
        parts.append(f"event->publish {freshness:.2f}s")
    if summary.get("finished"):
        parts.append("stream finished")
    return " | ".join(parts)


# -- combined view ----------------------------------------------------------


def summarize_combined(records: list[dict], window: int = 20) -> dict:
    """Stream and serving summaries of one interleaved metrics file.

    ``finished`` requires the trainer's ``fit_end`` *and* — when serving
    snapshots are present at all — the server's ``serving_end``, so a
    followed ``cold stream --serve`` dashboard survives until both halves
    shut down.
    """
    stream = summarize_stream(records, window=window)
    serving = summarize_serving(records, window=window)
    finished = stream["finished"] and (
        not serving.get("snapshots") or serving["finished"]
    )
    return {"stream": stream, "serving": serving, "finished": finished}


def render_combined_summary(summary: dict) -> str:
    return (
        f"stream: {render_stream_summary(summary['stream'])}\n"
        f"serve:  {render_serving_summary(summary['serving'])}"
    )


#: mode -> (summarize, render) used by :func:`monitor` and the CLI.
MONITOR_MODES = {
    "train": (summarize, render_summary),
    "serving": (summarize_serving, render_serving_summary),
    "stream": (summarize_stream, render_stream_summary),
    "combined": (summarize_combined, render_combined_summary),
}


def monitor(
    path: str | Path,
    follow: bool = False,
    interval: float = 2.0,
    window: int = 20,
    max_updates: int | None = None,
    out=None,
    mode: str = "train",
) -> dict:
    """Print progress for ``path``; returns the final summary dict.

    One-shot by default; with ``follow`` it polls every ``interval``
    seconds until the run emits its terminal record — ``fit_end`` for
    train/stream modes, ``serving_end`` for serving mode, both for
    combined — or ``max_updates`` render cycles elapse (the testing/cron
    escape hatch).  ``out`` is a ``print``-like callable, defaulting to
    ``print``.
    """
    try:
        summarizer, renderer = MONITOR_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown monitor mode {mode!r}; choose from "
            f"{sorted(MONITOR_MODES)}"
        ) from None
    emit = print if out is None else out
    path = Path(path)
    updates = 0
    summary: dict = {}
    while True:
        records = read_jsonl(path)
        summary = summarizer(records, window=window)
        emit(renderer(summary))
        updates += 1
        if not follow or summary.get("finished"):
            break
        if max_updates is not None and updates >= max_updates:
            break
        time.sleep(interval)
    return summary
