"""Live run monitoring: tail a ``metrics.jsonl`` and render progress.

``cold monitor RUN/metrics.jsonl`` reads the per-sweep records the
training loop emits and prints sweep rate, the log-likelihood trend, and
an ETA; ``--follow`` keeps polling the file until the run's terminal
``fit_end`` record appears.  The analysis functions are pure (records in,
summary dict / text out) so tests and notebooks can reuse them without a
terminal.
"""

from __future__ import annotations

import time
from pathlib import Path

from .metrics import read_jsonl

#: Record kinds produced by the training loops.
SWEEP_KIND = "sweep"
END_KIND = "fit_end"


def sweep_records(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("kind") == SWEEP_KIND]


def trailing_segment(sweeps: list[dict]) -> list[dict]:
    """The sweep records of the latest fit segment in a metrics file.

    A resumed fit (``cold train --resume``) appends to the same
    ``metrics.jsonl`` it was writing before the crash, restarting sweep
    numbering at the checkpoint — so the file can hold several
    overlapping sweep sequences separated by arbitrary downtime.  Rate,
    trend, and ETA are only meaningful within the newest sequence; a
    window that straddles the restart counts the crash's downtime as
    sweep time and mixes duplicate sweep numbers into the trend.  A new
    segment starts wherever the sweep number fails to increase.
    """
    start = 0
    previous: int | None = None
    for index, record in enumerate(sweeps):
        sweep = record.get("sweep")
        if sweep is None:
            continue
        if previous is not None and int(sweep) <= previous:
            start = index
        previous = int(sweep)
    return sweeps[start:]


def run_finished(records: list[dict]) -> bool:
    return any(r.get("kind") == END_KIND for r in records)


def summarize(records: list[dict], window: int = 20) -> dict:
    """Progress summary over the last ``window`` sweep records.

    Returns a JSON-able dict: last/total sweeps, sweeps/s over the recent
    window (wall-clock, from record timestamps), mean sweep seconds, the
    latest log-likelihood with its delta over the window, perplexity, and
    the ETA in seconds (``None`` until a rate is measurable or when the
    total is unknown).

    Only the newest fit segment is analysed (see
    :func:`trailing_segment`), so a resumed run's rate and ETA reflect
    the live fit rather than averaging across the crash.
    """
    sweeps = trailing_segment(sweep_records(records))
    if not sweeps:
        return {"sweeps": 0, "total_sweeps": None, "finished": run_finished(records)}
    recent = sweeps[-max(window, 2):]
    last = sweeps[-1]
    total = last.get("total_sweeps")
    rate = None
    if len(recent) >= 2:
        elapsed = float(recent[-1]["ts"]) - float(recent[0]["ts"])
        if elapsed > 0:
            rate = (len(recent) - 1) / elapsed
    eta = None
    if rate and total is not None:
        remaining = int(total) - int(last.get("sweep", 0))
        eta = max(remaining, 0) / rate
    likelihoods = [
        (r.get("sweep"), r["log_likelihood"])
        for r in recent
        if r.get("log_likelihood") is not None
    ]
    ll = likelihoods[-1][1] if likelihoods else None
    ll_delta = (
        likelihoods[-1][1] - likelihoods[0][1] if len(likelihoods) >= 2 else None
    )
    wall = [
        float(r["wall_seconds"]) for r in recent if r.get("wall_seconds") is not None
    ]
    return {
        "sweeps": int(last.get("sweep", len(sweeps))),
        "total_sweeps": None if total is None else int(total),
        "finished": run_finished(records),
        "sweeps_per_second": rate,
        "mean_sweep_seconds": sum(wall) / len(wall) if wall else None,
        "log_likelihood": ll,
        "log_likelihood_delta": ll_delta,
        "perplexity": last.get("perplexity"),
        "eta_seconds": eta,
    }


def _fmt_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_summary(summary: dict) -> str:
    """One status line for the terminal (stable field order for tests)."""
    if not summary.get("sweeps"):
        return "no sweep records yet"
    total = summary.get("total_sweeps")
    progress = f"sweep {summary['sweeps']}"
    if total:
        percent = 100.0 * summary["sweeps"] / total
        progress += f"/{total} ({percent:.0f}%)"
    parts = [progress]
    rate = summary.get("sweeps_per_second")
    if rate:
        parts.append(f"{rate:.2f} sweeps/s")
    ll = summary.get("log_likelihood")
    if ll is not None:
        trend = ""
        delta = summary.get("log_likelihood_delta")
        if delta is not None:
            arrow = "+" if delta >= 0 else ""
            trend = f" ({arrow}{delta:.1f} over window)"
        parts.append(f"loglik {ll:.1f}{trend}")
    perplexity = summary.get("perplexity")
    if perplexity is not None:
        parts.append(f"perplexity {perplexity:.1f}")
    if summary.get("finished"):
        parts.append("run finished")
    elif summary.get("eta_seconds") is not None:
        parts.append(f"ETA {_fmt_duration(summary['eta_seconds'])}")
    return " | ".join(parts)


def monitor(
    path: str | Path,
    follow: bool = False,
    interval: float = 2.0,
    window: int = 20,
    max_updates: int | None = None,
    out=None,
) -> dict:
    """Print progress for ``path``; returns the final summary dict.

    One-shot by default; with ``follow`` it polls every ``interval``
    seconds until the run emits ``fit_end`` (or ``max_updates`` render
    cycles elapse — the testing/cron escape hatch).  ``out`` is a
    ``print``-like callable, defaulting to ``print``.
    """
    emit = print if out is None else out
    path = Path(path)
    updates = 0
    summary: dict = {}
    while True:
        records = read_jsonl(path)
        summary = summarize(records, window=window)
        emit(render_summary(summary))
        updates += 1
        if not follow or summary.get("finished"):
            break
        if max_updates is not None and updates >= max_updates:
            break
        time.sleep(interval)
    return summary
