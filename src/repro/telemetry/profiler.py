"""Phase profiler for the training hot path.

``repro.telemetry`` can already tell you *that* a sweep took 0.8s; this
module answers *where it went*.  A :class:`PhaseProfiler` accumulates
inclusive wall seconds under hierarchical phase paths (tuples of names,
e.g. ``("sweep", "posts", "draw")``) and renders them as a per-phase
attribution table or as collapsed-stack lines any flamegraph tool
understands.

The activation pattern mirrors :mod:`repro.telemetry.tracing`: a module
global set by :func:`set_profiler`, a shared no-op context manager when
profiling is off, so the dark path costs one global read.  Two further
contracts matter more here than anywhere else in the telemetry layer:

* **never touch the RNG** — phases only read ``time.perf_counter``, so a
  profiled fit draws a chain bit-identical to a dark fit (enforced by
  ``benchmarks/perf/test_profiler_overhead.py``);
* **stay out of the inner loop** — the fastgibbs kernels accumulate phase
  seconds into local floats and flush once per sweep via :meth:`add`;
  the context-manager form is for per-superstep granularity (cache
  refresh, merge, dispatch), not per-document work.

Worker processes run their own profiler and ship :meth:`drain` output
back over the reply pipe; the parent folds it in with :meth:`absorb`
under a ``worker`` prefix, so concurrent worker time never masquerades
as parent wall time in the attribution math (see
:func:`build_profile_report`).
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator

__all__ = [
    "CONCURRENT_ROOTS",
    "PhaseProfiler",
    "build_profile_report",
    "compare_profiles",
    "escape_phase",
    "get_profiler",
    "memory_gauges",
    "parse_collapsed",
    "phase",
    "render_collapsed",
    "render_profile_report",
    "set_profiler",
    "unescape_phase",
    "worker_utilization",
]

PhasePath = tuple[str, ...]

#: Top-level phase trees whose seconds ran *concurrently* with the parent
#: (worker processes overlap the parent's ``dispatch`` window), so they are
#: excluded from the wall-time attribution sum and reported separately.
CONCURRENT_ROOTS: tuple[str, ...] = ("worker",)


class PhaseProfiler:
    """Accumulates inclusive wall seconds per hierarchical phase path.

    Single-threaded by design on the recording side: each process
    (parent or worker) owns one profiler, and the hot loops flush into it
    from one thread.  The exception is :meth:`absorb`, which the parent's
    engine calls from concurrent dispatch threads as worker replies
    arrive — it takes a lock; the hot-path :meth:`add` stays lock-free.
    The nesting stack belongs to :meth:`phase`; :meth:`add` takes
    absolute or stack-relative paths and is what the inlined kernels use.
    """

    def __init__(self) -> None:
        self._phases: dict[PhasePath, list[float]] = {}
        self._stack: list[str] = []
        self._absorb_lock = threading.Lock()

    def add(
        self,
        path: str | PhasePath,
        seconds: float,
        count: int = 1,
        relative: bool = False,
    ) -> None:
        """Record ``seconds`` of inclusive time under ``path``.

        ``relative=True`` prefixes the current :meth:`phase` stack, which
        is how the profiled sweep nests under a worker's ``shard`` phase
        without knowing whether it runs in a worker at all.
        """
        if isinstance(path, str):
            path = (path,)
        if relative and self._stack:
            path = tuple(self._stack) + tuple(path)
        cell = self._phases.get(path)
        if cell is None:
            self._phases[path] = [float(count), float(seconds)]
        else:
            cell[0] += count
            cell[1] += seconds

    def current_path(self) -> PhasePath:
        """The open :meth:`phase` nesting as a path prefix."""
        return tuple(self._stack)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a nested phase; inclusive of any phases opened inside it."""
        self._stack.append(name)
        path = tuple(self._stack)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.add(path, elapsed)

    def items(self) -> list[tuple[PhasePath, int, float]]:
        """``(path, count, seconds)`` triples, sorted by path."""
        return [
            (path, int(cell[0]), cell[1])
            for path, cell in sorted(self._phases.items())
        ]

    def seconds(self, path: str | PhasePath) -> float:
        if isinstance(path, str):
            path = (path,)
        cell = self._phases.get(tuple(path))
        return cell[1] if cell is not None else 0.0

    def snapshot(self) -> list[list[object]]:
        """Picklable ``[[path...], count, seconds]`` rows (worker → parent)."""
        return [
            [list(path), int(cell[0]), cell[1]]
            for path, cell in sorted(self._phases.items())
        ]

    def drain(self) -> list[list[object]]:
        """:meth:`snapshot` then reset — one shard's worth per reply."""
        rows = self.snapshot()
        self._phases.clear()
        return rows

    def absorb(
        self,
        rows: Iterable[Iterable[object]],
        prefix: str | PhasePath = (),
    ) -> None:
        """Fold a :meth:`drain`/:meth:`snapshot` payload into this profiler."""
        if isinstance(prefix, str):
            prefix = (prefix,)
        prefix = tuple(prefix)
        with self._absorb_lock:
            for row in rows:
                path, count, seconds = row
                self.add(prefix + tuple(path), float(seconds), count=int(count))

    def clear(self) -> None:
        self._phases.clear()

    def __len__(self) -> int:
        return len(self._phases)


_active: PhaseProfiler | None = None


def set_profiler(profiler: PhaseProfiler | None) -> PhaseProfiler | None:
    """Install ``profiler`` as the process-wide active profiler.

    Returns the previously active profiler so callers can restore it.
    ``None`` turns profiling off (the default).
    """
    global _active
    previous = _active
    _active = profiler
    return previous


def get_profiler() -> PhaseProfiler | None:
    """The active profiler, or ``None`` when profiling is off."""
    return _active


@contextmanager
def _null_phase() -> Iterator[None]:
    yield


def phase(name: str) -> object:
    """Context manager timing ``name`` on the active profiler; no-op when off.

    For per-superstep granularity (cache builds, merges, dispatch).  The
    sweep interior never calls this — it batches into locals instead.
    """
    profiler = _active
    if profiler is None:
        return _null_phase()
    return profiler.phase(name)


# ---------------------------------------------------------------------------
# collapsed-stack rendering (flamegraph-compatible)
# ---------------------------------------------------------------------------

_ESCAPES = {
    "%": "%25",
    ";": "%3b",
    " ": "%20",
    "\t": "%09",
    "\n": "%0a",
    "\r": "%0d",
}


def escape_phase(name: str) -> str:
    """Percent-encode the characters the collapsed format reserves.

    ``;`` separates frames and whitespace separates the sample value, so
    both (and ``%`` itself) are escaped; everything else passes through.
    """
    if not any(ch in name for ch in _ESCAPES):
        return name
    out = name.replace("%", "%25")
    for ch, code in _ESCAPES.items():
        if ch != "%":
            out = out.replace(ch, code)
    return out


def unescape_phase(name: str) -> str:
    """Inverse of :func:`escape_phase`."""
    out = []
    i = 0
    while i < len(name):
        if name[i] == "%" and i + 3 <= len(name):
            try:
                out.append(chr(int(name[i + 1 : i + 3], 16)))
                i += 3
                continue
            except ValueError:
                pass
        out.append(name[i])
        i += 1
    return "".join(out)


def phase_key(path: Iterable[str]) -> str:
    """Join a path into an unambiguous ``;``-separated display key."""
    return ";".join(escape_phase(part) for part in path)


def parse_phase_key(key: str) -> PhasePath:
    """Inverse of :func:`phase_key`."""
    return tuple(unescape_phase(part) for part in key.split(";"))


def _self_seconds(
    rows: list[tuple[PhasePath, int, float]],
) -> list[tuple[PhasePath, float]]:
    """Inclusive → self time: each node minus its direct recorded children.

    Negative self time (timer jitter, or a child recorded without its
    parent's full window) clamps to zero so flamegraph tools never see a
    negative sample; the conservation property in the tests allows for
    the clamp plus integer rounding.
    """
    inclusive = {path: seconds for path, _count, seconds in rows}
    child_sum: dict[PhasePath, float] = {}
    for path in inclusive:
        # Charge each node to its *nearest recorded* ancestor: the tree
        # may skip levels (the sweep records ``sweep;posts;resample``
        # without a ``sweep;posts`` aggregate).
        for cut in range(len(path) - 1, 0, -1):
            ancestor = path[:cut]
            if ancestor in inclusive:
                child_sum[ancestor] = (
                    child_sum.get(ancestor, 0.0) + inclusive[path]
                )
                break
    return [
        (path, max(0.0, seconds - child_sum.get(path, 0.0)))
        for path, seconds in inclusive.items()
    ]


def render_collapsed(profiler: PhaseProfiler) -> str:
    """Collapsed-stack lines (``a;b;c <microseconds>``), self-time valued.

    Feed the output straight to ``flamegraph.pl`` / speedscope.  Values
    are integer microseconds of *self* time, so summing every line
    recovers (to rounding) the total of the root phases.
    """
    lines = []
    for path, self_s in sorted(_self_seconds(profiler.items())):
        micros = int(round(self_s * 1e6))
        if micros <= 0:
            continue
        lines.append(f"{phase_key(path)} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[PhasePath, int]:
    """Parse :func:`render_collapsed` output back to ``{path: microseconds}``."""
    stacks: dict[PhasePath, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            continue
        try:
            micros = int(value)
        except ValueError:
            continue
        path = parse_phase_key(key)
        stacks[path] = stacks.get(path, 0) + micros
    return stacks


# ---------------------------------------------------------------------------
# attribution report
# ---------------------------------------------------------------------------


def build_profile_report(
    profiler: PhaseProfiler,
    total_wall_seconds: float,
    sweeps: int,
) -> dict:
    """Aggregate a profiler into the per-sweep phase-attribution report.

    ``total_wall_seconds`` is the harness-measured wall time the phases
    should account for.  *Leaf* phases (no recorded descendant) outside
    the :data:`CONCURRENT_ROOTS` trees are the attribution set — parents
    double-count their children, and worker phases overlap the parent's
    dispatch window, so neither belongs in the sum.  Worker trees get
    their own ``worker_attributed_fraction`` against the workers' own
    ``shard`` wall.
    """
    rows = profiler.items()
    paths = {path for path, _c, _s in rows}

    def is_leaf(path: PhasePath) -> bool:
        probe = len(path)
        return not any(
            len(other) > probe and other[:probe] == path for other in paths
        )

    phases = []
    attributed = 0.0
    worker_leaf = 0.0
    worker_root = 0.0
    for path, count, seconds in rows:
        concurrent = path[0] in CONCURRENT_ROOTS
        leaf = is_leaf(path)
        phases.append(
            {
                "phase": phase_key(path),
                "seconds": round(seconds, 6),
                "count": count,
                "per_call_us": round(seconds / count * 1e6, 3) if count else 0.0,
                "fraction": (
                    round(seconds / total_wall_seconds, 4)
                    if total_wall_seconds > 0
                    else 0.0
                ),
                "leaf": leaf,
                "concurrent": concurrent,
            }
        )
        if concurrent:
            if len(path) == 2:  # ("worker", "shard")-style subtree root
                worker_root += seconds
            if leaf:
                worker_leaf += seconds
        elif leaf:
            attributed += seconds
    phases.sort(key=lambda row: row["seconds"], reverse=True)
    report = {
        "sweeps": sweeps,
        "total_wall_seconds": round(total_wall_seconds, 6),
        "seconds_per_sweep": (
            round(total_wall_seconds / sweeps, 6) if sweeps else 0.0
        ),
        "attributed_seconds": round(attributed, 6),
        "attributed_fraction": (
            round(attributed / total_wall_seconds, 4)
            if total_wall_seconds > 0
            else 0.0
        ),
        "phases": phases,
    }
    if worker_root > 0:
        report["worker_attributed_fraction"] = round(
            worker_leaf / worker_root, 4
        )
    return report


def render_profile_report(report: dict) -> str:
    """The human-readable attribution table ``cold profile`` prints."""
    width = max(
        [len(str(row["phase"])) for row in report["phases"]] + [len("phase")]
    )
    lines = [
        f"{'phase':<{width}}  {'seconds':>10}  {'count':>9}  "
        f"{'per-call':>10}  {'share':>6}"
    ]
    for row in report["phases"]:
        per_call = row["per_call_us"]
        per_call_text = (
            f"{per_call / 1e6:.3f}s" if per_call >= 1e6 else f"{per_call:.1f}us"
        )
        marker = "*" if row.get("concurrent") else " "
        lines.append(
            f"{row['phase']:<{width}}  {row['seconds']:>10.4f}  "
            f"{row['count']:>9d}  {per_call_text:>10}  "
            f"{row['fraction'] * 100:>5.1f}%{marker}"
        )
    lines.append(
        f"attributed {report['attributed_fraction'] * 100:.1f}% of "
        f"{report['total_wall_seconds']:.3f}s over {report['sweeps']} sweep(s)"
        f" ({report['seconds_per_sweep']:.4f}s/sweep)"
    )
    if "worker_attributed_fraction" in report:
        lines.append(
            "worker shards (concurrent, marked *): "
            f"{report['worker_attributed_fraction'] * 100:.1f}% of shard wall "
            "attributed"
        )
    return "\n".join(lines)


def compare_profiles(
    current: dict, baseline: dict, threshold: float = 0.25
) -> list[dict]:
    """Per-phase per-call verdicts between two attribution reports.

    Compares per-call seconds (total seconds would punish running more
    sweeps).  ``regressed`` means the phase slowed by more than
    ``threshold`` relative to baseline; ``improved`` the reverse.
    """
    base = {row["phase"]: row for row in baseline.get("phases", [])}
    verdicts = []
    for row in current.get("phases", []):
        other = base.get(row["phase"])
        if other is None or not other["per_call_us"]:
            continue
        ratio = row["per_call_us"] / other["per_call_us"]
        if ratio > 1.0 + threshold:
            verdict = "regressed"
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        verdicts.append(
            {
                "phase": row["phase"],
                "current_per_call_us": row["per_call_us"],
                "baseline_per_call_us": other["per_call_us"],
                "ratio": round(ratio, 4),
                "verdict": verdict,
            }
        )
    return verdicts


# ---------------------------------------------------------------------------
# utilization + memory gauges
# ---------------------------------------------------------------------------


def worker_utilization(
    node_seconds: list[float],
    node_compute_seconds: list[float],
    wall_seconds: float,
) -> dict:
    """Busy fraction and straggler ratio of one parallel superstep.

    ``busy_fraction`` is merged compute over the cluster's capacity for
    the superstep window (``nodes × wall``): 1.0 means every worker
    computed the whole time, low values mean workers idled at the barrier
    or the parent spent the window merging.  ``straggler_ratio`` is the
    slowest node over the *median* node — the paper-relevant imbalance
    number, robust to one fast outlier shard.
    """
    nodes = len(node_seconds)
    busy = 0.0
    if nodes and wall_seconds > 0:
        busy = sum(node_compute_seconds) / (nodes * wall_seconds)
    straggler = 1.0
    if nodes:
        ordered = sorted(node_seconds)
        mid = ordered[nodes // 2] if nodes % 2 else (
            (ordered[nodes // 2 - 1] + ordered[nodes // 2]) / 2.0
        )
        if mid > 0:
            straggler = ordered[-1] / mid
    return {
        "busy_fraction": round(busy, 4),
        "straggler_ratio": round(straggler, 4),
    }


def memory_gauges(include_children: bool = False) -> dict:
    """RSS high-water (MB) and major page faults from ``getrusage``.

    The mmap-era training gauges: a packed-corpus fit that starts
    thrashing shows up as climbing ``major_page_faults`` long before wall
    time degrades.  ``include_children`` folds in waited-for workers.
    Returns zeros on platforms without ``resource``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return {"rss_peak_mb": 0.0, "major_page_faults": 0}
    usage = resource.getrusage(resource.RUSAGE_SELF)
    peak = usage.ru_maxrss
    faults = usage.ru_majflt
    if include_children:
        child = resource.getrusage(resource.RUSAGE_CHILDREN)
        peak = max(peak, child.ru_maxrss)
        faults += child.ru_majflt
    # ru_maxrss is KiB on Linux, bytes on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return {
        "rss_peak_mb": round(peak / divisor, 2),
        "major_page_faults": int(faults),
    }
