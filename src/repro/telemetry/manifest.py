"""The run manifest: one ``run.json`` per fit, written at fit start.

Metrics and trace files are only useful if they are attributable to an
exact configuration; the manifest pins down everything needed to say
"*this* metrics.jsonl came from *that* run": the full model/fit config
and its stable hash, the seed, the executor topology, the package
version, interpreter/platform, and — when the working tree is a git
checkout — ``git describe`` output.  It is written *before* the first
sweep so even a crashed run leaves an attributable record.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from pathlib import Path

from ..resilience.checkpoint import atomic_write_text

#: File name used when a directory is given.
MANIFEST_NAME = "run.json"


def config_hash(config: dict) -> str:
    """Stable short hash of a JSON-able config dict (order-insensitive)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_describe(cwd: str | Path | None = None) -> str | None:
    """``git describe --always --dirty`` of ``cwd``, or None outside git."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def build_run_manifest(
    config: dict,
    seed: int,
    executor: str,
    num_nodes: int,
    num_workers: int | None,
    extra: dict | None = None,
) -> dict:
    """The JSON-ready manifest payload (separated from I/O for tests)."""
    from .. import __version__

    manifest = {
        "kind": "run_manifest",
        "created": round(time.time(), 6),
        "config": config,
        "config_hash": config_hash(config),
        "seed": seed,
        "executor": executor,
        "num_nodes": num_nodes,
        "num_workers": num_workers,
        "package": {"name": "repro", "version": __version__},
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_describe": git_describe(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_run_manifest(
    path: str | Path,
    config: dict,
    seed: int,
    executor: str = "simulated",
    num_nodes: int = 1,
    num_workers: int | None = None,
    extra: dict | None = None,
) -> Path:
    """Atomically write the manifest; ``path`` may be a directory.

    Returns the file actually written (``<dir>/run.json`` for a
    directory).  Atomic so a crash mid-write never leaves a torn manifest
    next to an otherwise-valid metrics file.
    """
    path = Path(path)
    if path.is_dir() or path.suffix == "":
        path = path / MANIFEST_NAME
    payload = build_run_manifest(
        config,
        seed=seed,
        executor=executor,
        num_nodes=num_nodes,
        num_workers=num_workers,
        extra=extra,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return path
