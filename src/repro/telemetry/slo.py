"""Rolling-window SLO tracking: availability, latency, error-budget burn.

:class:`SLOTracker` watches a request stream against two objectives — an
availability target (fraction of requests that must not fail server-side)
and a latency objective (fraction of successful requests that must finish
under a threshold) — over a pair of rolling windows.  The *fast* window
(minutes) is the paging signal: a high burn rate there means the error
budget is being spent much faster than the objective allows and the
service will blow its SLO within hours.  The *slow* window (the SLO
period proxy, an hour here) smooths incident noise into the compliance
number reported on ``/metrics`` and in readiness detail.

Burn rate is the standard multi-window definition::

    burn = error_rate / (1 - availability_target)

``burn == 1`` means the budget is being consumed exactly at the
sustainable rate; ``burn == 14`` on the fast window is the classic
"page now" threshold.  Everything is O(window-seconds) memory —
per-second aggregation buckets in a deque, no raw samples retained —
and thread-safe, matching the threading HTTP server that feeds it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from .metrics import MetricsRegistry, TelemetryError


@dataclass(frozen=True)
class SLOConfig:
    """The objectives; defaults are sane for an interactive scoring API."""

    availability_target: float = 0.999
    latency_threshold_seconds: float = 0.5
    latency_target: float = 0.99
    window_seconds: float = 3600.0
    fast_window_seconds: float = 300.0

    def __post_init__(self) -> None:
        for name in ("availability_target", "latency_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise TelemetryError(
                    f"{name} must be in (0, 1), got {value}"
                )
        if self.latency_threshold_seconds <= 0:
            raise TelemetryError("latency_threshold_seconds must be positive")
        if self.fast_window_seconds <= 0:
            raise TelemetryError("fast_window_seconds must be positive")
        if self.window_seconds < self.fast_window_seconds:
            raise TelemetryError(
                "window_seconds must be >= fast_window_seconds"
            )


class SLOTracker:
    """Thread-safe rolling-window availability/latency objective tracker.

    ``clock`` is injectable (tests drive a fake clock); it only needs to
    be monotonic non-decreasing.  ``record(ok, latency_seconds)`` is the
    single write path — cheap enough (one dict-free bucket update under a
    lock) to sit on the serving hot path.
    """

    def __init__(
        self,
        config: SLOConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else SLOConfig()
        self._clock = clock
        # Per-second buckets: [second, requests, errors, measured, under].
        self._buckets: deque[list] = deque()
        self._lock = threading.Lock()
        self.total_requests = 0
        self.total_errors = 0

    # -- the write path ----------------------------------------------------

    def record(self, ok: bool, latency_seconds: float | None = None) -> None:
        """Record one request outcome (and its latency when it completed)."""
        now = self._clock()
        second = int(now)
        with self._lock:
            if self._buckets and self._buckets[-1][0] == second:
                bucket = self._buckets[-1]
            else:
                bucket = [second, 0, 0, 0, 0]
                self._buckets.append(bucket)
                horizon = second - int(self.config.window_seconds) - 1
                while self._buckets and self._buckets[0][0] < horizon:
                    self._buckets.popleft()
            bucket[1] += 1
            self.total_requests += 1
            if not ok:
                bucket[2] += 1
                self.total_errors += 1
            if latency_seconds is not None:
                bucket[3] += 1
                if latency_seconds <= self.config.latency_threshold_seconds:
                    bucket[4] += 1

    # -- the read path -----------------------------------------------------

    def window(self, seconds: float) -> dict:
        """Aggregate outcomes over the trailing ``seconds``.

        With no traffic in the window both compliance ratios report 1.0 —
        an idle service is meeting its objectives, not failing them.
        """
        horizon = self._clock() - seconds
        requests = errors = measured = under = 0
        with self._lock:
            for second, reqs, errs, meas, fast in reversed(self._buckets):
                if second < horizon:
                    break
                requests += reqs
                errors += errs
                measured += meas
                under += fast
        availability = 1.0 - errors / requests if requests else 1.0
        latency_compliance = under / measured if measured else 1.0
        return {
            "seconds": seconds,
            "requests": requests,
            "errors": errors,
            "availability": availability,
            "latency_compliance": latency_compliance,
        }

    def burn_rate(self, seconds: float) -> float:
        """Error-budget burn over the trailing window (1.0 = sustainable)."""
        stats = self.window(seconds)
        budget = 1.0 - self.config.availability_target
        if not stats["requests"]:
            return 0.0
        return (1.0 - stats["availability"]) / budget

    def snapshot(self) -> dict:
        """The full JSON-ready SLO state (the ``/metrics`` ``slo`` block)."""
        config = self.config
        slow = self.window(config.window_seconds)
        fast = self.window(config.fast_window_seconds)
        budget = 1.0 - config.availability_target
        slow_burn = (
            (1.0 - slow["availability"]) / budget if slow["requests"] else 0.0
        )
        fast_burn = (
            (1.0 - fast["availability"]) / budget if fast["requests"] else 0.0
        )
        return {
            "availability_target": config.availability_target,
            "latency_threshold_seconds": config.latency_threshold_seconds,
            "latency_target": config.latency_target,
            "window": slow,
            "fast_window": fast,
            "burn_rate": round(slow_burn, 6),
            "fast_burn_rate": round(fast_burn, 6),
            "error_budget_remaining": round(max(0.0, 1.0 - slow_burn), 6),
            "latency_objective_met": (
                slow["latency_compliance"] >= config.latency_target
            ),
            "total_requests": self.total_requests,
            "total_errors": self.total_errors,
        }

    def summary(self) -> dict:
        """The compact readiness-detail view of :meth:`snapshot`."""
        snapshot = self.snapshot()
        return {
            "availability": round(snapshot["window"]["availability"], 6),
            "latency_compliance": round(
                snapshot["window"]["latency_compliance"], 6
            ),
            "burn_rate": snapshot["burn_rate"],
            "fast_burn_rate": snapshot["fast_burn_rate"],
        }

    def export_gauges(self, registry: MetricsRegistry) -> None:
        """Mirror the SLO state into window-labeled registry gauges."""
        config = self.config
        availability = registry.gauge("slo_availability", labels=("window",))
        compliance = registry.gauge(
            "slo_latency_compliance", labels=("window",)
        )
        burn = registry.gauge("slo_burn_rate", labels=("window",))
        for label, seconds in (
            ("fast", config.fast_window_seconds),
            ("slow", config.window_seconds),
        ):
            stats = self.window(seconds)
            budget = 1.0 - config.availability_target
            rate = (
                (1.0 - stats["availability"]) / budget
                if stats["requests"]
                else 0.0
            )
            availability.labels(window=label).set(stats["availability"])
            compliance.labels(window=label).set(stats["latency_compliance"])
            burn.labels(window=label).set(rate)
        registry.gauge("slo_error_budget_remaining").set(
            max(0.0, 1.0 - self.burn_rate(config.window_seconds))
        )
