"""Counters, gauges, fixed-bucket histograms, and JSONL emission.

:class:`MetricsRegistry` is the in-process metrics store the training
loops write into: named :class:`Counter`\\ s (monotone tallies — draws,
replays, crashes), :class:`Gauge`\\ s (latest-value signals — the joint
log-likelihood, perplexity), and :class:`Histogram`\\ s with *fixed*
bucket bounds (timing distributions — per-sweep wall time, per-node
compute seconds, merge seconds).  Fixed buckets keep observation O(log
buckets) with zero allocation, and make snapshots mergeable across
emissions the way Prometheus-style histograms are.

Emission is line-delimited JSON (:class:`JsonlWriter`): every record is
one self-contained ``{"ts": ..., "kind": ..., ...}`` object, so a live
run's ``metrics.jsonl`` can be tailed (``cold monitor``), grepped, or
loaded with one ``json.loads`` per line — no framing, no schema server.
All classes are thread-safe; the parallel engine's dispatch threads
record into the same registry the fit loop emits from.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
import time
from pathlib import Path


class TelemetryError(ValueError):
    """Raised for invalid telemetry configurations."""


#: Default histogram bounds for second-denominated timings: ~100µs to
#: ~2 minutes in roughly x4 steps, wide enough for smoke corpora and
#: medium benchmark sweeps alike.
TIMING_BUCKETS = (
    0.0001,
    0.0005,
    0.002,
    0.01,
    0.05,
    0.2,
    1.0,
    5.0,
    20.0,
    120.0,
)


#: Histogram bounds for request latencies: ~0.5ms to 30s, dense through the
#: interactive range so serving p50/p99 land in distinct buckets.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


#: Histogram bounds for incremental streaming updates: a windowed Gibbs
#: update is heavier than a request but lighter than a full sweep —
#: ~5ms to ~5 minutes in roughly x3 steps.
STREAM_UPDATE_BUCKETS = (
    0.005,
    0.015,
    0.05,
    0.15,
    0.5,
    1.5,
    5.0,
    15.0,
    60.0,
    300.0,
)


#: The per-domain bucket presets.  Call sites name the domain instead of
#: hand-picking bounds, so every emitter of a domain's histograms agrees
#: on bucket boundaries and snapshots stay mergeable across processes.
BUCKET_PRESETS: dict[str, tuple[float, ...]] = {
    "training_sweep": TIMING_BUCKETS,
    "serving_latency": LATENCY_BUCKETS,
    "streaming_update": STREAM_UPDATE_BUCKETS,
}


def bucket_preset(domain: str) -> tuple[float, ...]:
    """The centralized histogram bounds for a metric domain."""
    try:
        return BUCKET_PRESETS[domain]
    except KeyError:
        raise TelemetryError(
            f"unknown bucket preset {domain!r}; choose from "
            f"{sorted(BUCKET_PRESETS)}"
        ) from None


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_series(name: str, labels: dict[str, str]) -> str:
    """The canonical ``name{label="value",...}`` series key.

    Used both as the flattened key in JSON snapshots and as the sample
    name prefix in Prometheus text exposition, so the two views of one
    registry always agree on identity.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically-increasing tally."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name}: cannot inc by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def snapshot(self) -> int | float:
        return self._value


class Gauge:
    """A last-value-wins signal (may go up or down)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float | None:
        return self._value

    def snapshot(self) -> float | None:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max alongside.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in the implicit overflow bucket (``+inf``).  The snapshot
    carries cumulative-style per-bucket counts plus the scalar summary,
    which is enough to reconstruct rates and tail percentile estimates
    offline without storing raw samples.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: tuple[float, ...] = TIMING_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram {name}: buckets must be ascending and non-empty"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def bucket_counts(self) -> list[int]:
        """Per-bucket observation counts (last entry is the overflow)."""
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {}
            for bound, count in zip(self.bounds, self._counts):
                buckets[f"le_{bound:g}"] = count
            buckets["le_inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": round(self._sum, 9),
                "min": round(self._min, 9) if self._count else None,
                "max": round(self._max, 9) if self._count else None,
                "mean": round(self._sum / self._count, 9) if self._count else None,
                "buckets": buckets,
            }


class MetricFamily:
    """A named metric keyed by label values (Prometheus-style family).

    ``family.labels(endpoint="retweet")`` returns the child metric for
    that label combination, creating it on first use.  Children are plain
    :class:`Counter`/:class:`Gauge`/:class:`Histogram` instances named
    with the full ``name{label="value"}`` series key, so everything that
    consumes snapshots sees one flat, unambiguous namespace.
    """

    __slots__ = ("name", "label_names", "_children", "_lock")

    kind_name = "untyped"

    def __init__(self, name: str, label_names: tuple[str, ...]) -> None:
        if not label_names:
            raise TelemetryError(f"family {name}: needs at least one label")
        if len(set(label_names)) != len(label_names):
            raise TelemetryError(f"family {name}: duplicate label names")
        self.name = name
        self.label_names = tuple(str(label) for label in label_names)
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self, labels: dict[str, str]) -> object:
        raise NotImplementedError

    def labels(self, **labels: object):
        if set(labels) != set(self.label_names):
            raise TelemetryError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child(dict(zip(self.label_names, key)))
                    self._children[key] = child
        return child

    def series(self) -> list[tuple[dict[str, str], object]]:
        """``(labels, metric)`` pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.label_names, key)), metric) for key, metric in items
        ]


class CounterFamily(MetricFamily):
    __slots__ = ()
    kind_name = "counter"

    def _make_child(self, labels: dict[str, str]) -> Counter:
        return Counter(format_series(self.name, labels))


class GaugeFamily(MetricFamily):
    __slots__ = ()
    kind_name = "gauge"

    def _make_child(self, labels: dict[str, str]) -> Gauge:
        return Gauge(format_series(self.name, labels))


class HistogramFamily(MetricFamily):
    __slots__ = ("buckets",)
    kind_name = "histogram"

    def __init__(
        self,
        name: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = TIMING_BUCKETS,
    ) -> None:
        super().__init__(name, label_names)
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self, labels: dict[str, str]) -> Histogram:
        return Histogram(format_series(self.name, labels), self.buckets)


class MetricsRegistry:
    """Named metric store; get-or-create semantics per metric kind.

    Asking for an existing name with a different kind, different labels,
    or different histogram buckets is a configuration bug and raises
    :class:`TelemetryError` rather than silently aliasing.  Passing
    ``labels=("endpoint",)`` returns a labeled family whose
    ``.labels(endpoint=...)`` children are the actual metrics.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory) -> object:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    @staticmethod
    def _check_labels(family: MetricFamily, labels: tuple[str, ...]) -> None:
        if family.label_names != tuple(labels):
            raise TelemetryError(
                f"family {family.name!r} already registered with labels "
                f"{family.label_names}, not {tuple(labels)}"
            )

    def counter(
        self, name: str, labels: tuple[str, ...] | None = None
    ) -> Counter | CounterFamily:
        if labels:
            family = self._get_or_create(
                name, CounterFamily, lambda: CounterFamily(name, tuple(labels))
            )
            self._check_labels(family, tuple(labels))
            return family
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(
        self, name: str, labels: tuple[str, ...] | None = None
    ) -> Gauge | GaugeFamily:
        if labels:
            family = self._get_or_create(
                name, GaugeFamily, lambda: GaugeFamily(name, tuple(labels))
            )
            self._check_labels(family, tuple(labels))
            return family
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = TIMING_BUCKETS,
        labels: tuple[str, ...] | None = None,
    ) -> Histogram | HistogramFamily:
        bounds = tuple(float(b) for b in buckets)
        if labels:
            family = self._get_or_create(
                name,
                HistogramFamily,
                lambda: HistogramFamily(name, tuple(labels), bounds),
            )
            self._check_labels(family, tuple(labels))
            if family.buckets != bounds:
                raise TelemetryError(
                    f"histogram family {name!r} already registered with "
                    f"buckets {family.buckets}"
                )
            return family
        histogram = self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds)
        )
        if histogram.bounds != bounds:
            raise TelemetryError(
                f"histogram {name!r} already registered with buckets "
                f"{histogram.bounds}"
            )
        return histogram

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def collect(self) -> list[tuple[str, str, list[tuple[dict, object]]]]:
        """``(name, kind, [(labels, metric), ...])`` triples, sorted by name.

        The exposition-format view of the registry: plain metrics appear
        as a single unlabeled series, families contribute one series per
        observed label combination.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        out = []
        for name, metric in metrics:
            if isinstance(metric, MetricFamily):
                out.append((name, metric.kind_name, metric.series()))
            elif isinstance(metric, Counter):
                out.append((name, "counter", [({}, metric)]))
            elif isinstance(metric, Gauge):
                out.append((name, "gauge", [({}, metric)]))
            else:
                out.append((name, "histogram", [({}, metric)]))
        return out

    def snapshot(self) -> dict:
        """JSON-ready state of every metric, grouped by kind.

        Family children are flattened to ``name{label="value"}`` keys in
        the same kind group as their plain counterparts, so consumers
        (``cold monitor``, tests, dashboards) read one flat namespace.
        """
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        group = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for name, kind, series in self.collect():
            for labels, metric in series:
                key = format_series(name, labels)
                out[group[kind]][key] = metric.snapshot()
        return out


class JsonlWriter:
    """Append-only line-delimited JSON emitter with per-record flush.

    The file is opened lazily on the first record and flushed after every
    write so ``cold monitor`` (or a crash post-mortem) always sees whole
    lines.  One record per call; timestamps are stamped here so callers
    never disagree about the clock.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = None
        self._lock = threading.Lock()

    def write(self, kind: str, **fields: object) -> dict:
        record = {"ts": round(time.time(), 6), "kind": kind, **fields}
        line = json.dumps(record, separators=(",", ":"), default=_json_default)
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh_line = self._needs_fresh_line()
                self._file = self.path.open("a", encoding="utf-8")
                if fresh_line:
                    self._file.write("\n")
            self._file.write(line + "\n")
            self._file.flush()
        return record

    def _needs_fresh_line(self) -> bool:
        """True when the file ends mid-line (a previous writer was killed).

        Appending straight after a torn fragment would glue this session's
        first record onto invalid JSON and lose it; starting on a fresh
        line confines the damage to the fragment itself, which
        :func:`read_jsonl` already skips.
        """
        try:
            with self.path.open("rb") as existing:
                existing.seek(0, 2)
                if existing.tell() == 0:
                    return False
                existing.seek(-1, 2)
                return existing.read(1) != b"\n"
        except FileNotFoundError:
            return False

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _json_default(value: object) -> object:
    """Serialise numpy scalars and paths without importing numpy here."""
    for attribute in ("item",):  # numpy scalar protocol
        if hasattr(value, attribute):
            return value.item()
    if isinstance(value, Path):
        return str(value)
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def read_jsonl(path: str | Path) -> list[dict]:
    """Load every complete record of a JSONL file; skip torn final lines.

    A run killed mid-write can leave a truncated last line; monitoring and
    tests should see everything before it rather than an exception.  Only
    dict records are returned — a corrupt line that happens to parse as a
    bare JSON scalar is noise, not a record, and consumers index records
    by key.
    """
    records: list[dict] = []
    path = Path(path)
    if not path.exists():
        return records
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records
