"""Counters, gauges, fixed-bucket histograms, and JSONL emission.

:class:`MetricsRegistry` is the in-process metrics store the training
loops write into: named :class:`Counter`\\ s (monotone tallies — draws,
replays, crashes), :class:`Gauge`\\ s (latest-value signals — the joint
log-likelihood, perplexity), and :class:`Histogram`\\ s with *fixed*
bucket bounds (timing distributions — per-sweep wall time, per-node
compute seconds, merge seconds).  Fixed buckets keep observation O(log
buckets) with zero allocation, and make snapshots mergeable across
emissions the way Prometheus-style histograms are.

Emission is line-delimited JSON (:class:`JsonlWriter`): every record is
one self-contained ``{"ts": ..., "kind": ..., ...}`` object, so a live
run's ``metrics.jsonl`` can be tailed (``cold monitor``), grepped, or
loaded with one ``json.loads`` per line — no framing, no schema server.
All classes are thread-safe; the parallel engine's dispatch threads
record into the same registry the fit loop emits from.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
import time
from pathlib import Path


class TelemetryError(ValueError):
    """Raised for invalid telemetry configurations."""


#: Default histogram bounds for second-denominated timings: ~100µs to
#: ~2 minutes in roughly x4 steps, wide enough for smoke corpora and
#: medium benchmark sweeps alike.
TIMING_BUCKETS = (
    0.0001,
    0.0005,
    0.002,
    0.01,
    0.05,
    0.2,
    1.0,
    5.0,
    20.0,
    120.0,
)


#: Histogram bounds for request latencies: ~0.5ms to 30s, dense through the
#: interactive range so serving p50/p99 land in distinct buckets.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically-increasing tally."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name}: cannot inc by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def snapshot(self) -> int | float:
        return self._value


class Gauge:
    """A last-value-wins signal (may go up or down)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float | None:
        return self._value

    def snapshot(self) -> float | None:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max alongside.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in the implicit overflow bucket (``+inf``).  The snapshot
    carries cumulative-style per-bucket counts plus the scalar summary,
    which is enough to reconstruct rates and tail percentile estimates
    offline without storing raw samples.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: tuple[float, ...] = TIMING_BUCKETS
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(
                f"histogram {name}: buckets must be ascending and non-empty"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {}
            for bound, count in zip(self.bounds, self._counts):
                buckets[f"le_{bound:g}"] = count
            buckets["le_inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": round(self._sum, 9),
                "min": round(self._min, 9) if self._count else None,
                "max": round(self._max, 9) if self._count else None,
                "mean": round(self._sum / self._count, 9) if self._count else None,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named metric store; get-or-create semantics per metric kind.

    Asking for an existing name with a different kind (or different
    histogram buckets) is a configuration bug and raises
    :class:`TelemetryError` rather than silently aliasing.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory) -> object:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = TIMING_BUCKETS
    ) -> Histogram:
        histogram = self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )
        if histogram.bounds != tuple(float(b) for b in buckets):
            raise TelemetryError(
                f"histogram {name!r} already registered with buckets "
                f"{histogram.bounds}"
            )
        return histogram

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """JSON-ready state of every metric, grouped by kind."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Counter):
                out["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.snapshot()
            else:
                out["histograms"][name] = metric.snapshot()
        return out


class JsonlWriter:
    """Append-only line-delimited JSON emitter with per-record flush.

    The file is opened lazily on the first record and flushed after every
    write so ``cold monitor`` (or a crash post-mortem) always sees whole
    lines.  One record per call; timestamps are stamped here so callers
    never disagree about the clock.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = None
        self._lock = threading.Lock()

    def write(self, kind: str, **fields: object) -> dict:
        record = {"ts": round(time.time(), 6), "kind": kind, **fields}
        line = json.dumps(record, separators=(",", ":"), default=_json_default)
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh_line = self._needs_fresh_line()
                self._file = self.path.open("a", encoding="utf-8")
                if fresh_line:
                    self._file.write("\n")
            self._file.write(line + "\n")
            self._file.flush()
        return record

    def _needs_fresh_line(self) -> bool:
        """True when the file ends mid-line (a previous writer was killed).

        Appending straight after a torn fragment would glue this session's
        first record onto invalid JSON and lose it; starting on a fresh
        line confines the damage to the fragment itself, which
        :func:`read_jsonl` already skips.
        """
        try:
            with self.path.open("rb") as existing:
                existing.seek(0, 2)
                if existing.tell() == 0:
                    return False
                existing.seek(-1, 2)
                return existing.read(1) != b"\n"
        except FileNotFoundError:
            return False

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _json_default(value: object) -> object:
    """Serialise numpy scalars and paths without importing numpy here."""
    for attribute in ("item",):  # numpy scalar protocol
        if hasattr(value, attribute):
            return value.item()
    if isinstance(value, Path):
        return str(value)
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def read_jsonl(path: str | Path) -> list[dict]:
    """Load every complete record of a JSONL file; skip torn final lines.

    A run killed mid-write can leave a truncated last line; monitoring and
    tests should see everything before it rather than an exception.  Only
    dict records are returned — a corrupt line that happens to parse as a
    bare JSON scalar is noise, not a record, and consumers index records
    by key.
    """
    records: list[dict] = []
    path = Path(path)
    if not path.exists():
        return records
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records
