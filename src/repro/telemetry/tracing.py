"""A lightweight span tracer with Chrome ``trace_event`` export.

Training code marks regions with the module-level :func:`span` helper::

    from repro.telemetry import trace

    with trace.span("sweep", sweep=iteration):
        ...

Spans nest per thread (a thread-local stack records parent/child links),
carry arbitrary JSON-able attributes, and are buffered in memory until
:meth:`Tracer.save` writes them as Chrome ``trace_event`` JSON — load the
file in ``chrome://tracing`` (or Perfetto) to see the fit/sweep/cache/
merge/checkpoint waterfall across the parent and worker processes.

When no tracer is active (the default), :func:`span` returns a shared
no-op context manager: one global read and two no-op calls per region,
cheap enough to leave instrumentation in hot paths at sweep granularity.
Worker processes run their own :class:`Tracer` and ship drained events
back over the pool's reply pipe; the parent absorbs them with
:meth:`Tracer.extend`, so one trace file covers the whole cluster.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from .context import get_request_id


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager recording one complete ('X') trace event."""

    __slots__ = ("_tracer", "name", "args", "span_id", "parent_id", "_wall", "_perf")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self.span_id = 0
        self.parent_id: int | None = None
        self._wall = 0.0
        self._perf = 0.0

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._wall = time.time()
        self._perf = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._perf
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tracer._record(self, duration)
        return False


class Tracer:
    """Thread- and fork-safe buffered span recorder.

    Events are plain dicts in Chrome ``trace_event`` "X" (complete-event)
    form — ``ts``/``dur`` in microseconds, ``pid``/``tid`` identifying the
    process and thread — plus ``id`` / ``parent`` span links in ``args``
    so nesting survives even when timestamps tie.  ``max_events`` bounds
    memory on very long runs (the oldest half is dropped with a marker
    event, never silently).
    """

    def __init__(self, max_events: int = 200_000) -> None:
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id = 0
        self._dropped = 0
        self.max_events = max_events

    # -- span bookkeeping --------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def span(self, name: str, **args: object) -> _SpanContext:
        return _SpanContext(self, name, args)

    def _record(self, span: _SpanContext, duration: float) -> None:
        args = {
            "id": span.span_id,
            "parent": span.parent_id,
            **span.args,
        }
        # Stamp the ambient request id so one Chrome-trace filter (or a
        # grep of the exported JSON) reconstructs a request's whole path.
        request_id = get_request_id()
        if request_id is not None:
            args.setdefault("request_id", request_id)
        event = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(span._wall * 1e6, 1),
            "dur": round(duration * 1e6, 1),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }
        with self._lock:
            self._events.append(event)
            if len(self._events) > self.max_events:
                kept = self._events[len(self._events) // 2 :]
                self._dropped += len(self._events) - len(kept)
                self._events = kept

    # -- export ------------------------------------------------------------

    def drain(self) -> list[dict]:
        """Remove and return all buffered events (workers ship these home)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def extend(self, events: list[dict]) -> None:
        """Absorb events drained from another tracer (a worker process)."""
        with self._lock:
            self._events.extend(events)

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def to_chrome_trace(self) -> dict:
        """The full buffer as a ``chrome://tracing``-loadable object."""
        with self._lock:
            events = sorted(self._events, key=lambda e: e["ts"])
            metadata = {
                "harness": "repro.telemetry",
                "dropped_events": self._dropped,
            }
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": metadata,
        }

    def save(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(), indent=1) + "\n")
        return path


#: The process-wide active tracer; ``None`` keeps every span() a no-op.
#: A plain module global (not a contextvar) on purpose: the engine's
#: dispatch threads must see the tracer the fit loop activated, and
#: contextvars do not flow into already-running pool threads.
_active: Tracer | None = None
_active_lock = threading.Lock()


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _active
    with _active_lock:
        previous = _active
        _active = tracer
        return previous


def get_tracer() -> Tracer | None:
    return _active


def span(name: str, **args: object):
    """A span on the active tracer, or a shared no-op when tracing is off."""
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)
