"""repro: reproduction of "Community Level Diffusion Extraction" (SIGMOD'15).

The stable day-to-day surface is :mod:`repro.api` — one frozen config
object and three verbs::

    from repro import api, generate_corpus

    corpus, truth = generate_corpus()
    config = api.COLDConfig(num_communities=4, num_topics=6, seed=0)
    model = api.fit(corpus, config)
    api.save(model, "runs/demo")

The classes behind it stay public for advanced use::

    from repro import COLDModel, DiffusionPredictor

    model = COLDModel(num_communities=4, num_topics=6, seed=0).fit(corpus)
    predictor = DiffusionPredictor(model.estimates_)

Constructor arguments are keyword-only across the package; positional
use still works but emits a one-time :class:`DeprecationWarning`.

Subpackages: ``repro.datasets`` (corpora + synthetic generation),
``repro.core`` (the COLD model and analyses), ``repro.parallel`` (the
GraphLab-substitute GAS engine), ``repro.baselines`` (comparison systems),
``repro.eval`` (metrics and protocols), ``repro.telemetry`` (metrics,
tracing, structured logging, run manifests).
"""

from . import api, telemetry
from .core import (
    COLDConfig,
    COLDModel,
    ConfigError,
    StreamConfig,
    CommunityDiffusionGraph,
    DiffusionPredictor,
    Hyperparameters,
    ParameterEstimates,
    community_influence,
    extract_diffusion_graph,
    fluctuation_analysis,
    link_probability,
    pentagon_embedding,
    predict_timestamp,
    time_lag_analysis,
    top_words,
    zeta,
)
from .datasets import (
    GroundTruth,
    Post,
    RetweetTuple,
    SocialCorpus,
    SyntheticConfig,
    Vocabulary,
    benchmark_world,
    dataset1,
    dataset2,
    generate_corpus,
    generate_retweet_tuples,
)
from .parallel import ParallelCOLDSampler

__version__ = "1.0.0"

__all__ = [
    "COLDConfig",
    "COLDModel",
    "CommunityDiffusionGraph",
    "ConfigError",
    "DiffusionPredictor",
    "GroundTruth",
    "Hyperparameters",
    "ParallelCOLDSampler",
    "ParameterEstimates",
    "Post",
    "RetweetTuple",
    "SocialCorpus",
    "StreamConfig",
    "SyntheticConfig",
    "Vocabulary",
    "__version__",
    "api",
    "benchmark_world",
    "community_influence",
    "dataset1",
    "dataset2",
    "extract_diffusion_graph",
    "fluctuation_analysis",
    "generate_corpus",
    "generate_retweet_tuples",
    "link_probability",
    "pentagon_embedding",
    "predict_timestamp",
    "time_lag_analysis",
    "top_words",
    "zeta",
]
