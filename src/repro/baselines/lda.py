"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

LDA [Blei et al. 2003; Griffiths & Steyvers 2004] is the shared building
block of several baselines in the paper's comparison: TOT extends it with a
time density, PMTLM couples it with links, TI uses its topics to condition
user-to-user influence.  Documents are individual posts and — unlike COLD —
every *word* carries its own topic assignment.
"""

from __future__ import annotations

import numpy as np

from ..datasets.corpus import Post, SocialCorpus


class LDAError(RuntimeError):
    """Raised on invalid LDA usage."""


class LDAModel:
    """Collapsed-Gibbs LDA over posts.

    Parameters
    ----------
    num_topics:
        Number of topics ``K``.
    alpha, beta:
        Dirichlet priors on document-topic and topic-word distributions;
        ``alpha`` defaults to the common ``50 / K`` rule.
    """

    def __init__(
        self,
        num_topics: int = 20,
        alpha: float | None = None,
        beta: float = 0.01,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise LDAError("num_topics must be positive")
        self.num_topics = num_topics
        self.alpha = 50.0 / num_topics if alpha is None else alpha
        self.beta = beta
        if self.alpha <= 0 or self.beta <= 0:
            raise LDAError("alpha and beta must be positive")
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.phi_: np.ndarray | None = None
        self.doc_topic_: np.ndarray | None = None
        self.corpus_: SocialCorpus | None = None

    # -- fitting -----------------------------------------------------------------

    def fit(self, corpus: SocialCorpus, num_iterations: int = 100) -> "LDAModel":
        """Run ``num_iterations`` collapsed Gibbs sweeps."""
        if num_iterations <= 0:
            raise LDAError("num_iterations must be positive")
        K, V = self.num_topics, corpus.vocab_size
        D = corpus.num_posts

        # Flatten tokens: doc_of[j], word_of[j] for token j; z[j] assignment.
        doc_of = np.concatenate(
            [np.full(len(post), d, dtype=np.int64) for d, post in enumerate(corpus.posts)]
        ) if D else np.zeros(0, np.int64)
        word_of = np.concatenate(
            [np.asarray(post.words, dtype=np.int64) for post in corpus.posts]
        ) if D else np.zeros(0, np.int64)
        num_tokens = len(word_of)
        z = self._rng.integers(K, size=num_tokens)

        n_doc_topic = np.zeros((D, K), dtype=np.int64)
        n_topic_word = np.zeros((K, V), dtype=np.int64)
        n_topic = np.zeros(K, dtype=np.int64)
        np.add.at(n_doc_topic, (doc_of, z), 1)
        np.add.at(n_topic_word, (z, word_of), 1)
        np.add.at(n_topic, z, 1)

        for _ in range(num_iterations):
            order = self._rng.permutation(num_tokens)
            for j in order:
                d, v, k = doc_of[j], word_of[j], z[j]
                n_doc_topic[d, k] -= 1
                n_topic_word[k, v] -= 1
                n_topic[k] -= 1
                weights = (
                    (n_doc_topic[d] + self.alpha)
                    * (n_topic_word[:, v] + self.beta)
                    / (n_topic + V * self.beta)
                )
                k = int(
                    np.searchsorted(
                        np.cumsum(weights), self._rng.random() * weights.sum()
                    )
                )
                k = min(k, K - 1)
                z[j] = k
                n_doc_topic[d, k] += 1
                n_topic_word[k, v] += 1
                n_topic[k] += 1

        self.phi_ = (n_topic_word + self.beta) / (
            n_topic[:, None] + V * self.beta
        )
        self.doc_topic_ = (n_doc_topic + self.alpha) / (
            n_doc_topic.sum(axis=1, keepdims=True) + K * self.alpha
        )
        self.corpus_ = corpus
        return self

    def _require_fit(self) -> np.ndarray:
        if self.phi_ is None:
            raise LDAError("model is not fitted; call fit() first")
        return self.phi_

    # -- derived quantities --------------------------------------------------------

    def user_topic_distribution(self) -> np.ndarray:
        """Per-user topic interest: membership-weighted average of the
        user's post-topic mixtures, ``(U, K)`` rows summing to 1."""
        self._require_fit()
        assert self.corpus_ is not None and self.doc_topic_ is not None
        U, K = self.corpus_.num_users, self.num_topics
        totals = np.zeros((U, K))
        counts = np.zeros(U)
        for d, post in enumerate(self.corpus_.posts):
            totals[post.author] += self.doc_topic_[d]
            counts[post.author] += 1
        counts = np.maximum(counts, 1.0)
        result = totals / counts[:, None]
        zero_rows = result.sum(axis=1) == 0
        result[zero_rows] = 1.0 / K
        return result / result.sum(axis=1, keepdims=True)

    def topic_posterior(self, words: tuple[int, ...] | list[int]) -> np.ndarray:
        """Fold-in topic posterior of an unseen bag of words:
        ``P(k | w) ∝ prod_l phi_k,w_l`` under a uniform topic prior."""
        phi = self._require_fit()
        if not words:
            raise LDAError("need at least one word")
        log_like = np.log(phi[:, list(words)] + 1e-300).sum(axis=1)
        log_like -= log_like.max()
        weights = np.exp(log_like)
        return weights / weights.sum()

    def log_post_probability(
        self, words: tuple[int, ...] | list[int], author: int
    ) -> float:
        """Held-out ``log p(w_d)`` for perplexity, mixing over the author's
        inferred topic interest (the LDA analogue of the §6.2 formula)."""
        phi = self._require_fit()
        prior = self.user_topic_distribution()[author]
        log_word = np.log(phi[:, list(words)] + 1e-300)
        # Per-word mixture (proper LDA predictive treats words independently
        # given the document mixture).
        per_word = prior @ np.exp(log_word - log_word.max(axis=0, keepdims=True))
        shift = log_word.max(axis=0)
        return float((np.log(np.maximum(per_word, 1e-300)) + shift).sum())

    def dominant_topic(self, post: Post) -> int:
        """Most likely topic of a post under the fold-in posterior."""
        return int(self.topic_posterior(post.words).argmax())
