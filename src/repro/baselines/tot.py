"""Topics over Time (TOT) [Wang & McCallum 2006].

A non-Markov continuous-time topic model: LDA plus a per-topic Beta density
over (normalised) document timestamps.  Each word's Gibbs weight carries the
Beta likelihood of its document's time, and the Beta parameters are updated
by moment matching after every sweep — the original paper's procedure.

COLD's §3.3 contrasts its multinomial ``psi`` with TOT's *unimodal* Beta:
TOT cannot represent topics that rise and fall repeatedly.  The baseline is
used directly (temporal modelling comparison) and inside the Pipeline
baseline (MMSB -> per-community TOT).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import beta as beta_dist

from ..datasets.corpus import Post, SocialCorpus


class TOTError(RuntimeError):
    """Raised on invalid TOT usage."""


def normalise_timestamp(timestamp: int, num_time_slices: int) -> float:
    """Map a discrete slice to the open unit interval (Beta support)."""
    return (timestamp + 0.5) / num_time_slices


def moment_match_beta(samples: np.ndarray) -> tuple[float, float]:
    """Beta(a, b) parameters matching the sample mean/variance.

    Falls back to the uniform Beta(1, 1) for degenerate samples (empty, or
    zero variance), keeping the sampler numerically safe early in a run.
    """
    if samples.size == 0:
        return 1.0, 1.0
    mean = float(samples.mean())
    var = float(samples.var())
    mean = min(max(mean, 1e-4), 1 - 1e-4)
    if var <= 1e-8:
        var = 1e-8
    common = mean * (1 - mean) / var - 1
    if common <= 0:
        return 1.0, 1.0
    a = max(mean * common, 1e-2)
    b = max((1 - mean) * common, 1e-2)
    # Cap to avoid numerically spiky densities on tiny clusters.
    return min(a, 1e3), min(b, 1e3)


class TOTModel:
    """Collapsed-Gibbs Topics-over-Time.

    After :meth:`fit`: ``phi_`` (topic-word), ``doc_topic_`` (per-post
    mixture), ``beta_params_`` (per-topic Beta over time).
    """

    def __init__(
        self,
        num_topics: int = 20,
        alpha: float | None = None,
        beta: float = 0.01,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise TOTError("num_topics must be positive")
        self.num_topics = num_topics
        self.alpha = 50.0 / num_topics if alpha is None else alpha
        self.beta = beta
        if self.alpha <= 0 or self.beta <= 0:
            raise TOTError("alpha and beta must be positive")
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.phi_: np.ndarray | None = None
        self.doc_topic_: np.ndarray | None = None
        self.beta_params_: np.ndarray | None = None  # (K, 2)
        self.num_time_slices_: int | None = None

    def fit(self, corpus: SocialCorpus, num_iterations: int = 100) -> "TOTModel":
        """Gibbs sweeps with per-sweep Beta moment matching."""
        if num_iterations <= 0:
            raise TOTError("num_iterations must be positive")
        K, V, D = self.num_topics, corpus.vocab_size, corpus.num_posts
        if D == 0:
            raise TOTError("corpus has no posts")
        self.num_time_slices_ = corpus.num_time_slices

        doc_of = np.concatenate(
            [np.full(len(post), d, dtype=np.int64) for d, post in enumerate(corpus.posts)]
        )
        word_of = np.concatenate(
            [np.asarray(post.words, dtype=np.int64) for post in corpus.posts]
        )
        doc_time = np.asarray(
            [
                normalise_timestamp(post.timestamp, corpus.num_time_slices)
                for post in corpus.posts
            ]
        )
        num_tokens = len(word_of)
        z = self._rng.integers(K, size=num_tokens)

        n_doc_topic = np.zeros((D, K), dtype=np.int64)
        n_topic_word = np.zeros((K, V), dtype=np.int64)
        n_topic = np.zeros(K, dtype=np.int64)
        np.add.at(n_doc_topic, (doc_of, z), 1)
        np.add.at(n_topic_word, (z, word_of), 1)
        np.add.at(n_topic, z, 1)

        beta_params = np.ones((K, 2))
        for _ in range(num_iterations):
            # Cache the Beta densities at each token's document time.
            densities = np.empty((K, num_tokens))
            for k in range(K):
                densities[k] = beta_dist.pdf(
                    doc_time[doc_of], beta_params[k, 0], beta_params[k, 1]
                )
            densities = np.maximum(densities, 1e-12)

            order = self._rng.permutation(num_tokens)
            for j in order:
                d, v, k = doc_of[j], word_of[j], z[j]
                n_doc_topic[d, k] -= 1
                n_topic_word[k, v] -= 1
                n_topic[k] -= 1
                weights = (
                    (n_doc_topic[d] + self.alpha)
                    * (n_topic_word[:, v] + self.beta)
                    / (n_topic + V * self.beta)
                    * densities[:, j]
                )
                k = int(
                    np.searchsorted(
                        np.cumsum(weights), self._rng.random() * weights.sum()
                    )
                )
                k = min(k, K - 1)
                z[j] = k
                n_doc_topic[d, k] += 1
                n_topic_word[k, v] += 1
                n_topic[k] += 1

            token_time = doc_time[doc_of]
            for k in range(K):
                beta_params[k] = moment_match_beta(token_time[z == k])

        self.phi_ = (n_topic_word + self.beta) / (n_topic[:, None] + V * self.beta)
        self.doc_topic_ = (n_doc_topic + self.alpha) / (
            n_doc_topic.sum(axis=1, keepdims=True) + K * self.alpha
        )
        self.beta_params_ = beta_params
        return self

    def _require_fit(self) -> np.ndarray:
        if self.phi_ is None:
            raise TOTError("model is not fitted; call fit() first")
        return self.phi_

    # -- derived -------------------------------------------------------------------

    def topic_proportions(self) -> np.ndarray:
        """Corpus-level topic weights (mean of post mixtures)."""
        self._require_fit()
        assert self.doc_topic_ is not None
        return self.doc_topic_.mean(axis=0)

    def temporal_distribution(self) -> np.ndarray:
        """Per-topic Beta densities discretised over the ``T`` slices,
        normalised — the TOT analogue of COLD's ``psi_k`` (``(K, T)``)."""
        self._require_fit()
        assert self.beta_params_ is not None and self.num_time_slices_ is not None
        T = self.num_time_slices_
        centers = (np.arange(T) + 0.5) / T
        psi = np.empty((self.num_topics, T))
        for k in range(self.num_topics):
            psi[k] = beta_dist.pdf(centers, *self.beta_params_[k])
        psi = np.maximum(psi, 1e-12)
        return psi / psi.sum(axis=1, keepdims=True)

    def timestamp_scores(self, post: Post) -> np.ndarray:
        """Per-slice likelihood for time-stamp prediction:
        ``score(t) = sum_k P(k) psi_k[t] prod_l phi_k,w_l``."""
        phi = self._require_fit()
        log_word = np.log(phi[:, list(post.words)] + 1e-300).sum(axis=1)
        word_like = np.exp(log_word - log_word.max())
        weights = self.topic_proportions() * word_like  # (K,)
        return weights @ self.temporal_distribution()  # (T,)

    def predict_timestamp(self, post: Post) -> int:
        """Maximum-likelihood time slice of an unseen post."""
        return int(self.timestamp_scores(post).argmax())
