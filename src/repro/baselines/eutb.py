"""Enhanced User-Temporal model with Burst-weighted smoothing (EUTB).

Follows Yin et al., "A unified model for stable and temporal topic
detection from social media data" (ICDE 2013), the paper's strongest
temporal-modelling baseline: each word's topic is generated *either* by its
author (stable interest) *or* by its time slice (temporal burst), chosen by
a per-user Bernoulli switch with a Beta prior.  After fitting, the
time-slice topic distributions are smoothed with burst weights — slices
with above-average volume keep their sharp distribution, quiet slices are
shrunk toward their neighbours.

EUTB has no notion of communities: its temporal dynamics are shared across
all users at a given slice, which is exactly the limitation COLD's
community-specific ``psi`` removes (Fig. 11's gap between COLD-NoLink and
EUTB measures the value of that refinement).
"""

from __future__ import annotations

import numpy as np

from ..datasets.corpus import Post, SocialCorpus


class EUTBError(RuntimeError):
    """Raised on invalid EUTB usage."""


class EUTBModel:
    """Collapsed-Gibbs user/time switched topic model.

    After :meth:`fit`:

    * ``user_topic_`` — ``(U, K)`` stable user interests;
    * ``time_topic_`` — ``(T, K)`` burst-smoothed temporal topic mixes;
    * ``phi_``        — ``(K, V)`` topic-word distributions;
    * ``switch_``     — ``(U,)`` per-user probability of the temporal route.
    """

    def __init__(
        self,
        num_topics: int = 20,
        alpha: float | None = None,
        beta: float = 0.01,
        gamma: float = 1.0,
        smoothing: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise EUTBError("num_topics must be positive")
        self.num_topics = num_topics
        self.alpha = 50.0 / num_topics if alpha is None else alpha
        self.beta = beta
        self.gamma = gamma  # Beta(gamma, gamma) prior on the switch
        self.smoothing = smoothing  # neighbour-smoothing strength in [0, 1]
        if min(self.alpha, self.beta, self.gamma) <= 0:
            raise EUTBError("alpha, beta and gamma must be positive")
        if not 0 <= smoothing <= 1:
            raise EUTBError("smoothing must lie in [0, 1]")
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.user_topic_: np.ndarray | None = None
        self.time_topic_: np.ndarray | None = None
        self.phi_: np.ndarray | None = None
        self.switch_: np.ndarray | None = None

    def fit(self, corpus: SocialCorpus, num_iterations: int = 100) -> "EUTBModel":
        if num_iterations <= 0:
            raise EUTBError("num_iterations must be positive")
        K, V = self.num_topics, corpus.vocab_size
        U, T = corpus.num_users, corpus.num_time_slices

        user_of = np.concatenate(
            [np.full(len(post), post.author, dtype=np.int64) for post in corpus.posts]
        )
        time_of = np.concatenate(
            [np.full(len(post), post.timestamp, dtype=np.int64) for post in corpus.posts]
        )
        word_of = np.concatenate(
            [np.asarray(post.words, dtype=np.int64) for post in corpus.posts]
        )
        num_tokens = len(word_of)
        z = self._rng.integers(K, size=num_tokens)
        x = self._rng.integers(2, size=num_tokens)  # 0 = user route, 1 = time

        n_user_topic = np.zeros((U, K), dtype=np.int64)
        n_time_topic = np.zeros((T, K), dtype=np.int64)
        n_topic_word = np.zeros((K, V), dtype=np.int64)
        n_topic = np.zeros(K, dtype=np.int64)
        n_switch = np.zeros((U, 2), dtype=np.int64)
        for j in range(num_tokens):
            if x[j] == 0:
                n_user_topic[user_of[j], z[j]] += 1
            else:
                n_time_topic[time_of[j], z[j]] += 1
            n_topic_word[z[j], word_of[j]] += 1
            n_topic[z[j]] += 1
            n_switch[user_of[j], x[j]] += 1

        for _ in range(num_iterations):
            order = self._rng.permutation(num_tokens)
            for j in order:
                u, t, v = user_of[j], time_of[j], word_of[j]
                k, route = z[j], x[j]
                if route == 0:
                    n_user_topic[u, k] -= 1
                else:
                    n_time_topic[t, k] -= 1
                n_topic_word[k, v] -= 1
                n_topic[k] -= 1
                n_switch[u, route] -= 1

                word_term = (n_topic_word[:, v] + self.beta) / (
                    n_topic + V * self.beta
                )
                user_route = (
                    (n_switch[u, 0] + self.gamma)
                    * (n_user_topic[u] + self.alpha)
                    / (n_user_topic[u].sum() + K * self.alpha)
                )
                time_route = (
                    (n_switch[u, 1] + self.gamma)
                    * (n_time_topic[t] + self.alpha)
                    / (n_time_topic[t].sum() + K * self.alpha)
                )
                weights = np.concatenate(
                    [user_route * word_term, time_route * word_term]
                )
                index = int(
                    np.searchsorted(
                        np.cumsum(weights), self._rng.random() * weights.sum()
                    )
                )
                index = min(index, 2 * K - 1)
                route, k = divmod(index, K)
                z[j], x[j] = k, route
                if route == 0:
                    n_user_topic[u, k] += 1
                else:
                    n_time_topic[t, k] += 1
                n_topic_word[k, v] += 1
                n_topic[k] += 1
                n_switch[u, route] += 1

        self.phi_ = (n_topic_word + self.beta) / (n_topic[:, None] + V * self.beta)
        self.user_topic_ = (n_user_topic + self.alpha) / (
            n_user_topic.sum(axis=1, keepdims=True) + K * self.alpha
        )
        raw_time = (n_time_topic + self.alpha) / (
            n_time_topic.sum(axis=1, keepdims=True) + K * self.alpha
        )
        self.time_topic_ = self._burst_weighted_smoothing(
            raw_time, n_time_topic.sum(axis=1)
        )
        self.switch_ = (n_switch[:, 1] + self.gamma) / (
            n_switch.sum(axis=1) + 2 * self.gamma
        )
        return self

    def _burst_weighted_smoothing(
        self, time_topic: np.ndarray, volumes: np.ndarray
    ) -> np.ndarray:
        """Blend each slice with its neighbours, weighted by burstiness.

        Bursty slices (volume above the mean) trust their own distribution;
        quiet slices borrow from neighbours — the 'burst-weighted
        smoothing' that gives EUTB its edge in time-stamp prediction.
        """
        T = time_topic.shape[0]
        if T == 1 or self.smoothing == 0:
            return time_topic
        mean_volume = max(volumes.mean(), 1e-12)
        burst = np.minimum(volumes / mean_volume, 1.0)  # 1 = fully bursty
        smoothed = time_topic.copy()
        for t in range(T):
            neighbours = [s for s in (t - 1, t + 1) if 0 <= s < T]
            neighbour_mean = time_topic[neighbours].mean(axis=0)
            own_weight = burst[t] + (1 - burst[t]) * (1 - self.smoothing)
            smoothed[t] = own_weight * time_topic[t] + (1 - own_weight) * neighbour_mean
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    def _require_fit(self) -> None:
        if self.phi_ is None:
            raise EUTBError("model is not fitted; call fit() first")

    # -- predictions -----------------------------------------------------------

    def timestamp_scores(self, post: Post) -> np.ndarray:
        """``score(t) = prod_l sum_k mix_k(t) phi_k,w_l`` where the mixture
        blends the author's stable interest with slice ``t``'s topics by the
        author's switch probability."""
        self._require_fit()
        assert (
            self.phi_ is not None
            and self.user_topic_ is not None
            and self.time_topic_ is not None
            and self.switch_ is not None
        )
        lam = self.switch_[post.author]
        mixtures = (1 - lam) * self.user_topic_[post.author][None, :] + (
            lam * self.time_topic_
        )  # (T, K)
        word_like = self.phi_[:, list(post.words)]  # (K, L)
        per_word = mixtures @ word_like  # (T, L)
        return np.exp(np.log(np.maximum(per_word, 1e-300)).sum(axis=1))

    def predict_timestamp(self, post: Post) -> int:
        return int(self.timestamp_scores(post).argmax())

    def log_post_probability(
        self, words: tuple[int, ...] | list[int], author: int
    ) -> float:
        """Held-out ``log p(w_d)`` marginalising the time route uniformly."""
        self._require_fit()
        assert (
            self.phi_ is not None
            and self.user_topic_ is not None
            and self.time_topic_ is not None
            and self.switch_ is not None
        )
        if not words:
            raise EUTBError("need at least one word")
        lam = self.switch_[author]
        mixture = (1 - lam) * self.user_topic_[author] + lam * self.time_topic_.mean(
            axis=0
        )
        log_word = np.log(self.phi_[:, list(words)] + 1e-300)
        shift = log_word.max(axis=0)
        per_word = mixture @ np.exp(log_word - shift)
        return float((np.log(np.maximum(per_word, 1e-300)) + shift).sum())
