"""Pipelined community-level temporal dynamics (paper §6.1, baseline 5).

The paper's strawman for *decoupled* extraction: first run MMSB on the
network to assign each user to their two most probable communities, then
run Topics-over-Time on each community's post collection separately.  The
two stages never exchange information, so the interdependence between
network and content — which COLD models jointly — is lost; §6.3 shows this
costs substantial time-stamp prediction accuracy.
"""

from __future__ import annotations

import numpy as np

from ..datasets.corpus import Post, SocialCorpus
from .mmsb import MMSBModel
from .tot import TOTModel


class PipelineError(RuntimeError):
    """Raised on invalid Pipeline usage."""


class PipelineModel:
    """MMSB -> per-community TOT pipeline.

    After :meth:`fit`:

    * ``mmsb_`` — the fitted network stage;
    * ``community_models_`` — one fitted :class:`TOTModel` per community
      that received posts (``None`` for empty communities);
    * ``user_communities_`` — each user's top-2 community assignment.
    """

    def __init__(
        self,
        num_communities: int = 10,
        num_topics: int = 10,
        communities_per_user: int = 2,
        seed: int = 0,
    ) -> None:
        if num_communities <= 0 or num_topics <= 0:
            raise PipelineError("num_communities and num_topics must be positive")
        if communities_per_user <= 0:
            raise PipelineError("communities_per_user must be positive")
        self.num_communities = num_communities
        self.num_topics = num_topics
        self.communities_per_user = communities_per_user
        self.seed = seed
        self.mmsb_: MMSBModel | None = None
        self.community_models_: list[TOTModel | None] | None = None
        self.user_communities_: list[list[int]] | None = None

    def fit(
        self,
        corpus: SocialCorpus,
        network_iterations: int = 50,
        text_iterations: int = 50,
    ) -> "PipelineModel":
        mmsb = MMSBModel(self.num_communities, seed=self.seed).fit(
            corpus, num_iterations=network_iterations
        )
        user_communities = [
            mmsb.top_communities(user, self.communities_per_user)
            for user in range(corpus.num_users)
        ]

        members: list[list[int]] = [[] for _ in range(self.num_communities)]
        for user, communities in enumerate(user_communities):
            for c in communities:
                members[c].append(user)
        member_sets = [set(m) for m in members]

        community_models: list[TOTModel | None] = []
        for c in range(self.num_communities):
            post_indices = [
                idx
                for idx, post in enumerate(corpus.posts)
                if post.author in member_sets[c]
            ]
            if len(post_indices) < self.num_topics:
                community_models.append(None)
                continue
            sub_corpus = corpus.subset_posts(post_indices)
            model = TOTModel(self.num_topics, seed=self.seed + c + 1).fit(
                sub_corpus, num_iterations=text_iterations
            )
            community_models.append(model)

        if all(model is None for model in community_models):
            raise PipelineError("no community received enough posts to fit TOT")
        self.mmsb_ = mmsb
        self.community_models_ = community_models
        self.user_communities_ = user_communities
        return self

    def _require_fit(self) -> None:
        if self.community_models_ is None:
            raise PipelineError("model is not fitted; call fit() first")

    # -- predictions ---------------------------------------------------------------

    def timestamp_scores(self, post: Post) -> np.ndarray:
        """Mixture of the author's communities' TOT slice likelihoods:

        ``score(t) = sum_{c in top2(i)} pi_ic sum_k P_c(k) psi^c_k[t]
        prod_l phi^c_k,w_l``.
        """
        self._require_fit()
        assert (
            self.mmsb_ is not None
            and self.mmsb_.pi_ is not None
            and self.community_models_ is not None
            and self.user_communities_ is not None
        )
        scores: np.ndarray | None = None
        total_weight = 0.0
        for c in self.user_communities_[post.author]:
            model = self.community_models_[c]
            if model is None:
                continue
            weight = float(self.mmsb_.pi_[post.author, c])
            contribution = weight * model.timestamp_scores(post)
            scores = contribution if scores is None else scores + contribution
            total_weight += weight
        if scores is None:
            # Author's communities have no text model: fall back to any
            # fitted community (uninformed but well-defined).
            fallback = next(m for m in self.community_models_ if m is not None)
            return fallback.timestamp_scores(post)
        return scores

    def predict_timestamp(self, post: Post) -> int:
        return int(self.timestamp_scores(post).argmax())

    def community_temporal_distribution(self, community: int) -> np.ndarray | None:
        """Community's per-topic temporal curves (``(K, T)``), or ``None``
        when that community had too few posts to fit."""
        self._require_fit()
        assert self.community_models_ is not None
        if not 0 <= community < self.num_communities:
            raise PipelineError(f"community {community} out of range")
        model = self.community_models_[community]
        return None if model is None else model.temporal_distribution()
