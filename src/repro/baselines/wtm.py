"""Whom To Mention (WTM) [Wang et al., WWW 2013], adapted as a retweet ranker.

WTM ranks candidate users by who would retweet a post and extend its
diffusion, using hand-crafted features: user-interest match with the post
content, content-dependent user-user relationship, and user influence.  We
implement the feature family and train the combination weights with a
from-scratch logistic regression on observed retweet events — the
individual-level, feature-engineering paradigm the paper contrasts with
COLD's community-level representation (Figs. 12, 15).

The online cost is dominated by the O(V) content-feature computations per
candidate (no compact topical profile exists), which is why WTM is slow in
the prediction-time study (Fig. 15).
"""

from __future__ import annotations

import numpy as np

from ..datasets.cascades import RetweetTuple
from ..datasets.corpus import SocialCorpus


class WTMError(RuntimeError):
    """Raised on invalid WTM usage."""


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0:
        return 0.0
    return float(a @ b) / denom


class LogisticRegression:
    """Minimal batch-gradient-descent logistic regression (no sklearn)."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        num_epochs: int = 300,
        l2: float = 1e-3,
    ) -> None:
        if learning_rate <= 0 or num_epochs <= 0 or l2 < 0:
            raise WTMError("invalid logistic-regression settings")
        self.learning_rate = learning_rate
        self.num_epochs = num_epochs
        self.l2 = l2
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        if features.ndim != 2 or len(features) != len(labels):
            raise WTMError("features must be (N, F) matching labels (N,)")
        n, f = features.shape
        weights = np.zeros(f)
        bias = 0.0
        for _ in range(self.num_epochs):
            predictions = self._sigmoid(features @ weights + bias)
            error = predictions - labels
            grad_w = features.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.weights_ = weights
        self.bias_ = bias
        return self

    def decision(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise WTMError("regression is not fitted")
        return features @ self.weights_ + self.bias_


class WTMModel:
    """Feature-based retweet prediction with learned weights.

    Features per (author i, candidate i', post d) — the WTM paper's three
    families (it ranks *mention* targets, so there is no per-pair diffusion
    history, only content and influence signals):

    0. interest match — cosine(candidate word profile, post words);
    1. content-dependent relationship — cosine(candidate profile, author
       profile);
    2. author influence   — log1p(author's follower count);
    3. candidate activity — log1p(candidate's overall retweet count).
    """

    NUM_FEATURES = 4

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._regression: LogisticRegression | None = None
        self._user_words: np.ndarray | None = None
        self._out_degree: np.ndarray | None = None
        self._activity: np.ndarray | None = None
        self._vocab_size = 0

    def fit(
        self, corpus: SocialCorpus, train_tuples: list[RetweetTuple]
    ) -> "WTMModel":
        """Build feature tables from the corpus and train the ranker."""
        if not train_tuples:
            raise WTMError("need at least one training tuple")
        self._vocab_size = corpus.vocab_size
        self._user_words = corpus.word_count_matrix().astype(np.float64)
        out_degree = np.zeros(corpus.num_users)
        for src, _dst in corpus.links:
            out_degree[src] += 1
        self._out_degree = out_degree

        activity = np.zeros(corpus.num_users)
        for t in train_tuples:
            for retweeter in t.retweeters:
                activity[retweeter] += 1
        self._activity = activity

        rows: list[np.ndarray] = []
        labels: list[int] = []
        for t in train_tuples:
            post_vector = self._post_vector(corpus.posts[t.post_index].words)
            for candidate in t.retweeters:
                rows.append(self._features(t.author, candidate, post_vector))
                labels.append(1)
            for candidate in t.ignorers:
                rows.append(self._features(t.author, candidate, post_vector))
                labels.append(0)
        features = np.vstack(rows)
        # Standardise for stable gradient descent.
        self._feature_mean = features.mean(axis=0)
        self._feature_std = np.maximum(features.std(axis=0), 1e-8)
        standardised = (features - self._feature_mean) / self._feature_std
        self._regression = LogisticRegression().fit(
            standardised, np.asarray(labels, dtype=np.float64)
        )
        return self

    def _post_vector(self, words: tuple[int, ...] | list[int]) -> np.ndarray:
        vector = np.zeros(self._vocab_size)
        for w in words:
            vector[w] += 1
        return vector

    def _features(
        self, author: int, candidate: int, post_vector: np.ndarray
    ) -> np.ndarray:
        assert (
            self._user_words is not None
            and self._out_degree is not None
            and self._activity is not None
        )
        candidate_words = self._user_words[candidate]
        author_words = self._user_words[author]
        return np.asarray(
            [
                _cosine(candidate_words, post_vector),
                _cosine(candidate_words, author_words),
                np.log1p(self._out_degree[author]),
                np.log1p(self._activity[candidate]),
            ]
        )

    def diffusion_score(
        self, author: int, candidate: int, words: tuple[int, ...] | list[int]
    ) -> float:
        """Ranking score that post ``words`` by ``author`` is retweeted by
        ``candidate``; higher means more likely."""
        scores = self.score_candidates(author, [candidate], words)
        return float(scores[0])

    def score_candidates(
        self, author: int, candidates: list[int], words: tuple[int, ...] | list[int]
    ) -> np.ndarray:
        if self._regression is None:
            raise WTMError("model is not fitted; call fit() first")
        post_vector = self._post_vector(words)
        rows = np.vstack(
            [self._features(author, candidate, post_vector) for candidate in candidates]
        )
        standardised = (rows - self._feature_mean) / self._feature_std
        return self._regression.decision(standardised)
