"""Comparison systems (paper §6.1, Table 2), implemented from scratch.

Every baseline the paper compares against: PMTLM, MMSB, EUTB, COLD-NoLink,
Pipeline (MMSB + TOT), WTM and TI, plus LDA and TOT as shared building
blocks, and the Table-2 capability matrix.
"""

from .capabilities import (
    CAPABILITIES,
    FEATURES,
    TASKS,
    MethodCapabilities,
    capability_table,
    find_method,
)
from .cold_nolink import COLDNoLinkModel
from .eutb import EUTBError, EUTBModel
from .lda import LDAError, LDAModel
from .mmsb import MMSBError, MMSBModel
from .pipeline import PipelineError, PipelineModel
from .pmtlm import PMTLMError, PMTLMModel
from .ti import TIError, TIModel
from .tot import TOTError, TOTModel, moment_match_beta, normalise_timestamp
from .wtm import LogisticRegression, WTMError, WTMModel

__all__ = [
    "CAPABILITIES",
    "COLDNoLinkModel",
    "EUTBError",
    "EUTBModel",
    "FEATURES",
    "LDAError",
    "LDAModel",
    "LogisticRegression",
    "MMSBError",
    "MMSBModel",
    "MethodCapabilities",
    "PMTLMError",
    "PMTLMModel",
    "PipelineError",
    "PipelineModel",
    "TASKS",
    "TIError",
    "TIModel",
    "TOTError",
    "TOTModel",
    "WTMError",
    "WTMModel",
    "capability_table",
    "find_method",
    "moment_match_beta",
    "normalise_timestamp",
]
