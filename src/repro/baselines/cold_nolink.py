"""COLD without the network component (paper §6.1, baseline 4).

A thin, explicit wrapper over :class:`~repro.core.model.COLDModel` with
``include_network=False``: the link variables (and ``eta``) are never
sampled, isolating the contribution of the network feature in the
time-stamp prediction study (Fig. 11).
"""

from __future__ import annotations

from ..core.model import COLDModel
from ..core.params import Hyperparameters


class COLDNoLinkModel(COLDModel):
    """COLD-NoLink: identical inference, network component disabled."""

    def __init__(
        self,
        num_communities: int = 20,
        num_topics: int = 20,
        hyperparameters: Hyperparameters | None = None,
        prior: str = "paper",
        seed: int = 0,
    ) -> None:
        super().__init__(
            num_communities=num_communities,
            num_topics=num_topics,
            hyperparameters=hyperparameters,
            include_network=False,
            prior=prior,
            seed=seed,
        )

    def __repr__(self) -> str:
        status = "fitted" if self.fitted else "unfitted"
        return (
            f"COLDNoLinkModel(C={self.num_communities}, "
            f"K={self.num_topics}, {status})"
        )
