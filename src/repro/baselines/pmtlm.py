"""Poisson Mixed-Topic Link Model (PMTLM) [Zhu et al. 2013], adapted.

PMTLM generates text and links from the *same* latent factor space: a
factor acts as a topic when generating words and as a community when
generating links — the one-to-one topic/community coupling the COLD paper
argues against (§2, §6.2).  Following the paper's remark that text-link
models treat each user's post collection as one huge document, documents
here are users.

Inference is collapsed Gibbs: per-word factor assignments (LDA-style, with
user-level mixtures) plus a per-link factor indicator whose likelihood uses
an assortative per-factor rate with the same implicit-negative Beta prior
as COLD, keeping the comparison apples-to-apples.  The original model's
Poisson emission reduces to this Bernoulli form on 0/1 adjacency.
"""

from __future__ import annotations

import numpy as np

from ..core.params import negative_link_prior
from ..datasets.corpus import SocialCorpus


class PMTLMError(RuntimeError):
    """Raised on invalid PMTLM usage."""


class PMTLMModel:
    """Single-factor-space text + link model.

    After :meth:`fit`: ``pi_`` (``(U, K)`` user factor mixtures), ``phi_``
    (``(K, V)`` factor-word distributions), ``eta_`` (``(K,)`` per-factor
    link rates).
    """

    def __init__(
        self,
        num_factors: int = 20,
        rho: float | None = None,
        beta: float = 0.01,
        lambda1: float = 0.1,
        kappa: float = 1.0,
        seed: int = 0,
    ) -> None:
        if num_factors <= 0:
            raise PMTLMError("num_factors must be positive")
        self.num_factors = num_factors
        self.rho = 50.0 / num_factors if rho is None else rho
        self.beta = beta
        self.lambda1 = lambda1
        self.kappa = kappa
        if min(self.rho, self.beta, self.lambda1, self.kappa) <= 0:
            raise PMTLMError("rho, beta, lambda1 and kappa must be positive")
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.pi_: np.ndarray | None = None
        self.phi_: np.ndarray | None = None
        self.eta_: np.ndarray | None = None

    def fit(self, corpus: SocialCorpus, num_iterations: int = 100) -> "PMTLMModel":
        if num_iterations <= 0:
            raise PMTLMError("num_iterations must be positive")
        K, V, U = self.num_factors, corpus.vocab_size, corpus.num_users
        links = corpus.link_array()
        E = len(links)
        lambda0 = negative_link_prior(corpus, K, self.kappa)

        user_of = np.concatenate(
            [np.full(len(post), post.author, dtype=np.int64) for post in corpus.posts]
        ) if corpus.num_posts else np.zeros(0, np.int64)
        word_of = np.concatenate(
            [np.asarray(post.words, dtype=np.int64) for post in corpus.posts]
        ) if corpus.num_posts else np.zeros(0, np.int64)
        num_tokens = len(word_of)
        z = self._rng.integers(K, size=num_tokens)
        link_factor = self._rng.integers(K, size=E)

        # The single factor space: words AND link endpoints share n_user_factor.
        n_user_factor = np.zeros((U, K), dtype=np.int64)
        n_factor_word = np.zeros((K, V), dtype=np.int64)
        n_factor = np.zeros(K, dtype=np.int64)
        n_factor_link = np.zeros(K, dtype=np.int64)
        np.add.at(n_user_factor, (user_of, z), 1)
        np.add.at(n_factor_word, (z, word_of), 1)
        np.add.at(n_factor, z, 1)
        for e in range(E):
            f = link_factor[e]
            n_user_factor[links[e, 0], f] += 1
            n_user_factor[links[e, 1], f] += 1
            n_factor_link[f] += 1

        for _ in range(num_iterations):
            order = self._rng.permutation(num_tokens)
            for j in order:
                u, v, k = user_of[j], word_of[j], z[j]
                n_user_factor[u, k] -= 1
                n_factor_word[k, v] -= 1
                n_factor[k] -= 1
                weights = (
                    (n_user_factor[u] + self.rho)
                    * (n_factor_word[:, v] + self.beta)
                    / (n_factor + V * self.beta)
                )
                k = int(
                    np.searchsorted(
                        np.cumsum(weights), self._rng.random() * weights.sum()
                    )
                )
                k = min(k, K - 1)
                z[j] = k
                n_user_factor[u, k] += 1
                n_factor_word[k, v] += 1
                n_factor[k] += 1

            for e in self._rng.permutation(E):
                src, dst = links[e]
                f = link_factor[e]
                n_user_factor[src, f] -= 1
                n_user_factor[dst, f] -= 1
                n_factor_link[f] -= 1
                rate = (n_factor_link + self.lambda1) / (
                    n_factor_link + lambda0 + self.lambda1
                )
                weights = (
                    (n_user_factor[src] + self.rho)
                    * (n_user_factor[dst] + self.rho)
                    * rate
                )
                f = int(
                    np.searchsorted(
                        np.cumsum(weights), self._rng.random() * weights.sum()
                    )
                )
                f = min(f, K - 1)
                link_factor[e] = f
                n_user_factor[src, f] += 1
                n_user_factor[dst, f] += 1
                n_factor_link[f] += 1

        self.pi_ = (n_user_factor + self.rho) / (
            n_user_factor.sum(axis=1, keepdims=True) + K * self.rho
        )
        self.phi_ = (n_factor_word + self.beta) / (
            n_factor[:, None] + V * self.beta
        )
        self.eta_ = (n_factor_link + self.lambda1) / (
            n_factor_link + lambda0 + self.lambda1
        )
        return self

    def _require_fit(self) -> None:
        if self.pi_ is None:
            raise PMTLMError("model is not fitted; call fit() first")

    def log_post_probability(
        self, words: tuple[int, ...] | list[int], author: int
    ) -> float:
        """Held-out ``log p(w_d)`` under the user's factor mixture."""
        self._require_fit()
        assert self.pi_ is not None and self.phi_ is not None
        if not words:
            raise PMTLMError("need at least one word")
        log_word = np.log(self.phi_[:, list(words)] + 1e-300)
        shift = log_word.max(axis=0)
        per_word = self.pi_[author] @ np.exp(log_word - shift)
        return float((np.log(np.maximum(per_word, 1e-300)) + shift).sum())

    def link_score(
        self, source: int | np.ndarray, target: int | np.ndarray
    ) -> np.ndarray:
        """``P(i -> i') = sum_k pi_ik pi_i'k eta_k`` (assortative)."""
        self._require_fit()
        assert self.pi_ is not None and self.eta_ is not None
        source = np.atleast_1d(np.asarray(source, dtype=np.int64))
        target = np.atleast_1d(np.asarray(target, dtype=np.int64))
        return np.einsum(
            "nk,nk,k->n", self.pi_[source], self.pi_[target], self.eta_
        )
