"""Method capability matrix (paper Table 2).

Table 2 compares the input features each method consumes (text, social
network, time) and the tasks it supports (topic extraction, community
detection, temporal modelling, diffusion prediction).  The matrix below is
the machine-readable equivalent, with each row backed by the implementation
in this package; the Table-2 bench renders and cross-checks it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Canonical column names, in the paper's order.
FEATURES = ("text", "social", "time")
TASKS = ("topic_extraction", "community_detection", "temporal_modeling", "diffusion_prediction")


@dataclass(frozen=True)
class MethodCapabilities:
    """One Table-2 row: which features a method uses, which tasks it serves."""

    name: str
    features: frozenset[str]
    tasks: frozenset[str]
    module: str

    def uses(self, feature: str) -> bool:
        if feature not in FEATURES:
            raise ValueError(f"unknown feature {feature!r}")
        return feature in self.features

    def supports(self, task: str) -> bool:
        if task not in TASKS:
            raise ValueError(f"unknown task {task!r}")
        return task in self.tasks


def _row(name: str, features: tuple[str, ...], tasks: tuple[str, ...], module: str) -> MethodCapabilities:
    return MethodCapabilities(
        name=name, features=frozenset(features), tasks=frozenset(tasks), module=module
    )


#: The Table-2 matrix, one entry per compared method.
CAPABILITIES: tuple[MethodCapabilities, ...] = (
    _row(
        "PMTLM",
        ("text", "social"),
        ("topic_extraction", "community_detection"),
        "repro.baselines.pmtlm",
    ),
    _row(
        "MMSB",
        ("social",),
        ("community_detection",),
        "repro.baselines.mmsb",
    ),
    _row(
        "EUTB",
        ("text", "social", "time"),
        ("topic_extraction", "temporal_modeling"),
        "repro.baselines.eutb",
    ),
    _row(
        "Pipeline",
        ("text", "social", "time"),
        ("topic_extraction", "community_detection", "temporal_modeling"),
        "repro.baselines.pipeline",
    ),
    _row(
        "WTM",
        ("text", "social"),
        ("diffusion_prediction",),
        "repro.baselines.wtm",
    ),
    _row(
        "TI",
        ("text", "social"),
        ("topic_extraction", "diffusion_prediction"),
        "repro.baselines.ti",
    ),
    _row(
        "COLD",
        ("text", "social", "time"),
        (
            "topic_extraction",
            "community_detection",
            "temporal_modeling",
            "diffusion_prediction",
        ),
        "repro.core.model",
    ),
)


def capability_table() -> str:
    """Render Table 2 as aligned ASCII (the bench prints this)."""
    header = ["method"] + [f"f:{f}" for f in FEATURES] + [f"t:{t[:9]}" for t in TASKS]
    rows = [header]
    for method in CAPABILITIES:
        rows.append(
            [method.name]
            + ["x" if method.uses(f) else "" for f in FEATURES]
            + ["x" if method.supports(t) else "" for t in TASKS]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def find_method(name: str) -> MethodCapabilities:
    """Look up one Table-2 row by method name (case-insensitive)."""
    for method in CAPABILITIES:
        if method.name.lower() == name.lower():
            return method
    raise KeyError(f"unknown method {name!r}")
