"""Topic-level Influence (TI) [Liu et al., CIKM 2010], adapted.

TI estimates user-to-user influence *per topic* directly from individual
interaction histories, then predicts whether a user retweets a friend's
post by combining the post's topic distribution with direct and one-hop
indirect influence.  It is the paper's strongest individual-level diffusion
baseline (Figs. 12, 15): expressive, but fragile where individual histories
are sparse and expensive online because prediction walks multi-hop
neighbourhoods instead of a compact profile.
"""

from __future__ import annotations

import numpy as np

from ..datasets.cascades import RetweetTuple
from ..datasets.corpus import SocialCorpus
from .lda import LDAModel


class TIError(RuntimeError):
    """Raised on invalid TI usage."""


class TIModel:
    """Topic-conditioned user influence with one-hop propagation.

    Direct influence is the smoothed retweet rate::

        inf_k(i -> i') = n_retweets_k(i -> i') / (n_posts_k(i) + smoothing)

    where topic labels come from a fitted LDA's dominant-topic assignment.
    Prediction (``diffusion_score``) mixes direct and one-hop indirect
    influence weighted by the post's LDA topic posterior.
    """

    def __init__(
        self,
        num_topics: int = 20,
        smoothing: float = 1.0,
        indirect_weight: float = 0.5,
        backoff: float = 0.3,
        seed: int = 0,
    ) -> None:
        if num_topics <= 0:
            raise TIError("num_topics must be positive")
        if smoothing <= 0:
            raise TIError("smoothing must be positive")
        if not 0 <= indirect_weight <= 1:
            raise TIError("indirect_weight must lie in [0, 1]")
        if not 0 <= backoff <= 1:
            raise TIError("backoff must lie in [0, 1]")
        self.num_topics = num_topics
        self.smoothing = smoothing
        self.indirect_weight = indirect_weight
        # Weight of the topic-agnostic background influence (Liu et al.'s
        # background component); shields per-topic rates from sparsity.
        self.backoff = backoff
        self.seed = seed
        self.lda_: LDAModel | None = None
        # influence_[k][src] = {dst: strength}
        self.influence_: list[dict[int, dict[int, float]]] | None = None
        # background_[src] = {dst: topic-agnostic retweet rate}
        self.background_: dict[int, dict[int, float]] | None = None

    def fit(
        self,
        corpus: SocialCorpus,
        train_tuples: list[RetweetTuple],
        lda_iterations: int = 60,
    ) -> "TIModel":
        """Fit LDA topics, label posts, and tabulate per-topic influence."""
        if not train_tuples:
            raise TIError("need at least one training tuple")
        lda = LDAModel(self.num_topics, seed=self.seed).fit(
            corpus, num_iterations=lda_iterations
        )
        assert lda.doc_topic_ is not None
        post_topic = lda.doc_topic_.argmax(axis=1)  # dominant topic per post

        # n_posts_k(i): exposure counts — author's posts per topic that
        # appeared in the training tuples (the denominator of the rate).
        exposures: dict[tuple[int, int], int] = {}
        retweets: dict[tuple[int, int, int], int] = {}
        for t in train_tuples:
            k = int(post_topic[t.post_index])
            exposures[(t.author, k)] = exposures.get((t.author, k), 0) + 1
            for retweeter in t.retweeters:
                key = (k, t.author, retweeter)
                retweets[key] = retweets.get(key, 0) + 1

        influence: list[dict[int, dict[int, float]]] = [
            {} for _ in range(self.num_topics)
        ]
        for (k, src, dst), count in retweets.items():
            rate = count / (exposures[(src, k)] + self.smoothing)
            influence[k].setdefault(src, {})[dst] = min(rate, 1.0)

        # Topic-agnostic background rates (all topics pooled).
        total_exposures: dict[int, int] = {}
        for (src, _k), count in exposures.items():
            total_exposures[src] = total_exposures.get(src, 0) + count
        pair_counts: dict[tuple[int, int], int] = {}
        for (_k, src, dst), count in retweets.items():
            pair_counts[(src, dst)] = pair_counts.get((src, dst), 0) + count
        background: dict[int, dict[int, float]] = {}
        for (src, dst), count in pair_counts.items():
            rate = count / (total_exposures[src] + self.smoothing)
            background.setdefault(src, {})[dst] = min(rate, 1.0)

        self.lda_ = lda
        self.influence_ = influence
        self.background_ = background
        return self

    def _require_fit(self) -> None:
        if self.influence_ is None or self.lda_ is None:
            raise TIError("model is not fitted; call fit() first")

    def direct_influence(self, topic: int, source: int, target: int) -> float:
        """``inf_k(i -> i')``; 0 when no history exists."""
        self._require_fit()
        assert self.influence_ is not None
        if not 0 <= topic < self.num_topics:
            raise TIError(f"topic {topic} out of range")
        return self.influence_[topic].get(source, {}).get(target, 0.0)

    def _topic_influence(self, topic: int, source: int, target: int) -> float:
        """Direct plus one-hop indirect influence at one topic.

        The one-hop walk over ``source``'s influenced set is what makes TI's
        online prediction costly (Fig. 15): the neighbourhood can be large
        and there is no compact community profile to collapse it into.
        """
        assert self.influence_ is not None and self.background_ is not None
        direct = self.influence_[topic].get(source, {}).get(target, 0.0)
        indirect = 0.0
        for middle, strength in self.influence_[topic].get(source, {}).items():
            if middle == target:
                continue
            onward = self.influence_[topic].get(middle, {}).get(target, 0.0)
            indirect += strength * onward
        topic_level = direct + self.indirect_weight * indirect
        general = self.background_.get(source, {}).get(target, 0.0)
        return (1 - self.backoff) * topic_level + self.backoff * general

    def diffusion_score(
        self, author: int, candidate: int, words: tuple[int, ...] | list[int]
    ) -> float:
        """``sum_k P(k | d) [inf_k(i -> i') + lambda * indirect_k]``."""
        self._require_fit()
        assert self.lda_ is not None
        posterior = self.lda_.topic_posterior(words)
        score = 0.0
        for k in range(self.num_topics):
            if posterior[k] < 1e-6:
                continue
            score += posterior[k] * self._topic_influence(k, author, candidate)
        return score

    def score_candidates(
        self, author: int, candidates: list[int], words: tuple[int, ...] | list[int]
    ) -> np.ndarray:
        self._require_fit()
        assert self.lda_ is not None
        posterior = self.lda_.topic_posterior(words)
        scores = np.zeros(len(candidates))
        for j, candidate in enumerate(candidates):
            total = 0.0
            for k in range(self.num_topics):
                if posterior[k] < 1e-6:
                    continue
                total += posterior[k] * self._topic_influence(k, author, candidate)
            scores[j] = total
        return scores
