"""Mixed Membership Stochastic Blockmodel (MMSB) [Airoldi et al. 2008].

Network-only community detection: each user holds a distribution over
communities, each ordered community pair a Bernoulli link probability.

Unlike COLD's network component — whose community assignments are anchored
by the text/time components, letting the paper's *implicit* negative-link
prior (§3.3) suffice — standalone MMSB genuinely needs negative evidence:
with only positive links and a constant pseudo-count prior, merging every
user into one community is posterior-optimal (the rich-get-richer link
factor grows with cell counts).  We therefore follow the standard MMSB
treatment with **subsampled negative links**: a configurable multiple of
the positive links is drawn from the non-edges and carries community
indicators through the same collapsed Gibbs updates.  Complexity stays
linear in (positive + sampled negative) links.
"""

from __future__ import annotations

import numpy as np

from ..datasets.corpus import SocialCorpus
from ..datasets.splits import sample_negative_links


class MMSBError(RuntimeError):
    """Raised on invalid MMSB usage."""


class MMSBModel:
    """Collapsed-Gibbs MMSB over positive plus subsampled negative links.

    After :meth:`fit`: ``pi_`` (``(U, C)`` memberships) and ``eta_``
    (``(C, C)`` community link probabilities).

    Parameters
    ----------
    num_communities:
        Number of communities ``C``.
    rho:
        Dirichlet prior on memberships (defaults to the 50/C rule).
    lambda0, lambda1:
        Beta prior on ``eta`` (failure/success pseudo-counts).
    negative_ratio:
        Sampled negative links per positive link.  Larger ratios sharpen
        ``eta``'s contrast at linear extra cost.
    num_restarts:
        Independent Gibbs chains; the chain with the best collapsed joint
        likelihood wins.  Block models are multimodal on small graphs, so
        restarts are the standard mixing remedy.
    init:
        ``"spectral"`` (default) seeds each chain from normalised-Laplacian
        spectral clustering of the link graph — the standard cure for the
        Gibbs chain's label-collapse modes; ``"random"`` uses uniform
        random assignments.
    """

    def __init__(
        self,
        num_communities: int = 20,
        rho: float | None = None,
        lambda0: float = 1.0,
        lambda1: float = 0.1,
        negative_ratio: float = 5.0,
        num_restarts: int = 3,
        init: str = "spectral",
        seed: int = 0,
    ) -> None:
        if num_communities <= 0:
            raise MMSBError("num_communities must be positive")
        self.num_communities = num_communities
        self.rho = 50.0 / num_communities if rho is None else rho
        self.lambda0 = lambda0
        self.lambda1 = lambda1
        self.negative_ratio = negative_ratio
        self.num_restarts = num_restarts
        if min(self.rho, self.lambda0, self.lambda1) <= 0:
            raise MMSBError("rho, lambda0 and lambda1 must be positive")
        if negative_ratio < 0:
            raise MMSBError("negative_ratio must be >= 0")
        if num_restarts <= 0:
            raise MMSBError("num_restarts must be positive")
        if init not in ("spectral", "random"):
            raise MMSBError(f"init must be 'spectral' or 'random', got {init!r}")
        self.init = init
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.pi_: np.ndarray | None = None
        self.eta_: np.ndarray | None = None
        self.best_log_likelihood_: float | None = None

    def fit(self, corpus: SocialCorpus, num_iterations: int = 100) -> "MMSBModel":
        """Run ``num_restarts`` chains, keep the best by joint likelihood."""
        if num_iterations <= 0:
            raise MMSBError("num_iterations must be positive")
        if corpus.num_links == 0:
            raise MMSBError("corpus has no links")
        best: tuple[float, np.ndarray, np.ndarray] | None = None
        for _ in range(self.num_restarts):
            ll, pi, eta = self._fit_once(corpus, num_iterations)
            if best is None or ll > best[0]:
                best = (ll, pi, eta)
        assert best is not None
        self.best_log_likelihood_, self.pi_, self.eta_ = best
        return self

    @staticmethod
    def _chain_log_likelihood(
        n_user_comm: np.ndarray,
        n_pos: np.ndarray,
        n_neg: np.ndarray,
        rho: float,
        lambda0: float,
        lambda1: float,
    ) -> float:
        """Collapsed joint LL: membership Dirichlet-multinomial blocks plus
        a Beta-Bernoulli block per community pair."""
        from scipy.special import gammaln

        C = n_user_comm.shape[1]
        membership = (
            gammaln(C * rho)
            - gammaln(n_user_comm.sum(axis=1) + C * rho)
            + (gammaln(n_user_comm + rho) - gammaln(rho)).sum(axis=1)
        ).sum()
        links = (
            gammaln(lambda0 + lambda1)
            - gammaln(lambda0)
            - gammaln(lambda1)
            + gammaln(n_pos + lambda1)
            + gammaln(n_neg + lambda0)
            - gammaln(n_pos + n_neg + lambda0 + lambda1)
        ).sum()
        return float(membership + links)

    def _spectral_labels(self, corpus: SocialCorpus) -> np.ndarray | None:
        """Normalised-Laplacian spectral clustering of the link graph.

        Returns per-user community labels, or ``None`` when clustering is
        not applicable (fewer users than communities).
        """
        from scipy.cluster.vq import kmeans2

        U, C = corpus.num_users, self.num_communities
        if U <= C:
            return None
        adjacency = np.zeros((U, U))
        for src, dst in corpus.links:
            adjacency[src, dst] = 1.0
            adjacency[dst, src] = 1.0
        degree = np.maximum(adjacency.sum(axis=1), 1.0)
        laplacian = np.eye(U) - adjacency / np.sqrt(np.outer(degree, degree))
        _eigvals, eigvecs = np.linalg.eigh(laplacian)
        embedding = eigvecs[:, 1 : C + 1]
        _centroids, labels = kmeans2(
            embedding, C, minit="++", seed=int(self._rng.integers(2**31))
        )
        return labels.astype(np.int64)

    def _fit_once(
        self, corpus: SocialCorpus, num_iterations: int
    ) -> tuple[float, np.ndarray, np.ndarray]:
        C = self.num_communities
        positives = corpus.link_array()
        num_negatives = min(
            int(round(self.negative_ratio * len(positives))),
            corpus.num_negative_links,
        )
        negatives = np.asarray(
            sample_negative_links(corpus, num_negatives, self._rng), dtype=np.int64
        ).reshape(num_negatives, 2)

        links = np.vstack([positives, negatives]) if num_negatives else positives
        is_positive = np.zeros(len(links), dtype=bool)
        is_positive[: len(positives)] = True
        E = len(links)

        labels = (
            self._spectral_labels(corpus) if self.init == "spectral" else None
        )
        if labels is not None:
            src_comm = labels[links[:, 0]].copy()
            dst_comm = labels[links[:, 1]].copy()
        else:
            src_comm = self._rng.integers(C, size=E)
            dst_comm = self._rng.integers(C, size=E)
        n_user_comm = np.zeros((corpus.num_users, C), dtype=np.int64)
        n_pos = np.zeros((C, C), dtype=np.int64)
        n_neg = np.zeros((C, C), dtype=np.int64)
        np.add.at(n_user_comm, (links[:, 0], src_comm), 1)
        np.add.at(n_user_comm, (links[:, 1], dst_comm), 1)
        np.add.at(n_pos, (src_comm[is_positive], dst_comm[is_positive]), 1)
        np.add.at(n_neg, (src_comm[~is_positive], dst_comm[~is_positive]), 1)

        for _ in range(num_iterations):
            order = self._rng.permutation(E)
            for e in order:
                src, dst = links[e]
                c, c_prime = src_comm[e], dst_comm[e]
                n_user_comm[src, c] -= 1
                n_user_comm[dst, c_prime] -= 1
                positive = is_positive[e]
                if positive:
                    n_pos[c, c_prime] -= 1
                else:
                    n_neg[c, c_prime] -= 1

                totals = n_pos + n_neg + self.lambda0 + self.lambda1
                if positive:
                    link_factor = (n_pos + self.lambda1) / totals
                else:
                    link_factor = (n_neg + self.lambda0) / totals
                weights = (
                    np.outer(n_user_comm[src] + self.rho, n_user_comm[dst] + self.rho)
                    * link_factor
                ).ravel()
                index = int(
                    np.searchsorted(
                        np.cumsum(weights), self._rng.random() * weights.sum()
                    )
                )
                index = min(index, C * C - 1)
                c, c_prime = divmod(index, C)
                src_comm[e], dst_comm[e] = c, c_prime
                n_user_comm[src, c] += 1
                n_user_comm[dst, c_prime] += 1
                if positive:
                    n_pos[c, c_prime] += 1
                else:
                    n_neg[c, c_prime] += 1

        pi = (n_user_comm + self.rho) / (
            n_user_comm.sum(axis=1, keepdims=True) + C * self.rho
        )
        eta = (n_pos + self.lambda1) / (
            n_pos + n_neg + self.lambda0 + self.lambda1
        )
        ll = self._chain_log_likelihood(
            n_user_comm, n_pos, n_neg, self.rho, self.lambda0, self.lambda1
        )
        return ll, pi, eta

    def _require_fit(self) -> tuple[np.ndarray, np.ndarray]:
        if self.pi_ is None or self.eta_ is None:
            raise MMSBError("model is not fitted; call fit() first")
        return self.pi_, self.eta_

    def link_score(
        self, source: int | np.ndarray, target: int | np.ndarray
    ) -> np.ndarray:
        """``P(i -> i') = sum_{s,s'} pi_is pi_i's' eta_ss'``."""
        pi, eta = self._require_fit()
        source = np.atleast_1d(np.asarray(source, dtype=np.int64))
        target = np.atleast_1d(np.asarray(target, dtype=np.int64))
        weighted = pi[source] @ eta
        return np.einsum("nc,nc->n", weighted, pi[target])

    def top_communities(self, user: int, size: int = 2) -> list[int]:
        """The user's ``size`` strongest communities (Pipeline's first stage
        assigns each user to their top-2)."""
        pi, _ = self._require_fit()
        if not 0 <= user < pi.shape[0]:
            raise MMSBError(f"user {user} out of range")
        if size <= 0:
            raise MMSBError("size must be positive")
        order = np.argsort(pi[user])[::-1]
        return [int(c) for c in order[:size]]
