"""The stable high-level API: one config object, three verbs.

Everything a COLD study needs day to day lives here::

    from repro import api

    config = api.COLDConfig(num_communities=8, num_topics=12, seed=0)
    model = api.fit(corpus, config)
    api.save(model, "runs/weibo")
    model = api.load("runs/weibo")

Continuous operation joins the same verb set: :func:`update` folds new
stream events into a fitted model (windowed incremental Gibbs),
:func:`serve` builds the versioned ``/v1/`` HTTP front end over a model,
and :func:`watch` wires a publish directory to the server's validated
hot-swap reload.  All three are keyword-only past their subjects, like
``fit``/``save``/``load``.

:class:`COLDConfig` is a frozen, validated value object — build one per
study, derive variants with :meth:`COLDConfig.evolve`, and every entry
point (this module, the CLI, the benchmark harness) consumes it the same
way.  :func:`fit` runs the cached vectorised Gibbs kernels by default
(``config.fast``); draws are bit-identical to the reference kernels, so
seeded results do not depend on the switch.

Convergence tooling is re-exported here too: :func:`run_chains` fits
several independently seeded chains concurrently and :func:`diagnose`
turns their metrics into a :class:`DiagnosticsReport` verdict (the
``cold train --chains`` / ``cold diagnose`` pair, as a library call).

The serving layer's stable surface is re-exported as well:
:class:`ModelServer` answers the four query families in-process over a
saved model's tensors, and :class:`ColdHTTPServer` +
:class:`ServerConfig` are the ``cold serve`` HTTP front end (deadlines,
load shedding, hot-swap reload) for embedding in your own process.

So is the observability plane: :func:`render_prometheus` /
:func:`parse_prometheus_text` convert a :class:`MetricsRegistry` to and
from Prometheus text exposition, :class:`SLOConfig` / :class:`SLOTracker`
track rolling availability/latency objectives and burn rate, and
:func:`request_context` / :func:`get_request_id` /
:func:`new_request_id` carry the per-request correlation id that the
HTTP layer stamps into logs, spans, and response envelopes.

The classes behind these functions (:class:`repro.COLDModel` and
friends) remain public for advanced use — callbacks, checkpointing,
resume, the parallel engine — this module is the stable subset that will
not churn underneath scripts.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from .core.config import COLDConfig, ConfigError, StreamConfig
from .core.likelihood import ConvergenceMonitor, joint_log_likelihood
from .core.model import COLDModel, ModelError, UpdateReport
from .datasets.corpus import SocialCorpus
from .datasets.packed import PackedCorpus
from .diagnostics import (
    DiagnosticsReport,
    MultiChainResult,
    QualityStream,
    diagnose,
    run_chains,
)
from .serving import ColdHTTPServer, ModelServer, ServerConfig, ServingError
from .telemetry import (
    SLOConfig,
    SLOTracker,
    get_request_id,
    new_request_id,
    parse_prometheus_text,
    render_prometheus,
    request_context,
)
from .telemetry.logconfig import configure_logging

__all__ = [
    "COLDConfig",
    "ColdHTTPServer",
    "ConfigError",
    "ConvergenceMonitor",
    "DiagnosticsReport",
    "ModelServer",
    "MultiChainResult",
    "PackedCorpus",
    "QualityStream",
    "SLOConfig",
    "SLOTracker",
    "ServerConfig",
    "ServingError",
    "StreamConfig",
    "UpdateReport",
    "configure_logging",
    "diagnose",
    "fit",
    "get_request_id",
    "joint_log_likelihood",
    "load",
    "new_request_id",
    "parse_prometheus_text",
    "render_prometheus",
    "request_context",
    "run_chains",
    "save",
    "serve",
    "update",
    "watch",
]


def fit(
    corpus: SocialCorpus | PackedCorpus,
    config: COLDConfig | None = None,
    **overrides: object,
) -> COLDModel:
    """Fit a COLD model to ``corpus`` and return it.

    ``corpus`` is an in-RAM :class:`SocialCorpus` or a memory-mapped
    :class:`~repro.datasets.packed.PackedCorpus` (open a ``.coldpack``
    file with :func:`repro.datasets.io.load_corpus`); with the
    ``processes`` executor a packed corpus is never copied — workers map
    the file read-only.  ``config`` defaults to ``COLDConfig()``; keyword
    ``overrides`` are applied on top via :meth:`COLDConfig.evolve`, so
    quick experiments don't need an explicit config::

        model = api.fit(corpus, seed=3, num_topics=30)

    Raises :class:`ConfigError` for invalid settings — including a corpus
    whose time grid disagrees with ``config.num_time_slices`` (a common
    silent mistake when mixing hourly and daily exports).
    """
    if config is None:
        config = COLDConfig()
    if overrides:
        config = config.evolve(**overrides)
    if (
        config.num_time_slices is not None
        and corpus.num_time_slices != config.num_time_slices
    ):
        raise ConfigError(
            f"corpus has {corpus.num_time_slices} time slices, config expects "
            f"{config.num_time_slices}"
        )
    if config.log_level is not None:
        configure_logging(level=config.log_level)
    model = COLDModel(config)
    model.fit(corpus, **config.fit_kwargs())
    return model


def save(model: COLDModel, path: str | Path) -> None:
    """Persist a fitted model (config + estimates) at ``path``.

    Writes ``path.json`` and ``path.npz`` atomically; a crash mid-save
    leaves any previous artefact intact.
    """
    model.save(path)


def load(path: str | Path) -> COLDModel:
    """Load a model written by :func:`save`, fitted and ready to use.

    Raises :class:`~repro.core.model.ModelError` on corrupt or incomplete
    artefacts, ``FileNotFoundError`` when they are missing.
    """
    return COLDModel.load(path)


def update(
    model: COLDModel,
    events,
    *,
    stream: StreamConfig | None = None,
) -> UpdateReport:
    """Fold new stream events into a fitted ``model`` incrementally.

    The function form of :meth:`COLDModel.update`: ``events`` is a
    :class:`~repro.datasets.stream.CorpusIncrement` or raw
    ``PostEvent``/``LinkEvent`` items (the latter require the model's
    ``stream_builder_`` — attach one via
    :class:`repro.streaming.OnlineTrainer` or by hand).  ``stream``
    overrides the model's :class:`StreamConfig` for this call.
    """
    return model.update(events, stream=stream)


def serve(
    model: COLDModel | str | Path,
    *,
    config: ServerConfig | None = None,
    **overrides: object,
) -> ColdHTTPServer:
    """Build the versioned HTTP front end over ``model`` (not yet running).

    ``model`` is a fitted model or a saved-model path; ``config``
    defaults to ``ServerConfig()`` with keyword ``overrides`` applied on
    top (``serve(model, port=0, deadline_ms=500)``).  The returned
    :class:`ColdHTTPServer` is bound but not serving — call
    :meth:`~repro.serving.server.ColdHTTPServer.serve_until_shutdown`
    (typically on a thread) and
    :meth:`~repro.serving.server.ColdHTTPServer.begin_drain` to stop;
    pair with :func:`watch` for hot-swap on publish.
    """
    if config is None:
        config = ServerConfig()
    if overrides:
        try:
            config = replace(config, **overrides)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ServingError(f"unknown ServerConfig field: {exc}") from exc
    if isinstance(model, (str, Path)):
        return ColdHTTPServer(config, model_path=model)
    estimates = model._require_fit()
    engine = ModelServer(
        estimates,
        top_comm_size=config.top_comm_size,
        cache_size=config.cache_size,
        ic_simulations=config.ic_simulations,
    )
    return ColdHTTPServer(config, engine=engine)


def watch(
    server: ColdHTTPServer,
    publish_dir: str | Path,
    *,
    poll_interval: float = 1.0,
    start: bool = True,
):
    """Reload ``server`` whenever ``publish_dir``'s manifest advances.

    Returns a started :class:`repro.streaming.ModelWatcher` polling every
    ``poll_interval`` seconds (``start=False`` leaves it stopped — drive
    :meth:`~repro.streaming.watcher.ModelWatcher.poke` yourself, e.g.
    from an :meth:`OnlineTrainer.subscribe
    <repro.streaming.trainer.OnlineTrainer.subscribe>` callback for
    event-driven, sleep-free reloads).
    """
    from .streaming.watcher import ModelWatcher

    watcher = ModelWatcher(server, publish_dir, poll_interval=poll_interval)
    if start:
        watcher.start()
    return watcher
