"""The stable high-level API: one config object, three verbs.

Everything a COLD study needs day to day lives here::

    from repro import api

    config = api.COLDConfig(num_communities=8, num_topics=12, seed=0)
    model = api.fit(corpus, config)
    api.save(model, "runs/weibo")
    model = api.load("runs/weibo")

:class:`COLDConfig` is a frozen, validated value object — build one per
study, derive variants with :meth:`COLDConfig.evolve`, and every entry
point (this module, the CLI, the benchmark harness) consumes it the same
way.  :func:`fit` runs the cached vectorised Gibbs kernels by default
(``config.fast``); draws are bit-identical to the reference kernels, so
seeded results do not depend on the switch.

Convergence tooling is re-exported here too: :func:`run_chains` fits
several independently seeded chains concurrently and :func:`diagnose`
turns their metrics into a :class:`DiagnosticsReport` verdict (the
``cold train --chains`` / ``cold diagnose`` pair, as a library call).

The serving layer's stable surface is re-exported as well:
:class:`ModelServer` answers the four query families in-process over a
saved model's tensors, and :class:`ColdHTTPServer` +
:class:`ServerConfig` are the ``cold serve`` HTTP front end (deadlines,
load shedding, hot-swap reload) for embedding in your own process.

The classes behind these functions (:class:`repro.COLDModel` and
friends) remain public for advanced use — callbacks, checkpointing,
resume, the parallel engine — this module is the stable subset that will
not churn underneath scripts.
"""

from __future__ import annotations

from pathlib import Path

from .core.config import COLDConfig, ConfigError
from .core.likelihood import ConvergenceMonitor, joint_log_likelihood
from .core.model import COLDModel, ModelError
from .datasets.corpus import SocialCorpus
from .diagnostics import (
    DiagnosticsReport,
    MultiChainResult,
    QualityStream,
    diagnose,
    run_chains,
)
from .serving import ColdHTTPServer, ModelServer, ServerConfig, ServingError
from .telemetry.logconfig import configure_logging

__all__ = [
    "COLDConfig",
    "ColdHTTPServer",
    "ConfigError",
    "ConvergenceMonitor",
    "DiagnosticsReport",
    "ModelServer",
    "MultiChainResult",
    "QualityStream",
    "ServerConfig",
    "ServingError",
    "configure_logging",
    "diagnose",
    "fit",
    "joint_log_likelihood",
    "load",
    "run_chains",
    "save",
]


def fit(
    corpus: SocialCorpus,
    config: COLDConfig | None = None,
    **overrides: object,
) -> COLDModel:
    """Fit a COLD model to ``corpus`` and return it.

    ``config`` defaults to ``COLDConfig()``; keyword ``overrides`` are
    applied on top via :meth:`COLDConfig.evolve`, so quick experiments
    don't need an explicit config::

        model = api.fit(corpus, seed=3, num_topics=30)

    Raises :class:`ConfigError` for invalid settings — including a corpus
    whose time grid disagrees with ``config.num_time_slices`` (a common
    silent mistake when mixing hourly and daily exports).
    """
    if config is None:
        config = COLDConfig()
    if overrides:
        config = config.evolve(**overrides)
    if (
        config.num_time_slices is not None
        and corpus.num_time_slices != config.num_time_slices
    ):
        raise ConfigError(
            f"corpus has {corpus.num_time_slices} time slices, config expects "
            f"{config.num_time_slices}"
        )
    if config.log_level is not None:
        configure_logging(level=config.log_level)
    model = COLDModel(config)
    model.fit(corpus, **config.fit_kwargs())
    return model


def save(model: COLDModel, path: str | Path) -> None:
    """Persist a fitted model (config + estimates) at ``path``.

    Writes ``path.json`` and ``path.npz`` atomically; a crash mid-save
    leaves any previous artefact intact.
    """
    model.save(path)


def load(path: str | Path) -> COLDModel:
    """Load a model written by :func:`save`, fitted and ready to use.

    Raises :class:`~repro.core.model.ModelError` on corrupt or incomplete
    artefacts, ``FileNotFoundError`` when they are missing.
    """
    return COLDModel.load(path)
