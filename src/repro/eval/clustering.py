"""Clustering-quality metrics for community recovery evaluation.

The paper evaluates communities indirectly (link prediction) because Weibo
has no ground-truth labels.  Our synthetic substitute *does* plant labels,
enabling direct measurement: normalised mutual information (NMI) and
best-matching accuracy (optimal label alignment via the Hungarian
algorithm).  Both are standard in the community-detection literature the
paper cites [17, 28].
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment


class ClusteringError(ValueError):
    """Raised for invalid clustering-metric inputs."""


def _check_labels(predicted: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=np.int64)
    truth = np.asarray(truth, dtype=np.int64)
    if predicted.shape != truth.shape or predicted.ndim != 1:
        raise ClusteringError("label arrays must be equal-length 1-D")
    if predicted.size == 0:
        raise ClusteringError("label arrays must be non-empty")
    if predicted.min() < 0 or truth.min() < 0:
        raise ClusteringError("labels must be non-negative")
    return predicted, truth


def contingency_table(predicted: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Joint count matrix ``table[p, t]`` over label pairs."""
    predicted, truth = _check_labels(predicted, truth)
    num_pred = int(predicted.max()) + 1
    num_true = int(truth.max()) + 1
    table = np.zeros((num_pred, num_true), dtype=np.int64)
    np.add.at(table, (predicted, truth), 1)
    return table


def normalized_mutual_information(
    predicted: np.ndarray, truth: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1].

    1.0 for identical partitions (up to relabelling), ~0 for independent
    ones.  Degenerate single-cluster partitions on both sides score 1.0
    (they are identical); a single cluster against a varied truth scores 0.
    """
    table = contingency_table(predicted, truth).astype(np.float64)
    n = table.sum()
    joint = table / n
    p_pred = joint.sum(axis=1)
    p_true = joint.sum(axis=0)

    def entropy(p: np.ndarray) -> float:
        nz = p[p > 0]
        return float(-(nz * np.log(nz)).sum())

    h_pred, h_true = entropy(p_pred), entropy(p_true)
    outer = np.outer(p_pred, p_true)
    mask = joint > 0
    mutual = float((joint[mask] * np.log(joint[mask] / outer[mask])).sum())
    if h_pred == 0 and h_true == 0:
        return 1.0
    denominator = (h_pred + h_true) / 2
    if denominator == 0:
        return 0.0
    return max(0.0, min(1.0, mutual / denominator))


def best_matching_accuracy(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of items whose predicted label maps to their true label
    under the optimal (Hungarian) one-to-one label alignment."""
    table = contingency_table(predicted, truth)
    # Pad to square so the assignment is total.
    size = max(table.shape)
    padded = np.zeros((size, size), dtype=np.int64)
    padded[: table.shape[0], : table.shape[1]] = table
    rows, cols = linear_sum_assignment(-padded)
    matched = padded[rows, cols].sum()
    return float(matched) / float(table.sum())


def distribution_alignment(
    reference: np.ndarray,
    candidate: np.ndarray,
    method: str = "hungarian",
) -> tuple[np.ndarray, np.ndarray]:
    """Match the *rows* of two stacked distributions (label switching).

    Gibbs chains identify the same topics/communities up to a permutation
    of the latent indices; before any cross-chain comparison the rows of
    one chain's ``phi``/``theta`` must be mapped onto the other's.  The
    similarity is the Pearson correlation between rows; ``"hungarian"``
    solves the optimal one-to-one assignment, ``"greedy"`` takes the best
    remaining pair repeatedly (linear-log cost, and what the dynamic
    topic-network reproductions use — kept as the cheap cross-check).

    Returns ``(permutation, correlations)``: ``permutation[i]`` is the
    candidate row matched to reference row ``i``, ``correlations[i]`` the
    matched Pearson correlation.
    """
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape or reference.ndim != 2:
        raise ClusteringError("alignment inputs must be equal-shape 2-D arrays")
    R = reference.shape[0]
    if R < 1:
        raise ClusteringError("need at least one row to align")
    if method not in ("hungarian", "greedy"):
        raise ClusteringError(f"method must be 'hungarian' or 'greedy', got {method!r}")
    correlation = np.corrcoef(reference, candidate)[:R, R:]
    correlation = np.nan_to_num(correlation)
    permutation = np.empty(R, dtype=np.int64)
    matched = np.empty(R, dtype=np.float64)
    if method == "hungarian":
        rows, cols = linear_sum_assignment(-correlation)
        for r, c in zip(rows, cols):
            permutation[r] = c
            matched[r] = correlation[r, c]
    else:
        remaining = correlation.copy()
        for _ in range(R):
            r, c = np.unravel_index(np.argmax(remaining), remaining.shape)
            permutation[r] = c
            matched[r] = correlation[r, c]
            remaining[r, :] = -np.inf
            remaining[:, c] = -np.inf
    return permutation, matched


def topic_alignment(
    reference_phi: np.ndarray,
    candidate_phi: np.ndarray,
    method: str = "hungarian",
) -> tuple[np.ndarray, np.ndarray]:
    """Align a chain's topics to a reference chain's via their ``phi`` rows.

    The topic-space twin of :func:`membership_alignment`: cross-chain
    convergence statistics on per-topic quantities are meaningless until
    topic ``k`` of every chain denotes the same topic, which this mapping
    provides.  ``permutation[k]`` is the candidate topic matched to
    reference topic ``k``.
    """
    return distribution_alignment(reference_phi, candidate_phi, method=method)


def membership_alignment(
    estimated_pi: np.ndarray, true_pi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Align estimated soft memberships to planted ones.

    Returns ``(permutation, correlations)``: ``permutation[c]`` is the true
    community matched to estimated community ``c``, and ``correlations[c]``
    the Pearson correlation of the matched membership columns.
    """
    if estimated_pi.shape != true_pi.shape:
        raise ClusteringError("membership matrices must share a shape")
    if estimated_pi.ndim != 2 or estimated_pi.shape[1] < 1:
        raise ClusteringError("need at least one community")
    return distribution_alignment(estimated_pi.T, true_pi.T)


def community_recovery_report(
    estimated_pi: np.ndarray, true_pi: np.ndarray
) -> dict[str, float]:
    """One-call recovery summary: hard-label NMI + accuracy + mean
    aligned membership correlation."""
    predicted = estimated_pi.argmax(axis=1)
    truth = true_pi.argmax(axis=1)
    _permutation, correlations = membership_alignment(estimated_pi, true_pi)
    return {
        "nmi": normalized_mutual_information(predicted, truth),
        "accuracy": best_matching_accuracy(predicted, truth),
        "mean_membership_correlation": float(correlations.mean()),
    }
