"""Wall-clock measurement helpers (paper §6.4, Figs. 13–15).

Small, dependency-free timers used by the efficiency benches: a stopwatch
context manager, repeated-call timing with warmup, and a record type for
labelled measurements that the benches print as the paper's bar charts.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field


class TimingError(ValueError):
    """Raised for invalid timing requests."""


class Stopwatch:
    """Context-manager stopwatch: ``with Stopwatch() as sw: ...; sw.seconds``."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.seconds: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            raise TimingError("stopwatch exited without entering")
        self.seconds = time.perf_counter() - self._start


def time_callable(
    fn: Callable[[], object], repeats: int = 3, warmup: int = 1
) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls.

    Best-of is the standard microbenchmark reduction: the minimum is the
    least noise-contaminated estimate of the true cost.
    """
    if repeats <= 0 or warmup < 0:
        raise TimingError("repeats must be positive and warmup >= 0")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class TimingTable:
    """Labelled timing records, rendered like the paper's Figs. 14–15 bars."""

    title: str
    rows: list[tuple[str, float]] = field(default_factory=list)

    def add(self, label: str, seconds: float) -> None:
        if seconds < 0:
            raise TimingError(f"negative time for {label!r}")
        self.rows.append((label, seconds))

    def fastest(self) -> str:
        if not self.rows:
            raise TimingError("no rows recorded")
        return min(self.rows, key=lambda row: row[1])[0]

    def render(self) -> str:
        """ASCII table with proportional bars."""
        if not self.rows:
            return f"{self.title}: (empty)"
        label_width = max(len(label) for label, _ in self.rows)
        peak = max(seconds for _, seconds in self.rows) or 1.0
        lines = [self.title]
        for label, seconds in self.rows:
            bar = "#" * max(1, int(round(30 * seconds / peak)))
            lines.append(f"  {label.ljust(label_width)}  {seconds:>10.4f}s  {bar}")
        return "\n".join(lines)
