"""ROC-AUC metrics (paper §6.2 link prediction, §6.3 diffusion prediction).

Two protocols:

* plain ROC-AUC over a pooled score set (link prediction, Fig. 10) —
  computed rank-based with midrank tie handling, equivalent to the
  Mann–Whitney U statistic;
* **averaged AUC** over retweet tuples (diffusion prediction, Fig. 12,
  following Dietz et al. [6]): one AUC per tuple ``(i, d, U_id, Ubar_id)``
  treating retweeters as positives and ignorers as negatives, averaged over
  tuples.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..datasets.cascades import RetweetTuple
from ..datasets.corpus import SocialCorpus


class AUCError(ValueError):
    """Raised for degenerate AUC inputs."""


def roc_auc(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """Probability a random positive outranks a random negative.

    Midranks handle ties, so a constant scorer gets exactly 0.5.
    """
    positive_scores = np.asarray(positive_scores, dtype=np.float64)
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    if positive_scores.size == 0 or negative_scores.size == 0:
        raise AUCError("need at least one positive and one negative score")
    combined = np.concatenate([positive_scores, negative_scores])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(len(combined), dtype=np.float64)
    sorted_scores = combined[order]
    # Midranks: average rank within each tie group.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    num_pos = positive_scores.size
    num_neg = negative_scores.size
    rank_sum = ranks[:num_pos].sum()
    u_statistic = rank_sum - num_pos * (num_pos + 1) / 2.0
    return float(u_statistic / (num_pos * num_neg))


def link_prediction_auc(
    score_links: Callable[[np.ndarray, np.ndarray], np.ndarray],
    positives: list[tuple[int, int]],
    negatives: list[tuple[int, int]],
) -> float:
    """AUC of a link scorer over held-out positive / sampled negative links.

    ``score_links(src_array, dst_array)`` must return one score per pair —
    the signature of :func:`repro.core.prediction.link_probability` and of
    the baselines' ``link_score``.
    """
    if not positives or not negatives:
        raise AUCError("need non-empty positive and negative link sets")
    pos = np.asarray(positives, dtype=np.int64)
    neg = np.asarray(negatives, dtype=np.int64)
    pos_scores = np.asarray(score_links(pos[:, 0], pos[:, 1]), dtype=np.float64)
    neg_scores = np.asarray(score_links(neg[:, 0], neg[:, 1]), dtype=np.float64)
    return roc_auc(pos_scores, neg_scores)


def averaged_diffusion_auc(
    score_candidates: Callable[[int, list[int], tuple[int, ...]], np.ndarray],
    tuples: list[RetweetTuple],
    corpus: SocialCorpus,
) -> float:
    """The §6.3 averaged AUC over retweet tuples.

    ``score_candidates(author, candidates, words)`` must return one score
    per candidate — the shared signature of
    :meth:`repro.core.prediction.DiffusionPredictor.score_candidates` and of
    the WTM/TI baselines.
    """
    if not tuples:
        raise AUCError("need at least one retweet tuple")
    values = []
    for t in tuples:
        words = corpus.posts[t.post_index].words
        candidates = list(t.retweeters) + list(t.ignorers)
        scores = np.asarray(
            score_candidates(t.author, candidates, words), dtype=np.float64
        )
        pos = scores[: len(t.retweeters)]
        neg = scores[len(t.retweeters):]
        values.append(roc_auc(pos, neg))
    return float(np.mean(values))
