"""UMass topic coherence — a ground-truth-free topic quality metric.

Figure 8's qualitative claim ("meaningful subjects can be observed") has a
standard quantitative counterpart in the topic-modelling literature: UMass
coherence [Mimno et al. 2011], the average log co-occurrence lift of a
topic's top words::

    coherence(k) = mean over top-word pairs (v_i, v_j), i > j of
                   log[ (D(v_i, v_j) + eps) / D(v_j) ]

where ``D(v)`` counts documents containing ``v`` and ``D(v_i, v_j)`` counts
co-occurrences.  Higher (closer to zero) is better.  Coherent topics put
words together that genuinely co-occur in posts.
"""

from __future__ import annotations

import math

import numpy as np

from ..datasets.corpus import SocialCorpus


class CoherenceError(ValueError):
    """Raised for invalid coherence computations."""


class CooccurrenceIndex:
    """Document-frequency and pairwise co-occurrence counts over a corpus.

    Built once (O(total unique-word pairs per post)), then shared across
    topic evaluations.
    """

    def __init__(self, corpus: SocialCorpus) -> None:
        if corpus.num_posts == 0:
            raise CoherenceError("corpus has no posts")
        self.num_documents = corpus.num_posts
        self._doc_freq: dict[int, int] = {}
        self._pair_freq: dict[tuple[int, int], int] = {}
        for post in corpus.posts:
            unique = sorted(set(post.words))
            for v in unique:
                self._doc_freq[v] = self._doc_freq.get(v, 0) + 1
            for i in range(len(unique)):
                for j in range(i + 1, len(unique)):
                    pair = (unique[i], unique[j])
                    self._pair_freq[pair] = self._pair_freq.get(pair, 0) + 1

    def document_frequency(self, word: int) -> int:
        """Number of posts containing ``word``."""
        return self._doc_freq.get(word, 0)

    def co_document_frequency(self, word_a: int, word_b: int) -> int:
        """Number of posts containing both words (order-free)."""
        if word_a == word_b:
            return self.document_frequency(word_a)
        pair = (word_a, word_b) if word_a < word_b else (word_b, word_a)
        return self._pair_freq.get(pair, 0)


def umass_coherence(
    index: CooccurrenceIndex,
    top_word_ids: list[int],
    epsilon: float = 1.0,
) -> float:
    """UMass coherence of one topic's ranked top words.

    ``top_word_ids`` must be ranked by topic weight (descending); the
    conditioning word of each pair is the higher-ranked one, per the
    original formulation.
    """
    if len(top_word_ids) < 2:
        raise CoherenceError("need at least two top words")
    if epsilon <= 0:
        raise CoherenceError("epsilon must be positive")
    total = 0.0
    pairs = 0
    for i in range(1, len(top_word_ids)):
        for j in range(i):
            v_i, v_j = top_word_ids[i], top_word_ids[j]
            denominator = index.document_frequency(v_j)
            if denominator == 0:
                continue
            numerator = index.co_document_frequency(v_i, v_j) + epsilon
            total += math.log(numerator / denominator)
            pairs += 1
    if pairs == 0:
        raise CoherenceError("no scorable word pairs (all unseen words)")
    return total / pairs


def topic_coherences(
    phi: np.ndarray,
    corpus: SocialCorpus,
    top_n: int = 10,
    epsilon: float = 1.0,
) -> np.ndarray:
    """UMass coherence of every topic in a fitted ``phi`` matrix."""
    if top_n < 2:
        raise CoherenceError("top_n must be >= 2")
    if phi.ndim != 2 or phi.shape[1] != corpus.vocab_size:
        raise CoherenceError("phi shape does not match the corpus vocabulary")
    index = CooccurrenceIndex(corpus)
    scores = np.empty(phi.shape[0])
    for k in range(phi.shape[0]):
        ranked = np.argsort(phi[k])[::-1][:top_n]
        scores[k] = umass_coherence(index, [int(v) for v in ranked], epsilon)
    return scores


def mean_coherence(
    phi: np.ndarray, corpus: SocialCorpus, top_n: int = 10
) -> float:
    """Convenience: mean UMass coherence across topics (higher is better)."""
    return float(topic_coherences(phi, corpus, top_n).mean())
