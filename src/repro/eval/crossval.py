"""Cross-validation drivers for the paper's 5-fold protocols (§6.2–6.3).

The drivers are metric-agnostic: they own the fold construction and the
aggregation, the caller supplies a ``fold -> score`` callable (train the
model on the fold's train part, score on its test part).  Benches use fewer
folds than the paper's 5 to stay laptop-fast; the protocol is identical.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..datasets.corpus import SocialCorpus
from ..datasets.splits import LinkSplit, PostSplit, link_splits, post_splits


class CrossValError(ValueError):
    """Raised for invalid cross-validation runs."""


@dataclass(frozen=True)
class CVResult:
    """Per-fold scores plus summary statistics."""

    scores: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    @property
    def num_folds(self) -> int:
        return len(self.scores)

    def __repr__(self) -> str:
        return f"CVResult(mean={self.mean:.4f}, std={self.std:.4f}, folds={self.num_folds})"


def cross_validate_posts(
    corpus: SocialCorpus,
    score_fold: Callable[[PostSplit], float],
    num_folds: int = 5,
    seed: int = 0,
    max_folds: int | None = None,
) -> CVResult:
    """Run ``score_fold`` over time-stratified post folds (§6.2 protocol).

    ``max_folds`` optionally evaluates only the first few folds of the
    k-fold split — the split structure stays the paper's, only the number
    of (expensive) model fits is reduced.
    """
    splits = post_splits(corpus, num_folds=num_folds, seed=seed)
    return _run(splits, score_fold, max_folds)


def cross_validate_links(
    corpus: SocialCorpus,
    score_fold: Callable[[LinkSplit], float],
    num_folds: int = 5,
    negative_fraction: float = 0.01,
    seed: int = 0,
    max_folds: int | None = None,
) -> CVResult:
    """Run ``score_fold`` over link holdout folds (§6.2 link protocol)."""
    splits = link_splits(
        corpus, num_folds=num_folds, negative_fraction=negative_fraction, seed=seed
    )
    return _run(splits, score_fold, max_folds)


def _run(splits: list, score_fold: Callable, max_folds: int | None) -> CVResult:
    if max_folds is not None:
        if max_folds <= 0:
            raise CrossValError("max_folds must be positive")
        splits = splits[:max_folds]
    scores = []
    for split in splits:
        score = float(score_fold(split))
        if not np.isfinite(score):
            raise CrossValError("fold scorer returned a non-finite value")
        scores.append(score)
    if not scores:
        raise CrossValError("no folds were evaluated")
    return CVResult(scores=tuple(scores))
