"""Time-stamp prediction accuracy (paper §6.3, Fig. 11).

A previously unseen post's time slice is predicted by maximum likelihood;
accuracy is reported as a function of the **tolerance range** — the maximum
allowed |real - predicted| difference in slices.  Accuracy at tolerance 0 is
exact-slice accuracy; Fig. 11 sweeps the tolerance and compares models.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..datasets.corpus import Post, SocialCorpus


class TimestampError(ValueError):
    """Raised for degenerate time-stamp evaluation inputs."""


#: Every model's time-stamp predictor shares this signature.
TimestampPredictor = Callable[[Post], int]


def prediction_errors(
    predict: TimestampPredictor, test_corpus: SocialCorpus
) -> np.ndarray:
    """|real - predicted| per test post."""
    if test_corpus.num_posts == 0:
        raise TimestampError("test corpus has no posts")
    errors = np.empty(test_corpus.num_posts, dtype=np.int64)
    for idx, post in enumerate(test_corpus.posts):
        predicted = int(predict(post))
        if not 0 <= predicted < test_corpus.num_time_slices:
            raise TimestampError(
                f"prediction {predicted} outside the time grid "
                f"[0, {test_corpus.num_time_slices})"
            )
        errors[idx] = abs(predicted - post.timestamp)
    return errors


def accuracy_at_tolerance(errors: np.ndarray, tolerance: int) -> float:
    """Fraction of predictions with error <= ``tolerance``."""
    if tolerance < 0:
        raise TimestampError(f"tolerance must be >= 0, got {tolerance}")
    if errors.size == 0:
        raise TimestampError("no errors supplied")
    return float((errors <= tolerance).mean())


def accuracy_curve(
    predict: TimestampPredictor,
    test_corpus: SocialCorpus,
    tolerances: list[int] | np.ndarray,
) -> np.ndarray:
    """Accuracy at each tolerance — one Fig.-11 series."""
    errors = prediction_errors(predict, test_corpus)
    return np.asarray(
        [accuracy_at_tolerance(errors, int(tol)) for tol in tolerances]
    )
