"""Evaluation harness: the paper's metrics and cross-validation protocols."""

from .auc import AUCError, averaged_diffusion_auc, link_prediction_auc, roc_auc
from .clustering import (
    ClusteringError,
    best_matching_accuracy,
    community_recovery_report,
    contingency_table,
    distribution_alignment,
    membership_alignment,
    normalized_mutual_information,
    topic_alignment,
)
from .coherence import (
    CoherenceError,
    CooccurrenceIndex,
    mean_coherence,
    topic_coherences,
    umass_coherence,
)
from .crossval import (
    CrossValError,
    CVResult,
    cross_validate_links,
    cross_validate_posts,
)
from .perplexity import PerplexityError, cold_perplexity, perplexity
from .timestamp import (
    TimestampError,
    accuracy_at_tolerance,
    accuracy_curve,
    prediction_errors,
)
from .timing import Stopwatch, TimingError, TimingTable, time_callable

__all__ = [
    "AUCError",
    "CVResult",
    "ClusteringError",
    "CoherenceError",
    "CooccurrenceIndex",
    "CrossValError",
    "PerplexityError",
    "Stopwatch",
    "TimestampError",
    "TimingError",
    "TimingTable",
    "accuracy_at_tolerance",
    "accuracy_curve",
    "averaged_diffusion_auc",
    "best_matching_accuracy",
    "cold_perplexity",
    "community_recovery_report",
    "contingency_table",
    "cross_validate_links",
    "cross_validate_posts",
    "distribution_alignment",
    "link_prediction_auc",
    "mean_coherence",
    "membership_alignment",
    "normalized_mutual_information",
    "perplexity",
    "prediction_errors",
    "roc_auc",
    "time_callable",
    "topic_alignment",
    "topic_coherences",
    "umass_coherence",
]
