"""Held-out perplexity (paper §6.2, Fig. 9).

For a test set of M posts::

    perplexity = exp( - sum_d log p(w_d) / sum_d N_d )

where ``N_d`` is the post length.  Lower is better.  For COLD the post
probability is ``p(w_d) = sum_c pi_ic sum_k theta_ck prod_l phi_k,w_l``
(implemented in :func:`repro.core.prediction.post_probability`); baselines
plug in through the shared ``log p(w_d)`` callable signature.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.estimates import ParameterEstimates
from ..core.prediction import post_probability
from ..datasets.corpus import SocialCorpus


class PerplexityError(ValueError):
    """Raised for degenerate perplexity inputs."""


#: Signature every model's held-out scorer shares:
#: ``log_prob(words, author) -> float`` in natural-log space.
LogPostProbability = Callable[[tuple[int, ...], int], float]


def perplexity(
    log_post_probability: LogPostProbability, test_corpus: SocialCorpus
) -> float:
    """Perplexity of ``test_corpus`` under a model's log-probability fn."""
    if test_corpus.num_posts == 0:
        raise PerplexityError("test corpus has no posts")
    total_log_prob = 0.0
    total_words = 0
    for post in test_corpus.posts:
        total_log_prob += log_post_probability(post.words, post.author)
        total_words += len(post)
    if total_words == 0:
        raise PerplexityError("test corpus has no words")
    import math

    return math.exp(-total_log_prob / total_words)


def cold_perplexity(
    estimates: ParameterEstimates, test_corpus: SocialCorpus
) -> float:
    """Perplexity of a fitted COLD model (the §6.2 formula)."""

    def log_prob(words: tuple[int, ...], author: int) -> float:
        return post_probability(estimates, words, author)

    return perplexity(log_prob, test_corpus)
