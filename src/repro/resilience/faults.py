"""Declarative fault injection for the simulated cluster.

A :class:`FaultPlan` schedules failures at chosen supersteps: node crashes
(optionally mid-shard, after a fraction of the work), straggler delays, and
merge failures at the barrier.  The plan is consulted with an *attempt*
number so each fault fires for a bounded number of consecutive attempts
(``times``), after which the retried operation succeeds — mirroring a
transient cluster failure.  The plan also tallies every injection so tests
and reports can assert on what was actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class FaultError(RuntimeError):
    """The injected failure raised inside a simulated node task."""


@dataclass(frozen=True)
class NodeCrash:
    """Crash node ``node`` at superstep ``superstep``.

    ``progress`` is the fraction of the shard's posts the node processes
    before dying, so a crash genuinely corrupts the node-local counters and
    partially updates shared assignments — the state the engine's replay
    must be able to roll back.  ``times`` consecutive attempts fail.
    """

    superstep: int
    node: int
    progress: float = 0.5
    times: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.progress <= 1.0:
            raise ValueError(f"progress must lie in [0, 1], got {self.progress}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class StragglerDelay:
    """Add ``seconds`` of simulated wall time to one node's superstep."""

    superstep: int
    node: int
    seconds: float
    times: int = 1

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class MergeFailure:
    """Fail the barrier merge of superstep ``superstep`` ``times`` times."""

    superstep: int
    times: int = 1

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass
class FaultPlan:
    """A schedule of injected faults, queried by (superstep, node, attempt).

    Attempt numbers are 0-based per superstep: a fault with ``times=2``
    fires on attempts 0 and 1 and lets attempt 2 through, so a retry policy
    with enough attempts always recovers.
    """

    crashes: tuple[NodeCrash, ...] = ()
    stragglers: tuple[StragglerDelay, ...] = ()
    merge_failures: tuple[MergeFailure, ...] = ()
    injected_crashes: int = field(default=0, init=False)
    injected_delays: int = field(default=0, init=False)
    injected_merge_failures: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.crashes = tuple(self.crashes)
        self.stragglers = tuple(self.stragglers)
        self.merge_failures = tuple(self.merge_failures)

    def crash_for(self, superstep: int, node: int, attempt: int) -> NodeCrash | None:
        """The crash to inject for this (superstep, node, attempt), if any."""
        for crash in self.crashes:
            if (
                crash.superstep == superstep
                and crash.node == node
                and attempt < crash.times
            ):
                self.injected_crashes += 1
                return crash
        return None

    def straggler_delay(self, superstep: int, node: int, attempt: int) -> float:
        """Total injected delay (seconds) for this node attempt."""
        total = 0.0
        for straggler in self.stragglers:
            if (
                straggler.superstep == superstep
                and straggler.node == node
                and attempt < straggler.times
            ):
                self.injected_delays += 1
                total += straggler.seconds
        return total

    def merge_fails(self, superstep: int, attempt: int) -> bool:
        """Whether the merge of ``superstep`` fails on this attempt."""
        for failure in self.merge_failures:
            if failure.superstep == superstep and attempt < failure.times:
                self.injected_merge_failures += 1
                return True
        return False

    @property
    def total_injected(self) -> int:
        return (
            self.injected_crashes
            + self.injected_delays
            + self.injected_merge_failures
        )
