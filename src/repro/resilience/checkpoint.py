"""Atomic file writes and versioned, checksummed sampler checkpoints.

Atomicity
---------
All durable artefacts (models, corpora, checkpoints) are written through
:func:`atomic_write`: the payload goes to a temp file in the *same
directory* (same filesystem, so the final rename cannot cross devices),
is flushed and fsynced, then moved over the destination with
``os.replace`` — POSIX-atomic, so a crash mid-save never leaves a
half-written artefact; readers see either the old file or the new one.

Checkpoint format
-----------------
A checkpoint is a pair of files in the checkpoint directory::

    cold-00000042.npz            # all numpy arrays (counters, assignments, ...)
    cold-00000042.manifest.json  # schema version, iteration, sha256, metadata

The manifest is written *after* the data file and carries the SHA-256 of
the data file's bytes, so the loader can detect truncated or corrupted
payloads.  :func:`load_checkpoint` on a directory walks checkpoints newest
first and falls back to the next valid one when a checksum or schema check
fails, raising :class:`CheckpointError` (with per-file reasons) only when
nothing valid remains.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager, suppress
from pathlib import Path

import numpy as np

#: Bump on any incompatible change to the checkpoint contents.
CHECKPOINT_SCHEMA_VERSION = 1

_MANIFEST_SUFFIX = ".manifest.json"
_DATA_SUFFIX = ".npz"
_NAME_PATTERN = re.compile(r"^cold-(\d{8})\.manifest\.json$")


class CheckpointError(RuntimeError):
    """Raised for missing, corrupted, or incompatible checkpoints."""


# -- atomic writes -------------------------------------------------------------


@contextmanager
def atomic_write(path: str | Path) -> Iterator[Path]:
    """Yield a temp path that atomically replaces ``path`` on success.

    The temp file lives next to the destination (same suffix, so writers
    like ``np.savez`` that key on the extension behave identically); on any
    exception it is removed and the destination is left untouched.

    I/O failures anywhere in the write — a full disk (``ENOSPC``) while
    the caller writes the temp file, a failed fsync, a failed rename —
    surface as :class:`CheckpointError` naming the *target* path, so a
    caller's error report points at the artefact that was lost, not at an
    anonymous temp file.  Non-I/O exceptions from the caller's write code
    propagate unchanged (the temp file is still cleaned up).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp" + path.suffix
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        with suppress(OSError):
            tmp.unlink(missing_ok=True)
        raise CheckpointError(
            f"atomic write to {path} failed ({type(exc).__name__}: {exc}); "
            "temp file removed, destination untouched"
        ) from exc
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    with atomic_write(path) as tmp:
        tmp.write_bytes(data)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` to ``path``."""
    atomic_write_bytes(path, text.encode(encoding))


# -- checkpoint store ----------------------------------------------------------


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def checkpoint_name(iteration: int) -> str:
    """Canonical stem for the checkpoint of Gibbs sweep ``iteration``."""
    return f"cold-{iteration:08d}"


def save_checkpoint(
    directory: str | Path,
    iteration: int,
    arrays: dict[str, np.ndarray],
    meta: dict,
) -> Path:
    """Write one atomic checkpoint; returns the manifest path.

    ``arrays`` are persisted to the ``.npz`` data file, ``meta`` (any
    JSON-serialisable mapping — model config, RNG state, fit settings) to
    the manifest.  The data file is written and checksummed before the
    manifest, so a manifest's existence implies its payload was complete
    at write time.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = checkpoint_name(iteration)
    data_path = directory / (stem + _DATA_SUFFIX)
    with atomic_write(data_path) as tmp:
        with tmp.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
    manifest = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "iteration": int(iteration),
        "data_file": data_path.name,
        "sha256": _sha256(data_path),
        "meta": meta,
    }
    manifest_path = directory / (stem + _MANIFEST_SUFFIX)
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2))
    return manifest_path


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Manifest paths in ``directory``, newest (highest iteration) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found: list[tuple[int, Path]] = []
    for entry in directory.iterdir():
        match = _NAME_PATTERN.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found, reverse=True)]


def _load_one(manifest_path: Path) -> tuple[dict[str, np.ndarray], dict, int]:
    """Load and verify a single checkpoint given its manifest path."""
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{manifest_path}: unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(f"{manifest_path}: manifest is not an object")
    version = manifest.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{manifest_path}: schema version {version!r} is not "
            f"{CHECKPOINT_SCHEMA_VERSION}"
        )
    for key in ("iteration", "data_file", "sha256", "meta"):
        if key not in manifest:
            raise CheckpointError(f"{manifest_path}: manifest missing {key!r}")
    data_path = manifest_path.parent / manifest["data_file"]
    if not data_path.is_file():
        raise CheckpointError(f"{manifest_path}: data file {data_path.name} missing")
    checksum = _sha256(data_path)
    if checksum != manifest["sha256"]:
        raise CheckpointError(
            f"{manifest_path}: checksum mismatch for {data_path.name} "
            f"(expected {manifest['sha256'][:12]}..., got {checksum[:12]}...)"
        )
    try:
        with np.load(data_path) as data:
            arrays = {name: data[name] for name in data.files}
    except (OSError, ValueError, KeyError) as exc:
        raise CheckpointError(f"{data_path}: unreadable data file: {exc}") from exc
    return arrays, manifest["meta"], int(manifest["iteration"])


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict, int]:
    """Load a checkpoint; returns ``(arrays, meta, iteration)``.

    ``path`` may be a manifest file, its ``.npz`` data file, or a checkpoint
    *directory*.  Given a directory, checkpoints are tried newest first and
    the first valid one wins; corrupted or truncated candidates are skipped
    (their failure reasons are collected into the final error if nothing
    valid remains).
    """
    path = Path(path)
    if path.is_dir():
        manifests = list_checkpoints(path)
        if not manifests:
            raise CheckpointError(f"{path}: no checkpoints found")
        reasons: list[str] = []
        for manifest_path in manifests:
            try:
                return _load_one(manifest_path)
            except CheckpointError as exc:
                reasons.append(str(exc))
        raise CheckpointError(
            f"{path}: no valid checkpoint among {len(manifests)} candidates: "
            + "; ".join(reasons)
        )
    if path.name.endswith(_MANIFEST_SUFFIX):
        return _load_one(path)
    if path.suffix == _DATA_SUFFIX:
        manifest_path = path.with_name(
            path.name[: -len(_DATA_SUFFIX)] + _MANIFEST_SUFFIX
        )
        if not manifest_path.is_file():
            raise CheckpointError(f"{path}: no manifest {manifest_path.name}")
        return _load_one(manifest_path)
    raise CheckpointError(f"{path}: not a checkpoint directory, manifest, or data file")
