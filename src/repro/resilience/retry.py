"""Bounded exponential-backoff retry policies.

A single :class:`RetryPolicy` value object describes how often and how
patiently an operation is retried; the parallel engine uses it for failed
or timed-out node tasks and merge failures, and :func:`execute_with_retry`
applies the same policy to arbitrary callables (e.g. flaky filesystem
writes).  Backoff delays are deterministic — ``base_delay * multiplier**i``
capped at ``max_delay`` — because the simulated cluster accounts for them
as simulated wall time and tests must be reproducible.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import TypeVar

T = TypeVar("T")


class RetryError(RuntimeError):
    """Raised when an operation still fails after all retry attempts."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: at most ``max_attempts`` tries.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first one; must be >= 1.
    base_delay:
        Backoff before the first retry, in (simulated) seconds.
    multiplier:
        Growth factor applied per retry.
    max_delay:
        Upper bound on any single backoff delay.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), capped at max."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        return min(self.base_delay * self.multiplier**retry_index, self.max_delay)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (one delay per possible retry)."""
        for i in range(self.max_attempts - 1):
            yield self.delay(i)


def execute_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``, sleeping between failed attempts.

    Only exceptions in ``retry_on`` are retried; anything else propagates
    immediately.  After the final attempt the last exception is wrapped in
    :class:`RetryError` (chained, so the cause stays inspectable).
    """
    policy = policy or RetryPolicy()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt + 1 < policy.max_attempts:
                sleep(policy.delay(attempt))
    raise RetryError(
        f"operation failed after {policy.max_attempts} attempts: {last}"
    ) from last
