"""Crash-safety layer: checkpoints, fault injection, and retry policies.

Long COLD fits (the paper runs 400 sweeps over 11M+ posts on a GraphLab
cluster, §5) live in a regime where node failures and preemptions are
routine.  This package makes the reproduction resilient end to end:

* :mod:`~repro.resilience.checkpoint` — atomic file writes and versioned,
  checksummed sampler checkpoints with newest-valid fallback on load;
* :mod:`~repro.resilience.faults` — a pluggable :class:`FaultPlan` that
  injects node crashes, straggler delays, and merge failures into the
  simulated cluster at chosen supersteps;
* :mod:`~repro.resilience.retry` — bounded exponential-backoff retry
  policies shared by the parallel engine and any flaky I/O path.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from .faults import FaultError, FaultPlan, MergeFailure, NodeCrash, StragglerDelay
from .retry import RetryError, RetryPolicy, execute_with_retry

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "FaultError",
    "FaultPlan",
    "MergeFailure",
    "NodeCrash",
    "RetryError",
    "RetryPolicy",
    "StragglerDelay",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "execute_with_retry",
    "list_checkpoints",
    "load_checkpoint",
    "save_checkpoint",
]
