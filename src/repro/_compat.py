"""Deprecation shims that freeze the public constructor surface.

The public entry points (:class:`~repro.core.model.COLDModel`,
:class:`~repro.parallel.sampler.ParallelCOLDSampler`,
:class:`~repro.parallel.engine.SimulatedCluster`,
:class:`~repro.datasets.synthetic.SyntheticConfig`) take keyword-only
arguments so the argument order can never become load-bearing as the API
grows.  Old positional call sites keep working through
:func:`keyword_only`, which maps positionals onto the declared parameter
order and emits a :class:`DeprecationWarning` once per class per process.
"""

from __future__ import annotations

import functools
import inspect
import warnings

#: Classes that have already emitted their positional-use warning.
_warned: set[str] = set()


def reset_positional_warnings() -> None:
    """Forget which classes warned already (test isolation hook)."""
    _warned.clear()


def warn_positional_use(qualname: str, hint: str) -> None:
    """Emit the once-per-class positional-arguments DeprecationWarning."""
    if qualname in _warned:
        return
    _warned.add(qualname)
    warnings.warn(
        f"passing positional arguments to {qualname} is deprecated; "
        f"use keyword arguments instead ({hint})",
        DeprecationWarning,
        stacklevel=3,
    )


def warn_renamed_field(old: str, new: str) -> None:
    """Emit the once-per-rename DeprecationWarning for a moved config field.

    Shares the :data:`_warned` registry (and thus
    :func:`reset_positional_warnings`) with the positional-use shim, so
    each rename warns once per process no matter how many call sites hit
    it.
    """
    key = f"{old}->{new}"
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def warn_deprecated(key: str, message: str) -> None:
    """Emit a once-per-process DeprecationWarning for a legacy code path.

    ``key`` identifies the path in the shared :data:`_warned` registry
    (cleared by :func:`reset_positional_warnings`), so hot loops that hit
    a deprecated branch warn exactly once.
    """
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def keyword_only(cls: type) -> type:
    """Class decorator: positional ``__init__`` use warns once, then maps.

    The wrapped ``__init__`` binds any positional arguments to the original
    signature's parameter order, so existing call sites behave identically
    apart from the warning.  Duplicate positional/keyword bindings raise
    ``TypeError`` exactly as the unwrapped constructor would.
    """
    original = cls.__init__
    parameters = [
        name
        for name, param in inspect.signature(original).parameters.items()
        if name != "self"
        and param.kind
        in (param.POSITIONAL_OR_KEYWORD, param.POSITIONAL_ONLY)
    ]
    hint = ", ".join(parameters[:3]) + ", ..." if len(parameters) > 3 else ", ".join(
        parameters
    )

    @functools.wraps(original)
    def __init__(self, *args, **kwargs):
        if args:
            warn_positional_use(cls.__qualname__, f"e.g. {hint}")
            if len(args) > len(parameters):
                raise TypeError(
                    f"{cls.__qualname__}() takes at most {len(parameters)} "
                    f"arguments ({len(args)} given)"
                )
            for name, value in zip(parameters, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__qualname__}() got multiple values for "
                        f"argument {name!r}"
                    )
                kwargs[name] = value
        original(self, **kwargs)

    cls.__init__ = __init__
    return cls
