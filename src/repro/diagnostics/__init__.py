"""Inference-quality observability for COLD fits.

The ``repro.diagnostics`` package answers the question the raw
likelihood trace cannot: *did the sampler converge, and is the fitted
model any good?*  Three layers:

* :mod:`~repro.diagnostics.stats` — the MCMC statistics themselves
  (split-R̂, effective sample size, Geweke z-scores, stationarity
  windows), dependency-free NumPy.
* :mod:`~repro.diagnostics.quality` + :mod:`~repro.diagnostics.chains`
  — data collection: stride-gated quality streaming inside a fit
  (coherence / NMI / held-out perplexity) and the multi-chain runner
  behind ``cold train --chains N``.
* :mod:`~repro.diagnostics.report` — ``cold diagnose``: verdicts per
  quantity ("converged" / "not converged" / "inconclusive") rendered as
  terminal text or JSON.

Everything here is strictly read-only over sampler state and never
touches the RNG: draws are bit-identical with diagnostics on or off.
"""

from .chains import (
    ChainResult,
    MultiChainResult,
    fit_chain,
    load_chains,
    run_chains,
)
from .quality import QUALITY_KIND, QualityStream, load_quality_records
from .report import (
    DiagnosticsReport,
    QualityTrajectory,
    QuantityDiagnostic,
    diagnose,
)
from .stats import (
    DiagnosticsError,
    effective_sample_size,
    geweke_zscore,
    potential_scale_reduction,
    split_rhat,
    stationarity_start,
)

__all__ = [
    "QUALITY_KIND",
    "ChainResult",
    "DiagnosticsError",
    "DiagnosticsReport",
    "MultiChainResult",
    "QualityStream",
    "QualityTrajectory",
    "QuantityDiagnostic",
    "diagnose",
    "effective_sample_size",
    "fit_chain",
    "geweke_zscore",
    "load_chains",
    "load_quality_records",
    "potential_scale_reduction",
    "run_chains",
    "split_rhat",
    "stationarity_start",
]
