"""Multi-chain fitting: K independent seeded Gibbs chains, one corpus.

Convergence of a single Gibbs chain is unfalsifiable from the inside —
the related reproductions (Hu & Xing; Henry et al.) both run several
independently-seeded chains and compare them.  :func:`run_chains` does
exactly that for COLD:

* chain ``c`` is an ordinary serial :class:`repro.COLDModel` fit with
  seed ``base_seed + c`` — chain 0 is bit-identical to the equivalent
  single fit;
* every chain streams per-sweep metrics and stride-gated quality signals
  (:class:`~repro.diagnostics.quality.QualityStream`) into its own
  ``chain-XX/metrics.jsonl`` via the existing telemetry session, and
  saves its final estimates as ``chain-XX/estimates.npz`` (the material
  ``cold diagnose`` aligns topics with);
* chains run concurrently on the parallel package's process pool
  (:class:`repro.parallel.worker.TaskWorkerPool`) — or sequentially
  in-process with ``executor="serial"`` — with identical results either
  way (each chain is self-contained and seeded);
* a ``chains.json`` manifest ties the run together so ``cold diagnose
  <dir>`` needs a single argument.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.config import COLDConfig
from ..core.estimates import ParameterEstimates
from ..core.model import COLDModel
from ..datasets.corpus import SocialCorpus
from ..resilience.checkpoint import atomic_write_text
from ..telemetry.logconfig import get_logger
from .quality import QualityStream
from .stats import DiagnosticsError

_log = get_logger(__name__)

#: Manifest file name written at the root of a chains directory.
MANIFEST_NAME = "chains.json"


def fit_chain(
    corpus: SocialCorpus,
    chain_id: int,
    seed: int,
    chain_dir: str,
    model_kwargs: dict,
    fit_kwargs: dict,
    quality_kwargs: dict,
    truth_labels=None,
    holdout: SocialCorpus | None = None,
) -> dict:
    """Fit one seeded chain; returns its JSON-able summary record.

    Runs in the parent (``executor="serial"``) or inside a
    :class:`~repro.parallel.worker.TaskWorkerPool` worker process — the
    chain's metrics stream and estimates are written where it runs, so
    only this small summary crosses the process boundary.
    """
    chain_path = Path(chain_dir)
    chain_path.mkdir(parents=True, exist_ok=True)
    metrics_path = chain_path / "metrics.jsonl"
    estimates_path = chain_path / "estimates.npz"
    stream = QualityStream(
        corpus,
        truth_labels=truth_labels,
        holdout=holdout,
        **quality_kwargs,
    )
    model = COLDModel(
        **{**model_kwargs, "seed": seed, "metrics_out": str(metrics_path)}
    )
    model.fit(corpus, **fit_kwargs, diagnostics=stream)
    assert model.estimates_ is not None and model.monitor_ is not None
    model.estimates_.save(estimates_path)
    trace = model.monitor_.trace
    return {
        "chain_id": chain_id,
        "seed": seed,
        "dir": str(chain_path),
        "metrics": str(metrics_path),
        "estimates": str(estimates_path),
        "final_log_likelihood": trace[-1] if trace else None,
        "monitor_converged": bool(model.monitor_.converged),
        "degenerate_draws": int(model.monitor_.degenerate_draws),
        "quality_records": len(stream.history),
    }


@dataclass
class ChainResult:
    """One fitted chain's artefact locations and headline numbers."""

    chain_id: int
    seed: int
    dir: Path
    metrics: Path
    estimates: Path
    final_log_likelihood: float | None
    monitor_converged: bool
    degenerate_draws: int
    quality_records: int

    @classmethod
    def from_record(cls, record: dict, base: Path | None = None) -> "ChainResult":
        """Rebuild from a manifest record.

        ``base`` anchors relative artefact paths (the manifest's own
        directory), so a chains directory diagnoses identically from any
        working directory.  Paths that do not resolve under ``base`` are
        kept verbatim for manifests written before paths were stored
        manifest-relative.
        """

        def _resolve(raw: str) -> Path:
            path = Path(raw)
            if base is None or path.is_absolute():
                return path
            anchored = base / path
            return anchored if anchored.exists() else path

        return cls(
            chain_id=int(record["chain_id"]),
            seed=int(record["seed"]),
            dir=_resolve(record["dir"]),
            metrics=_resolve(record["metrics"]),
            estimates=_resolve(record["estimates"]),
            final_log_likelihood=record.get("final_log_likelihood"),
            monitor_converged=bool(record.get("monitor_converged", False)),
            degenerate_draws=int(record.get("degenerate_draws", 0)),
            quality_records=int(record.get("quality_records", 0)),
        )

    def to_record(self, relative_to: Path | None = None) -> dict:
        """JSON-able record; ``relative_to`` relativises artefact paths
        under that directory (how the manifest stores them)."""

        def _fmt(path: Path) -> str:
            if relative_to is not None:
                try:
                    return str(
                        path.resolve().relative_to(Path(relative_to).resolve())
                    )
                except ValueError:
                    return str(path)
            return str(path)

        return {
            "chain_id": self.chain_id,
            "seed": self.seed,
            "dir": _fmt(self.dir),
            "metrics": _fmt(self.metrics),
            "estimates": _fmt(self.estimates),
            "final_log_likelihood": self.final_log_likelihood,
            "monitor_converged": self.monitor_converged,
            "degenerate_draws": self.degenerate_draws,
            "quality_records": self.quality_records,
        }

    def load_estimates(self) -> ParameterEstimates:
        return ParameterEstimates.load(self.estimates)


@dataclass
class MultiChainResult:
    """Everything :func:`run_chains` produced, plus the manifest path."""

    directory: Path
    chains: list[ChainResult] = field(default_factory=list)
    manifest: Path | None = None

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    def metrics_paths(self) -> list[Path]:
        return [chain.metrics for chain in self.chains]

    def best_chain(self) -> ChainResult:
        """The chain with the highest final joint log-likelihood."""
        scored = [c for c in self.chains if c.final_log_likelihood is not None]
        if not scored:
            return self.chains[0]
        return max(scored, key=lambda c: c.final_log_likelihood)

    def diagnose(self, **kwargs):
        """Convenience: run ``cold diagnose`` analytics on this result."""
        from .report import diagnose

        return diagnose(self.directory, **kwargs)


def load_chains(path: str | Path) -> MultiChainResult:
    """Load a ``chains.json`` manifest (or the directory containing one)."""
    path = Path(path)
    manifest = path / MANIFEST_NAME if path.is_dir() else path
    if not manifest.is_file():
        raise DiagnosticsError(f"no {MANIFEST_NAME} manifest at {path}")
    try:
        payload = json.loads(manifest.read_text())
        chains = [
            ChainResult.from_record(r, base=manifest.parent)
            for r in payload["chains"]
        ]
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise DiagnosticsError(f"{manifest}: corrupt chains manifest: {exc}") from exc
    if not chains:
        raise DiagnosticsError(f"{manifest}: manifest lists no chains")
    return MultiChainResult(
        directory=manifest.parent, chains=chains, manifest=manifest
    )


def run_chains(
    corpus: SocialCorpus,
    config: COLDConfig | None = None,
    *,
    num_chains: int = 3,
    out_dir: str | Path,
    executor: str = "processes",
    num_workers: int | None = None,
    stride: int = 5,
    top_n: int = 10,
    coherence: bool = True,
    truth_labels: np.ndarray | None = None,
    holdout: SocialCorpus | None = None,
    **overrides: object,
) -> MultiChainResult:
    """Fit ``num_chains`` independent seeded chains and write a manifest.

    Parameters
    ----------
    corpus:
        The training corpus, shared by every chain.
    config:
        Base :class:`repro.COLDConfig` (``COLDConfig()`` when omitted);
        keyword ``overrides`` are applied via :meth:`COLDConfig.evolve`.
        Chain ``c`` runs with ``seed = config.seed + c``; parallel-fit
        fields (``num_nodes``/``executor``/``num_workers``) and telemetry
        paths are ignored — every chain is a serial fit with its own
        per-chain metrics stream under ``out_dir``.
    num_chains:
        Independent chains (2+ enable cross-chain R̂; 1 still streams
        quality and supports single-chain Geweke diagnostics).
    out_dir:
        Destination directory; gains ``chain-XX/`` subdirectories and the
        ``chains.json`` manifest.
    executor:
        ``"processes"`` runs chains concurrently on a
        :class:`~repro.parallel.worker.TaskWorkerPool`; ``"serial"`` runs
        them one after another in-process.  Results are identical.
    num_workers:
        Concurrent worker processes for ``"processes"`` (default:
        ``min(num_chains, os.cpu_count())``).
    stride, top_n, coherence:
        Quality-streaming knobs (see
        :class:`~repro.diagnostics.quality.QualityStream`).
    truth_labels:
        Planted per-user community labels for NMI streaming.
    holdout:
        Held-out corpus for perplexity streaming.
    """
    if num_chains < 1:
        raise DiagnosticsError("num_chains must be >= 1")
    if executor not in ("processes", "serial"):
        raise DiagnosticsError(
            f"executor must be 'processes' or 'serial', got {executor!r}"
        )
    if num_workers is not None and num_workers < 1:
        raise DiagnosticsError("num_workers must be positive when given")
    if config is None:
        config = COLDConfig()
    if overrides:
        config = config.evolve(**overrides)

    model_kwargs = config.model_kwargs()
    # Chains are serial per-chain fits with their own telemetry streams.
    model_kwargs.update(
        executor="simulated", num_nodes=1, num_workers=None,
        metrics_out=None, trace_out=None,
    )
    base_seed = int(model_kwargs.pop("seed"))
    fit_kwargs = config.fit_kwargs()
    quality_kwargs = {"stride": stride, "top_n": top_n, "coherence": coherence}

    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    common = {
        "corpus": corpus,
        "model_kwargs": model_kwargs,
        "fit_kwargs": fit_kwargs,
        "quality_kwargs": quality_kwargs,
        "truth_labels": truth_labels,
        "holdout": holdout,
    }
    payloads = [
        {
            "chain_id": chain,
            "seed": base_seed + chain,
            "chain_dir": str(out_path / f"chain-{chain:02d}"),
        }
        for chain in range(num_chains)
    ]

    if executor == "serial":
        records = [fit_chain(**common, **payload) for payload in payloads]
    else:
        import os

        from ..parallel.worker import TaskWorkerPool

        workers = num_workers
        if workers is None:
            workers = min(num_chains, os.cpu_count() or 1)
        _log.info(
            "fitting %d chains on %d worker process(es)", num_chains, workers
        )
        with TaskWorkerPool(
            "repro.diagnostics.chains:fit_chain", workers, common=common
        ) as pool:
            records = pool.run_all(payloads)

    chains = [ChainResult.from_record(record) for record in records]
    manifest_payload = {
        "kind": "cold-chains",
        "num_chains": num_chains,
        "base_seed": base_seed,
        "executor": executor,
        "quality": quality_kwargs,
        "fit": fit_kwargs,
        "model": {
            key: value
            for key, value in model_kwargs.items()
            if isinstance(value, (int, float, str, bool, type(None)))
        },
        "chains": [chain.to_record(relative_to=out_path) for chain in chains],
    }
    manifest = out_path / MANIFEST_NAME
    atomic_write_text(manifest, json.dumps(manifest_payload, indent=2) + "\n")
    _log.info("wrote chains manifest -> %s", manifest)
    return MultiChainResult(directory=out_path, chains=chains, manifest=manifest)
