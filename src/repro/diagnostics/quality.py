"""Per-sweep quality streaming: coherence, NMI, held-out perplexity.

A :class:`QualityStream` rides inside :meth:`repro.COLDModel.fit`
(``fit(..., diagnostics=stream)``): every ``stride`` sweeps it takes the
current Gibbs sample, computes inference-quality signals, and emits them
as a ``quality`` record into the fit's metrics JSONL (plus gauges, so
``cold monitor`` shows them live).  Streams are strictly read-only over
the sampler state and never touch the RNG — draws are bit-identical with
a stream attached or not (enforced by the diagnostics perf gate).

Signals per record:

* the scalar convergence chains of
  :func:`repro.core.likelihood.diagnostic_scalars` (joint log-likelihood,
  per-topic token counts, eta link summaries) — the raw material of
  ``cold diagnose``;
* mean UMass coherence of the current ``phi`` (ground-truth-free topic
  quality; the co-occurrence index is built once and reused);
* community NMI against planted ground-truth labels, when available
  (synthetic corpora);
* held-out perplexity on an optional holdout corpus.

The expensive pieces are optional and stride-gated; the perf gate pins
the stride-10 amortised overhead below 5% per sweep on the medium case.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.estimates import estimate_from_state
from ..core.likelihood import diagnostic_scalars
from ..datasets.corpus import SocialCorpus
from ..eval.clustering import normalized_mutual_information
from ..eval.coherence import CooccurrenceIndex, umass_coherence
from ..eval.perplexity import cold_perplexity
from .stats import DiagnosticsError

#: Record kind quality records are emitted under in the metrics JSONL.
QUALITY_KIND = "quality"


class QualityStream:
    """Stride-gated quality evaluation attached to a Gibbs fit.

    Parameters
    ----------
    corpus:
        The training corpus (needed for the coherence co-occurrence
        index; built lazily on the first evaluated sweep).
    stride:
        Evaluate every this many sweeps; 0 or negative is rejected.
    top_n:
        Top words per topic entering the UMass coherence.
    truth_labels:
        Planted per-user community labels (``truth.pi.argmax(axis=1)``)
        for NMI; ``None`` skips NMI.
    holdout:
        Held-out corpus for perplexity; ``None`` skips perplexity.
    coherence:
        Switch for the coherence signal (the only one needing the
        co-occurrence index).
    index:
        A prebuilt :class:`~repro.eval.coherence.CooccurrenceIndex` over
        ``corpus`` to reuse (e.g. across the benchmark's repeated fits);
        by default the index is built lazily on the first evaluated
        sweep (or eagerly via :meth:`warm`).
    """

    def __init__(
        self,
        corpus: SocialCorpus,
        stride: int = 10,
        top_n: int = 10,
        truth_labels: np.ndarray | None = None,
        holdout: SocialCorpus | None = None,
        coherence: bool = True,
        index: CooccurrenceIndex | None = None,
    ) -> None:
        if stride <= 0:
            raise DiagnosticsError("stride must be positive")
        if top_n < 2:
            raise DiagnosticsError("top_n must be >= 2")
        if truth_labels is not None:
            truth_labels = np.asarray(truth_labels, dtype=np.int64)
            if truth_labels.ndim != 1 or truth_labels.shape[0] != corpus.num_users:
                raise DiagnosticsError(
                    "truth_labels must be one label per corpus user"
                )
        if index is not None and index.num_documents != corpus.num_posts:
            raise DiagnosticsError(
                "prebuilt index does not match the corpus "
                f"({index.num_documents} documents vs {corpus.num_posts} posts)"
            )
        self.corpus = corpus
        self.stride = stride
        self.top_n = top_n
        self.truth_labels = truth_labels
        self.holdout = holdout
        self.coherence = coherence
        #: Every record this stream produced, in sweep order (also
        #: available without a metrics file).
        self.history: list[dict] = []
        self._index: CooccurrenceIndex | None = index

    def warm(self) -> "QualityStream":
        """Build the coherence co-occurrence index now instead of lazily.

        The index is a one-time corpus scan (seconds on large corpora)
        normally paid inside the first evaluated sweep.  Timing-sensitive
        callers (the diagnostics perf gate) warm the stream first so the
        per-sweep statistic measures steady-state streaming cost; the
        build itself is reported separately (``index_build_seconds`` in
        ``BENCH_diagnostics.json``).  No-op when coherence is off or the
        index already exists.  Returns ``self`` for chaining.
        """
        if self.coherence and self._index is None:
            self._index = CooccurrenceIndex(self.corpus)
        return self

    # -- fit-loop hook -----------------------------------------------------

    def maybe_record(
        self,
        iteration: int,
        state,
        hp,
        telemetry,
        log_likelihood: float | None = None,
    ) -> dict | None:
        """Called by the fit loop after every sweep; evaluates on stride.

        ``log_likelihood`` is the loop's own periodic evaluation when it
        happened this sweep (never recomputed twice).  Returns the
        emitted record, or ``None`` on off-stride sweeps.
        """
        if iteration % self.stride != 0:
            return None
        record = self.evaluate(state, hp, log_likelihood=log_likelihood)
        record["sweep"] = iteration
        self.history.append(record)
        if telemetry is not None and telemetry.enabled:
            telemetry.set_gauges(
                coherence=record.get("coherence"),
                nmi=record.get("nmi"),
                holdout_perplexity=record.get("holdout_perplexity"),
            )
            telemetry.emit(QUALITY_KIND, **record)
        return record

    # -- evaluation --------------------------------------------------------

    def evaluate(self, state, hp, log_likelihood: float | None = None) -> dict:
        """One quality evaluation of the current sample (pure, no RNG)."""
        record = diagnostic_scalars(state, hp, log_likelihood=log_likelihood)
        estimates = estimate_from_state(state, hp)
        if self.coherence:
            record["coherence"] = self._mean_coherence(estimates.phi)
        if self.truth_labels is not None:
            predicted = estimates.pi.argmax(axis=1)
            record["nmi"] = normalized_mutual_information(
                predicted, self.truth_labels
            )
        if self.holdout is not None:
            record["holdout_perplexity"] = cold_perplexity(
                estimates, self.holdout
            )
        return record

    def _mean_coherence(self, phi: np.ndarray) -> float:
        if self._index is None:
            self._index = CooccurrenceIndex(self.corpus)
        scores = []
        for k in range(phi.shape[0]):
            ranked = np.argsort(phi[k])[::-1][: self.top_n]
            scores.append(
                umass_coherence(self._index, [int(v) for v in ranked])
            )
        return float(np.mean(scores))


def quality_records(records: list[dict]) -> list[dict]:
    """The ``quality`` records of a loaded metrics file, in order."""
    return [r for r in records if r.get("kind") == QUALITY_KIND]


def load_quality_records(path: str | Path) -> list[dict]:
    """Load a metrics JSONL and keep only its quality records."""
    from ..telemetry.metrics import read_jsonl

    return quality_records(read_jsonl(path))
