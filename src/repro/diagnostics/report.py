"""``cold diagnose``: turn chain metrics into a convergence verdict.

:func:`diagnose` reads one or more metrics JSONL streams (preferably the
``chains.json`` directory :func:`repro.diagnostics.run_chains` writes),
extracts the scalar diagnostic chains recorded during fitting, and
renders a :class:`DiagnosticsReport`:

* **split-R̂** (Vehtari et al. 2021) and **effective sample size**
  (Geyer initial-monotone-sequence estimator) across chains for the
  joint log-likelihood, the eta link-strength summaries, and the
  per-topic token occupancies — the latter aligned across chains first
  (:func:`repro.eval.clustering.topic_alignment` on the saved ``phi``
  estimates) because Gibbs chains identify topics only up to a
  permutation;
* **Geweke z-scores** per chain (the only cross-check available for a
  single chain) plus an estimated stationarity window;
* first→last trajectories of the streamed quality signals (coherence,
  NMI, held-out perplexity) with their cross-chain spread at the end.

Each quantity gets a verdict — ``converged`` / ``not converged`` /
``inconclusive`` — under explicit thresholds (R̂ ≤ 1.1, ESS ≥ 10,
|z| ≤ 2 by default), and the report aggregates them into an overall
verdict.  The first ``discard`` fraction of every chain (default half)
is treated as warm-up and excluded from the statistics, mirroring
standard MCMC practice; too few post-warm-up samples is itself a
``not converged`` verdict, so a 5-sweep smoke run is flagged rather
than blessed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..telemetry.metrics import read_jsonl
from .chains import MANIFEST_NAME, MultiChainResult, load_chains
from .quality import QUALITY_KIND
from .stats import (
    DiagnosticsError,
    effective_sample_size,
    geweke_zscore,
    split_rhat,
    stationarity_start,
)

#: Quality signals summarised as trajectories (not R̂ quantities).
QUALITY_SIGNALS = ("coherence", "nmi", "holdout_perplexity")

VERDICT_CONVERGED = "converged"
VERDICT_NOT_CONVERGED = "not converged"
VERDICT_INCONCLUSIVE = "inconclusive"


@dataclass
class QuantityDiagnostic:
    """Convergence statistics and verdict for one scalar quantity."""

    name: str
    verdict: str
    rhat: float = float("nan")
    ess: float = float("nan")
    geweke_z: float = float("nan")
    #: First sweep from which the chains look stationary (worst chain),
    #: or ``None`` when no suffix passes the Geweke scan.
    stationary_from: int | None = None
    samples: int = 0
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        def _num(value: float) -> float | None:
            return None if np.isnan(value) else float(value)

        return {
            "name": self.name,
            "verdict": self.verdict,
            "rhat": _num(self.rhat),
            "ess": _num(self.ess),
            "geweke_z": _num(self.geweke_z),
            "stationary_from": self.stationary_from,
            "samples": self.samples,
            "notes": list(self.notes),
        }


@dataclass
class QualityTrajectory:
    """First→last summary of one streamed quality signal."""

    name: str
    #: ``(first, last)`` per chain, in chain order.
    per_chain: list[tuple[float, float]]
    #: Max-minus-min of the final values across chains.
    final_spread: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "per_chain": [
                {"first": first, "last": last} for first, last in self.per_chain
            ],
            "final_spread": self.final_spread,
        }


@dataclass
class DiagnosticsReport:
    """Everything ``cold diagnose`` concluded about a run."""

    num_chains: int
    samples_per_chain: int
    used_samples: int
    discard: float
    rhat_threshold: float
    ess_min: float
    geweke_threshold: float
    quantities: list[QuantityDiagnostic] = field(default_factory=list)
    quality: list[QualityTrajectory] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """Overall verdict: worst of the per-quantity verdicts."""
        verdicts = {q.verdict for q in self.quantities}
        if VERDICT_NOT_CONVERGED in verdicts:
            return VERDICT_NOT_CONVERGED
        if VERDICT_INCONCLUSIVE in verdicts or not verdicts:
            return VERDICT_INCONCLUSIVE
        return VERDICT_CONVERGED

    def quantity(self, name: str) -> QuantityDiagnostic:
        for q in self.quantities:
            if q.name == name:
                return q
        raise DiagnosticsError(f"no diagnostic quantity named {name!r}")

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "num_chains": self.num_chains,
            "samples_per_chain": self.samples_per_chain,
            "used_samples": self.used_samples,
            "discard": self.discard,
            "thresholds": {
                "rhat": self.rhat_threshold,
                "ess_min": self.ess_min,
                "geweke_z": self.geweke_threshold,
            },
            "quantities": [q.to_dict() for q in self.quantities],
            "quality": [q.to_dict() for q in self.quality],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Terminal-friendly report text."""
        lines = [
            "COLD convergence diagnostics — "
            f"{self.num_chains} chain(s), "
            f"{self.samples_per_chain} recorded sample(s)/chain, "
            f"{self.used_samples} used after discarding the first "
            f"{self.discard:.0%}",
            "",
            f"{'quantity':<28} {'R-hat':>7} {'ESS':>7} {'|z|':>6} "
            f"{'from':>6}  verdict",
        ]

        def _fmt(value: float, width: int, places: int) -> str:
            if np.isnan(value):
                return "-".rjust(width)
            return f"{value:.{places}f}".rjust(width)

        for q in self.quantities:
            start = "-" if q.stationary_from is None else str(q.stationary_from)
            flag = f"  [{'; '.join(q.notes)}]" if q.notes else ""
            lines.append(
                f"{q.name:<28} {_fmt(q.rhat, 7, 3)} {_fmt(q.ess, 7, 1)} "
                f"{_fmt(q.geweke_z, 6, 2)} {start:>6}  {q.verdict}{flag}"
            )
        if self.quality:
            lines += ["", "quality trajectories (first -> last per chain):"]
            for signal in self.quality:
                journey = " | ".join(
                    f"{first:.4g} -> {last:.4g}"
                    for first, last in signal.per_chain
                )
                lines.append(
                    f"  {signal.name:<20} {journey}  "
                    f"(final spread {signal.final_spread:.4g})"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        lines += [
            "",
            f"overall: {self.verdict} "
            f"(thresholds: R-hat <= {self.rhat_threshold}, "
            f"ESS >= {self.ess_min:g}, |z| <= {self.geweke_threshold:g})",
        ]
        return "\n".join(lines)


# -- loading ---------------------------------------------------------------


def _resolve_sources(
    source,
) -> tuple[list[Path], list[Path | None]]:
    """Normalise ``diagnose``'s input into metrics + optional estimates paths.

    Accepts a :class:`MultiChainResult`, a chains directory (or its
    ``chains.json``), a single metrics JSONL path, or a list of metrics
    paths.  Estimates are taken from the manifest when available, else
    from an ``estimates.npz`` sibling of each metrics file.
    """
    if isinstance(source, MultiChainResult):
        for chain in source.chains:
            if not Path(chain.metrics).is_file():
                raise DiagnosticsError(
                    f"metrics file not found: {chain.metrics} "
                    f"(chain {chain.chain_id} of {source.manifest})"
                )
        return (
            [Path(c.metrics) for c in source.chains],
            [Path(c.estimates) for c in source.chains],
        )
    if isinstance(source, (list, tuple)):
        metrics = [Path(p) for p in source]
        if not metrics:
            raise DiagnosticsError("need at least one metrics file")
    else:
        path = Path(source)
        if path.is_dir() or path.name == MANIFEST_NAME:
            return _resolve_sources(load_chains(path))
        metrics = [path]
    estimates: list[Path | None] = []
    for metric_path in metrics:
        if not metric_path.is_file():
            raise DiagnosticsError(f"metrics file not found: {metric_path}")
        sibling = metric_path.parent / "estimates.npz"
        estimates.append(sibling if sibling.is_file() else None)
    return metrics, estimates


def _extract_series(records: list[dict]) -> dict[str, np.ndarray]:
    """Pull the diagnostic chains out of one metrics stream.

    Prefers ``quality`` records (written when quality streaming is on);
    falls back to the likelihood values embedded in plain ``sweep``
    records, which any telemetry-enabled fit emits.
    """
    quality = [r for r in records if r.get("kind") == QUALITY_KIND]
    series: dict[str, list] = {}
    if quality:
        rows = quality
    else:
        rows = [
            r
            for r in records
            if r.get("kind") == "sweep" and "log_likelihood" in r
        ]
    for row in rows:
        for key in (
            "sweep",
            "log_likelihood",
            "eta_diag_mean",
            "eta_offdiag_mean",
            "topic_tokens",
            *QUALITY_SIGNALS,
        ):
            if key in row and row[key] is not None:
                series.setdefault(key, []).append(row[key])
    out: dict[str, np.ndarray] = {}
    for key, values in series.items():
        if len(values) != len(rows):
            # Present in some records only (e.g. perplexity warming up):
            # too ragged to form a chain — drop it.
            continue
        out[key] = np.asarray(values, dtype=np.float64)
    return out


def _aligned_topic_tokens(
    per_chain: list[dict[str, np.ndarray]],
    estimates_paths: list[Path | None],
    notes: list[str],
) -> list[np.ndarray] | None:
    """Per-chain ``(n, K)`` token series, topic-aligned to chain 0."""
    if any("topic_tokens" not in s for s in per_chain):
        return None
    tokens = [s["topic_tokens"] for s in per_chain]
    if len(tokens) == 1:
        return tokens
    if any(path is None for path in estimates_paths):
        notes.append(
            "topic_tokens compared without label-switching alignment "
            "(no estimates.npz next to every metrics file)"
        )
        return tokens
    from ..core.estimates import ParameterEstimates
    from ..eval.clustering import topic_alignment

    reference = ParameterEstimates.load(estimates_paths[0]).phi
    aligned = [tokens[0]]
    for path, chain_tokens in zip(estimates_paths[1:], tokens[1:]):
        phi = ParameterEstimates.load(path).phi
        permutation, _ = topic_alignment(reference, phi)
        # permutation[k] = this chain's topic matched to reference topic k.
        aligned.append(chain_tokens[:, permutation])
    return aligned


# -- verdicts --------------------------------------------------------------


def _judge(
    name: str,
    chains: np.ndarray,
    sweeps: np.ndarray | None,
    *,
    rhat_threshold: float,
    ess_min: float,
    geweke_threshold: float,
    min_samples: int,
) -> QuantityDiagnostic:
    """Statistics + verdict for one ``(num_chains, n)`` scalar array."""
    chains = np.asarray(chains, dtype=np.float64)
    m, n = chains.shape
    q = QuantityDiagnostic(name=name, verdict=VERDICT_INCONCLUSIVE, samples=n)
    if n < min_samples:
        q.verdict = VERDICT_NOT_CONVERGED
        q.notes.append(
            f"only {n} post-warm-up sample(s) (< {min_samples}): "
            "run more sweeps"
        )
        return q

    z_scores = [geweke_zscore(chains[c]) for c in range(m)]
    finite_z = [z for z in z_scores if not np.isnan(z)]
    if finite_z:
        q.geweke_z = float(max(abs(z) for z in finite_z))
    starts = []
    for c in range(m):
        start = stationarity_start(chains[c], threshold=geweke_threshold)
        if start is None:
            starts = None
            break
        starts.append(start)
    if starts is not None:
        offset = max(starts)
        if sweeps is not None and len(sweeps) == n:
            q.stationary_from = int(sweeps[offset])
        else:
            q.stationary_from = int(offset)

    if np.ptp(chains) == 0.0:
        q.verdict = VERDICT_CONVERGED
        q.notes.append("constant across chains")
        q.rhat = 1.0 if m > 1 else float("nan")
        return q

    if m > 1:
        q.rhat = split_rhat(chains)
        q.ess = effective_sample_size(chains)
        if np.isnan(q.rhat):
            q.notes.append("R-hat undefined (degenerate chains)")
            return q
        if q.rhat > rhat_threshold:
            q.verdict = VERDICT_NOT_CONVERGED
            q.notes.append("chains disagree (R-hat above threshold)")
        elif np.isnan(q.ess) or q.ess < ess_min:
            q.notes.append("low effective sample size")
        else:
            q.verdict = VERDICT_CONVERGED
        return q

    # Single chain: Geweke is the only arbiter.
    q.ess = effective_sample_size(chains)
    if np.isnan(q.geweke_z):
        q.notes.append("Geweke undefined (chain too short or constant)")
        return q
    if q.geweke_z > geweke_threshold:
        q.verdict = VERDICT_NOT_CONVERGED
        q.notes.append("start/end means differ (Geweke)")
    elif not np.isnan(q.ess) and q.ess < ess_min:
        q.notes.append("low effective sample size")
    else:
        q.verdict = VERDICT_CONVERGED
    q.notes.append("single chain: rerun with --chains >= 2 for R-hat")
    return q


def diagnose(
    source,
    *,
    discard: float = 0.5,
    rhat_threshold: float = 1.1,
    ess_min: float = 10.0,
    geweke_threshold: float = 2.0,
    min_samples: int = 8,
) -> DiagnosticsReport:
    """Analyse chain metrics and produce a :class:`DiagnosticsReport`.

    Parameters
    ----------
    source:
        A chains directory / ``chains.json`` manifest (as written by
        :func:`repro.diagnostics.run_chains`), a
        :class:`MultiChainResult`, a single metrics JSONL path, or a
        list of metrics paths (one per chain).
    discard:
        Warm-up fraction dropped from the front of every chain before
        computing statistics (default: first half).
    rhat_threshold, ess_min, geweke_threshold:
        Verdict thresholds; the defaults follow Vehtari et al. (2021)
        practice (R̂ ≤ 1.1 is the looser classic cut, suited to the
        short chains of a reproduction study).
    min_samples:
        Fewer post-warm-up samples than this is itself a
        ``not converged`` verdict — short smoke runs must not pass.
    """
    if not 0.0 <= discard < 1.0:
        raise DiagnosticsError("discard must lie in [0, 1)")
    if rhat_threshold <= 1.0:
        raise DiagnosticsError("rhat_threshold must exceed 1.0")
    if min_samples < 4:
        raise DiagnosticsError("min_samples must be >= 4")

    metrics_paths, estimates_paths = _resolve_sources(source)
    per_chain = [_extract_series(read_jsonl(p)) for p in metrics_paths]
    notes: list[str] = []
    for path, series in zip(metrics_paths, per_chain):
        if "log_likelihood" not in series:
            raise DiagnosticsError(
                f"{path}: no log-likelihood records — fit with telemetry "
                "enabled (metrics_out) and likelihood_interval > 0"
            )
    lengths = [len(s["log_likelihood"]) for s in per_chain]
    n_total = min(lengths)
    if len(set(lengths)) > 1:
        notes.append(
            f"chains have unequal record counts {lengths}; "
            f"truncated to {n_total}"
        )
    start = int(n_total * discard)
    used = n_total - start

    def _tail(values: np.ndarray) -> np.ndarray:
        return values[:n_total][start:]

    sweeps = None
    if all("sweep" in s for s in per_chain):
        sweeps = _tail(per_chain[0]["sweep"])

    judge_kwargs = {
        "rhat_threshold": rhat_threshold,
        "ess_min": ess_min,
        "geweke_threshold": geweke_threshold,
        "min_samples": min_samples,
    }
    quantities: list[QuantityDiagnostic] = []
    quantities.append(
        _judge(
            "joint log-likelihood",
            np.stack([_tail(s["log_likelihood"]) for s in per_chain]),
            sweeps,
            **judge_kwargs,
        )
    )
    for key, label in (
        ("eta_diag_mean", "eta diagonal mean"),
        ("eta_offdiag_mean", "eta off-diagonal mean"),
    ):
        if all(key in s for s in per_chain):
            quantities.append(
                _judge(
                    label,
                    np.stack([_tail(s[key]) for s in per_chain]),
                    sweeps,
                    **judge_kwargs,
                )
            )
    aligned = _aligned_topic_tokens(per_chain, estimates_paths, notes)
    if aligned is not None:
        stacked = np.stack([_tail(tokens) for tokens in aligned])
        # (m, n, K): judge every topic, report the worst one.
        per_topic = [
            _judge(
                f"topic {k}", stacked[:, :, k], sweeps, **judge_kwargs
            )
            for k in range(stacked.shape[2])
        ]
        rank = {
            VERDICT_NOT_CONVERGED: 2,
            VERDICT_INCONCLUSIVE: 1,
            VERDICT_CONVERGED: 0,
        }
        worst = max(
            range(len(per_topic)),
            key=lambda k: (
                rank[per_topic[k].verdict],
                per_topic[k].rhat if not np.isnan(per_topic[k].rhat) else -1.0,
            ),
        )
        summary = per_topic[worst]
        summary.name = f"topic tokens (worst: topic {worst})"
        quantities.append(summary)

    quality: list[QualityTrajectory] = []
    for signal in QUALITY_SIGNALS:
        if not all(signal in s for s in per_chain):
            continue
        journeys = [
            (float(s[signal][0]), float(s[signal][n_total - 1]))
            for s in per_chain
        ]
        finals = [last for _, last in journeys]
        quality.append(
            QualityTrajectory(
                name=signal,
                per_chain=journeys,
                final_spread=float(max(finals) - min(finals)),
            )
        )

    return DiagnosticsReport(
        num_chains=len(per_chain),
        samples_per_chain=n_total,
        used_samples=used,
        discard=discard,
        rhat_threshold=rhat_threshold,
        ess_min=ess_min,
        geweke_threshold=geweke_threshold,
        quantities=quantities,
        quality=quality,
        notes=notes,
    )
