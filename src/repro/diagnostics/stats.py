"""MCMC convergence statistics: split-R̂, effective sample size, Geweke.

The paper monitors convergence with a single likelihood trace; the related
reproductions (Hu & Xing; Henry et al.) stress that a single chain cannot
distinguish "converged" from "stuck", so this module implements the
standard cross-chain diagnostics on *scalar* chains:

* :func:`split_rhat` — the split potential scale reduction factor
  [Gelman & Rubin 1992; Vehtari et al. 2021].  Each chain is split in
  half (catching within-chain drift), and the between/within variance
  ratio is folded into one number: ``1.0`` means the chains are
  indistinguishable, values above ~1.1 mean they have not mixed.
* :func:`effective_sample_size` — Geyer's initial-monotone-sequence
  estimator of the number of independent draws the autocorrelated chains
  are worth.
* :func:`geweke_zscore` — the single-chain fallback: a z-test comparing
  the mean of the early part of a chain against the late part.
* :func:`stationarity_start` — the earliest cutoff from which the
  remaining trace passes the Geweke test (the data-driven burn-in).

Everything operates on plain ``(num_chains, num_samples)`` float arrays —
the scalar streams (joint log-likelihood, per-topic token counts, eta
summaries) that :mod:`repro.diagnostics.chains` extracts from per-chain
metrics files.  No RNG is consumed anywhere.
"""

from __future__ import annotations

import math

import numpy as np


class DiagnosticsError(ValueError):
    """Raised for invalid diagnostic computations."""


def _as_chains(chains: np.ndarray) -> np.ndarray:
    array = np.asarray(chains, dtype=np.float64)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise DiagnosticsError(
            f"chains must be 1-D or 2-D (chains x samples), got shape {array.shape}"
        )
    if not np.isfinite(array).all():
        raise DiagnosticsError("chains contain non-finite values")
    return array


def split_chains(chains: np.ndarray) -> np.ndarray:
    """Split every chain into equal halves: ``(m, n) -> (2m, n // 2)``.

    An odd trailing sample is dropped (standard practice), so the halves
    stay directly comparable.
    """
    array = _as_chains(chains)
    half = array.shape[1] // 2
    if half < 1:
        raise DiagnosticsError("need at least 2 samples per chain to split")
    return np.concatenate([array[:, :half], array[:, half : 2 * half]], axis=0)


def potential_scale_reduction(chains: np.ndarray) -> float:
    """R̂ over the chains as given (no splitting); see :func:`split_rhat`.

    Returns ``nan`` with fewer than 2 chains or fewer than 2 samples; a
    set of *constant, identical* chains returns exactly 1.0 (they agree
    perfectly), while constant chains stuck at different values return
    ``inf`` (they will never agree).
    """
    array = _as_chains(chains)
    m, n = array.shape
    if m < 2 or n < 2:
        return math.nan
    within = float(np.mean(np.var(array, axis=1, ddof=1)))
    between = float(n * np.var(np.mean(array, axis=1), ddof=1))
    if within == 0.0:
        return 1.0 if between == 0.0 else math.inf
    var_plus = (n - 1) / n * within + between / n
    return math.sqrt(var_plus / within)


def split_rhat(chains: np.ndarray) -> float:
    """Split potential scale reduction factor R̂ [Vehtari et al. 2021].

    ``chains`` is ``(num_chains, num_samples)``; each chain is split in
    half first, so a single drifting chain is detected too (a lone chain
    still yields a meaningful value).  Values near 1.0 indicate the
    chains sample the same distribution; > ~1.1 flags non-convergence.
    Returns ``nan`` when there are fewer than 4 samples per chain.
    """
    array = _as_chains(chains)
    if array.shape[1] < 4:
        return math.nan
    return potential_scale_reduction(split_chains(array))


def effective_sample_size(chains: np.ndarray) -> float:
    """Effective sample size via Geyer's initial monotone sequence.

    Combines within-chain autocovariances across chains the way Stan does
    (Vehtari et al. 2021, Eq. 10): lag-``t`` correlation is estimated
    from the multi-chain variance estimate ``var_plus``, and lags are
    accumulated in positive, monotonically decreasing pairs.  Returns a
    value in ``(0, m * n]``; ``nan`` with fewer than 4 samples per chain.
    Constant chains have no information and return ``nan``.
    """
    array = _as_chains(chains)
    m, n = array.shape
    if n < 4:
        return math.nan
    within = float(np.mean(np.var(array, axis=1, ddof=1)))
    between = float(n * np.var(np.mean(array, axis=1), ddof=1)) if m > 1 else 0.0
    var_plus = (n - 1) / n * within + (between / n if m > 1 else 0.0)
    if var_plus == 0.0 or within == 0.0:
        return math.nan

    centered = array - array.mean(axis=1, keepdims=True)
    # Per-lag autocovariance averaged across chains, lags 0..n-1.
    max_lag = n - 1
    autocov = np.empty((m, max_lag + 1))
    for lag in range(max_lag + 1):
        autocov[:, lag] = (
            np.sum(centered[:, : n - lag] * centered[:, lag:], axis=1) / n
        )
    mean_autocov = autocov.mean(axis=0)

    rho = 1.0 - (within - mean_autocov) / var_plus
    rho[0] = 1.0

    # Geyer: sum consecutive lag pairs while the pair sums stay positive
    # and non-increasing.
    tau = 0.0
    previous_pair = math.inf
    lag = 1
    while lag + 1 <= max_lag:
        pair = float(rho[lag] + rho[lag + 1])
        if pair < 0:
            break
        pair = min(pair, previous_pair)
        tau += pair
        previous_pair = pair
        lag += 2
    ess = m * n / (1.0 + 2.0 * tau)
    return float(min(ess, m * n))


def adaptive_first_fraction(n: int) -> float:
    """Early-segment fraction for Geweke that still holds 4 samples.

    Geweke's canonical 10% head segment needs 40+ samples; diagnostic
    chains here are often shorter (stride-thinned quality records), so
    widen the head up to 40% when necessary — segments stay disjoint
    against the canonical 50% tail.
    """
    if n <= 0:
        return 0.1
    return min(0.4, max(0.1, 4.0 / n))


def geweke_zscore(
    chain: np.ndarray, first: float | None = None, last: float = 0.5
) -> float:
    """Geweke (1992) z-score comparing early vs late means of one chain.

    The chain is stationary when the mean of the first ``first`` fraction
    equals the mean of the final ``last`` fraction; the z-score is their
    difference scaled by the combined standard error (sample variances —
    the zero-dependency simplification of Geweke's spectral estimate,
    adequate at the trace lengths diagnostics see).  ``|z| <= 2`` is the
    usual pass.  ``first`` defaults to
    :func:`adaptive_first_fraction` (10%, widened on short chains).
    Returns ``nan`` for chains too short to compare (fewer than 4
    samples in either segment).
    """
    array = np.asarray(chain, dtype=np.float64)
    if array.ndim != 1:
        raise DiagnosticsError("geweke_zscore takes a single 1-D chain")
    if first is None:
        first = adaptive_first_fraction(array.size)
    if not 0 < first < 1 or not 0 < last < 1 or first + last > 1:
        raise DiagnosticsError(
            "first and last must be fractions with first + last <= 1"
        )
    n = array.size
    head = array[: max(int(n * first), 1)]
    tail = array[n - max(int(n * last), 1):]
    if head.size < 4 or tail.size < 4:
        return math.nan
    var_head = float(np.var(head, ddof=1))
    var_tail = float(np.var(tail, ddof=1))
    denom = math.sqrt(var_head / head.size + var_tail / tail.size)
    if denom == 0.0:
        return 0.0 if float(head.mean()) == float(tail.mean()) else math.inf
    return float((head.mean() - tail.mean()) / denom)


def stationarity_start(
    chain: np.ndarray,
    fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    threshold: float = 2.0,
) -> int | None:
    """Earliest sample index from which the trace looks stationary.

    Tries discarding each candidate warmup ``fraction`` in order and
    returns the first start index whose remaining suffix passes the
    Geweke test (``|z| <= threshold``).  ``None`` means no candidate
    suffix is stationary — the chain is still drifting at its end.
    """
    array = np.asarray(chain, dtype=np.float64)
    if array.ndim != 1:
        raise DiagnosticsError("stationarity_start takes a single 1-D chain")
    for fraction in fractions:
        if not 0 <= fraction < 1:
            raise DiagnosticsError("fractions must lie in [0, 1)")
        start = int(array.size * fraction)
        z = geweke_zscore(array[start:]) if array.size - start >= 8 else math.nan
        if not math.isnan(z) and abs(z) <= threshold:
            return start
    return None
