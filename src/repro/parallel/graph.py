"""Graph abstraction of the distributed Gibbs sampler (paper Fig. 4).

The paper maps COLD inference onto GraphLab by building a bipartite graph:

* one vertex per **user** and one per **time slice**;
* a **user-time edge** between user ``i`` and slice ``t`` carrying the posts
  ``i`` wrote at ``t`` (their words and community/topic indicators);
* **user-user edges** carrying the community indicators of positive links.

Computation then happens on edges (the scatter phase samples indicators),
while vertices aggregate the counters their edges need — which is what lets
the state stay local and the algorithm parallelise.  This module builds the
same abstraction from a :class:`~repro.datasets.corpus.SocialCorpus`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.corpus import SocialCorpus


class GraphError(ValueError):
    """Raised for invalid computation-graph operations."""


@dataclass(frozen=True)
class UserTimeEdge:
    """Edge between ``user`` and time slice ``time`` carrying post indices."""

    user: int
    time: int
    post_ids: tuple[int, ...]

    @property
    def work(self) -> int:
        """Work estimate: number of posts to resample on this edge."""
        return len(self.post_ids)


@dataclass(frozen=True)
class UserUserEdge:
    """Edge for one positive link, carrying its index into corpus.links."""

    link_id: int
    src: int
    dst: int

    @property
    def work(self) -> int:
        """Work estimate: one joint (s, s') resample."""
        return 1


@dataclass
class ComputationGraph:
    """The Fig.-4 bipartite + social graph over one corpus."""

    num_users: int
    num_time_slices: int
    user_time_edges: list[UserTimeEdge]
    user_user_edges: list[UserUserEdge]

    @classmethod
    def from_corpus(cls, corpus: SocialCorpus) -> "ComputationGraph":
        """Group posts by (author, time slice) and wrap links as edges."""
        authors = getattr(corpus, "post_authors", None)
        times = getattr(corpus, "post_times", None)
        if authors is not None and times is not None:
            # Column-backed corpora (PackedCorpus) expose author/time
            # arrays directly — group without materialising Post objects.
            user_time_edges = cls._group_post_columns(
                np.asarray(authors), np.asarray(times)
            )
        else:
            grouped: dict[tuple[int, int], list[int]] = {}
            for post_id, post in enumerate(corpus.posts):
                grouped.setdefault((post.author, post.timestamp), []).append(post_id)
            user_time_edges = [
                UserTimeEdge(user=user, time=time, post_ids=tuple(ids))
                for (user, time), ids in sorted(grouped.items())
            ]
        user_user_edges = [
            UserUserEdge(link_id=link_id, src=src, dst=dst)
            for link_id, (src, dst) in enumerate(corpus.links)
        ]
        return cls(
            num_users=corpus.num_users,
            num_time_slices=corpus.num_time_slices,
            user_time_edges=user_time_edges,
            user_user_edges=user_user_edges,
        )

    @staticmethod
    def _group_post_columns(
        authors: np.ndarray, times: np.ndarray
    ) -> list[UserTimeEdge]:
        """Vectorised (author, time) grouping, same edge/post order as the
        dict path: edges sorted by (user, time), post ids ascending."""
        if len(authors) == 0:
            return []
        order = np.lexsort((times, authors))  # stable -> post ids ascending
        sorted_authors = authors[order]
        sorted_times = times[order]
        boundaries = np.flatnonzero(
            (np.diff(sorted_authors) != 0) | (np.diff(sorted_times) != 0)
        )
        starts = np.concatenate(([0], boundaries + 1))
        stops = np.concatenate((boundaries + 1, [len(order)]))
        order_list = order.tolist()
        return [
            UserTimeEdge(
                user=int(sorted_authors[lo]),
                time=int(sorted_times[lo]),
                post_ids=tuple(order_list[lo:hi]),
            )
            for lo, hi in zip(starts.tolist(), stops.tolist())
        ]

    # -- sizes -----------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """User vertices + time vertices."""
        return self.num_users + self.num_time_slices

    @property
    def num_edges(self) -> int:
        return len(self.user_time_edges) + len(self.user_user_edges)

    @property
    def total_work(self) -> int:
        """Total per-sweep work units (posts + links)."""
        posts = sum(edge.work for edge in self.user_time_edges)
        links = len(self.user_user_edges)
        return posts + links

    # -- consistency -------------------------------------------------------------

    def post_ids(self) -> np.ndarray:
        """All post indices carried by user-time edges (sorted, unique)."""
        ids = [pid for edge in self.user_time_edges for pid in edge.post_ids]
        return np.asarray(sorted(ids), dtype=np.int64)

    def check_covers(self, corpus: SocialCorpus) -> None:
        """Verify the graph carries every post and link exactly once."""
        ids = self.post_ids()
        expected = np.arange(corpus.num_posts)
        if len(ids) != corpus.num_posts or not np.array_equal(ids, expected):
            raise GraphError("user-time edges do not cover the posts exactly once")
        link_ids = sorted(edge.link_id for edge in self.user_user_edges)
        if link_ids != list(range(corpus.num_links)):
            raise GraphError("user-user edges do not cover the links exactly once")

    def degree_of_user(self, user: int) -> int:
        """Number of edges incident to a user vertex (time + social)."""
        if not 0 <= user < self.num_users:
            raise GraphError(f"user {user} out of range")
        time_degree = sum(1 for e in self.user_time_edges if e.user == user)
        social = sum(
            1 for e in self.user_user_edges if user in (e.src, e.dst)
        )
        return time_degree + social
