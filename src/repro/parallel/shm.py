"""Shared-memory array blocks for the ``processes`` executor.

A :class:`SharedArrayBlock` packs a set of named numpy arrays into one
``multiprocessing.shared_memory`` segment.  The owner process calls
:meth:`SharedArrayBlock.create` once; workers re-open the segment by name
via :meth:`SharedArrayBlock.attach` using the picklable :meth:`spec` — so
dispatching work across processes ships only a name plus the array layout,
never the array contents.

Cleanup notes: workers are always ``multiprocessing`` children of the
creating process, so they share its ``resource_tracker`` — attaching from
a worker registers nothing new (the tracker cache is a set) and only the
owner's :meth:`close` unlinks the name.  ``SharedMemory.close()`` raises
``BufferError`` while numpy views are still exported; :meth:`close` drops
its own views first and treats a remaining pin as "leave the mapping to
process exit" — the name is always unlinked by the owner, so nothing
leaks in ``/dev/shm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


class SharedMemoryError(RuntimeError):
    """Raised on invalid shared-memory block usage."""


#: Per-array alignment inside a block; generous enough for any numpy dtype
#: and keeps arrays on separate cache lines.
_ALIGNMENT = 64


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside a block (picklable)."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


class SharedArrayBlock:
    """Named numpy arrays backed by one shared-memory segment.

    ``block.arrays[name]`` is a live view into the segment: writes made by
    any attached process are immediately visible to all others.  The
    creating process owns the segment and must :meth:`close` it (which
    unlinks); attached processes just :meth:`close` their mapping.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: dict[str, ArraySpec],
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout
        self._owner = owner
        self._closed = False
        self.arrays: dict[str, np.ndarray] = {
            name: np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            for name, spec in layout.items()
        }

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayBlock":
        """Allocate a segment sized for ``arrays`` and copy them in."""
        if not arrays:
            raise SharedMemoryError("cannot create an empty shared block")
        layout: dict[str, ArraySpec] = {}
        offset = 0
        for name, array in arrays.items():
            array = np.asarray(array)
            offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
            layout[name] = ArraySpec(
                offset=offset,
                shape=tuple(array.shape),
                dtype=np.dtype(array.dtype).str,
            )
            offset += array.nbytes
        # A zero-size segment is illegal; pad so empty arrays (e.g. the
        # link table of a no-network fit) still get a valid mapping.
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        block = cls(shm, layout, owner=True)
        for name, array in arrays.items():
            block.arrays[name][...] = array
        return block

    def spec(self) -> dict:
        """Everything a worker needs to :meth:`attach` (picklable)."""
        return {"name": self._shm.name, "layout": self._layout}

    @classmethod
    def attach(cls, spec: dict) -> "SharedArrayBlock":
        """Open an existing block from another process by its spec."""
        try:
            shm = shared_memory.SharedMemory(name=spec["name"])
        except FileNotFoundError as exc:
            raise SharedMemoryError(
                f"shared block {spec.get('name')!r} no longer exists"
            ) from exc
        return cls(shm, spec["layout"], owner=False)

    def close(self) -> None:
        """Release this process's mapping; the owner also unlinks the name.

        Idempotent.  If an external numpy view (e.g. a ``CountState``
        field re-homed into the block) still pins the buffer, the unmap is
        deferred to process exit — the name is unlinked regardless, so the
        segment cannot leak.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
        try:
            self._shm.close()
        except BufferError:
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
