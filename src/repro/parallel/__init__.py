"""GraphLab substitute: vertex-centric GAS engine + parallel COLD sampler.

See DESIGN.md §2 for why a simulated synchronous cluster preserves the
paper's scalability claims (Figs. 13–14) at laptop scale.
"""

from .engine import (
    ClusterReport,
    EngineError,
    NodeTiming,
    SimulatedCluster,
    SuperstepReport,
)
from .graph import ComputationGraph, GraphError, UserTimeEdge, UserUserEdge
from .partition import PartitionError, PartitionStats, Shard, partition_graph
from .sampler import ParallelCOLDSampler
from .shm import SharedArrayBlock, SharedMemoryError
from .worker import ProcessWorkerPool, WorkerCrashError

__all__ = [
    "ClusterReport",
    "ComputationGraph",
    "EngineError",
    "GraphError",
    "NodeTiming",
    "ParallelCOLDSampler",
    "PartitionError",
    "PartitionStats",
    "ProcessWorkerPool",
    "Shard",
    "SharedArrayBlock",
    "SharedMemoryError",
    "SimulatedCluster",
    "SuperstepReport",
    "UserTimeEdge",
    "UserUserEdge",
    "WorkerCrashError",
    "partition_graph",
]
