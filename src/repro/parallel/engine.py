"""A GraphLab-style gather-apply-scatter engine, simulated at laptop scale.

The paper runs its parallel sampler on a distributed GraphLab cluster.  We
substitute a single-machine engine that preserves the *algorithmic* shape:

* each superstep, every node processes its shard against a snapshot of the
  shared counters (GraphLab's gather/apply made explicit as snapshot/merge);
* node deltas are merged at the barrier (scatter's global effect);
* per-node wall time is measured while the shards execute, and the
  *simulated cluster time* of a superstep is ``max(node times) + merge``,
  exactly what a real synchronous cluster would spend.

Because every post/link lives on exactly one shard, the merged counters are
identical to a from-scratch recount of the new assignments; the only
approximation relative to the serial sampler is counter staleness *within*
a superstep — the standard approximate-parallel-Gibbs (AD-LDA-style)
trade-off that the GraphLab implementation also makes.

An optional thread-pool executor runs shards concurrently for real; on
CPython the GIL limits its gains, so the simulated mode is the default for
the scalability benches (and is documented as such in EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass


class EngineError(ValueError):
    """Raised for invalid engine configurations."""


@dataclass(frozen=True)
class NodeTiming:
    """Wall time one simulated node spent on its shard in one superstep."""

    node_id: int
    seconds: float


@dataclass(frozen=True)
class SuperstepReport:
    """Timing of one superstep across all nodes."""

    node_timings: tuple[NodeTiming, ...]
    merge_seconds: float

    @property
    def cluster_seconds(self) -> float:
        """Simulated synchronous-cluster time: slowest node + merge."""
        slowest = max((t.seconds for t in self.node_timings), default=0.0)
        return slowest + self.merge_seconds

    @property
    def serial_seconds(self) -> float:
        """Total work time (what one node would have spent)."""
        return sum(t.seconds for t in self.node_timings) + self.merge_seconds


@dataclass
class ClusterReport:
    """Accumulated timings over a whole run."""

    supersteps: list[SuperstepReport]

    @property
    def cluster_seconds(self) -> float:
        return sum(s.cluster_seconds for s in self.supersteps)

    @property
    def serial_seconds(self) -> float:
        return sum(s.serial_seconds for s in self.supersteps)

    @property
    def speedup(self) -> float:
        """Serial-work / simulated-cluster time; ~num_nodes when balanced."""
        if self.cluster_seconds == 0:
            return 1.0
        return self.serial_seconds / self.cluster_seconds


class SimulatedCluster:
    """Runs node tasks and reports simulated synchronous-cluster timing.

    Parameters
    ----------
    num_nodes:
        Number of simulated nodes; each superstep must supply exactly this
        many tasks (one per shard).
    executor:
        ``"simulated"`` runs tasks sequentially and *reports* parallel time
        (deterministic, GIL-free measurement); ``"threads"`` actually runs
        them on a thread pool.
    """

    def __init__(self, num_nodes: int, executor: str = "simulated") -> None:
        if num_nodes <= 0:
            raise EngineError(f"num_nodes must be positive, got {num_nodes}")
        if executor not in ("simulated", "threads"):
            raise EngineError(f"unknown executor {executor!r}")
        self.num_nodes = num_nodes
        self.executor = executor

    def superstep(
        self,
        node_tasks: Sequence[Callable[[], None]],
        merge: Callable[[], None] | None = None,
    ) -> SuperstepReport:
        """Run one barrier-synchronised superstep and time it.

        ``node_tasks[n]`` is node ``n``'s shard work; ``merge`` runs once at
        the barrier (delta application).
        """
        if len(node_tasks) != self.num_nodes:
            raise EngineError(
                f"expected {self.num_nodes} node tasks, got {len(node_tasks)}"
            )
        timings: list[NodeTiming] = []
        if self.executor == "threads" and self.num_nodes > 1:
            def timed(node_id: int, task: Callable[[], None]) -> NodeTiming:
                start = time.perf_counter()
                task()
                return NodeTiming(node_id, time.perf_counter() - start)

            with ThreadPoolExecutor(max_workers=self.num_nodes) as pool:
                futures = [
                    pool.submit(timed, n, task) for n, task in enumerate(node_tasks)
                ]
                timings = [f.result() for f in futures]
        else:
            for node_id, task in enumerate(node_tasks):
                start = time.perf_counter()
                task()
                timings.append(NodeTiming(node_id, time.perf_counter() - start))

        merge_start = time.perf_counter()
        if merge is not None:
            merge()
        merge_seconds = time.perf_counter() - merge_start
        return SuperstepReport(
            node_timings=tuple(timings), merge_seconds=merge_seconds
        )
