"""A GraphLab-style gather-apply-scatter engine, simulated at laptop scale.

The paper runs its parallel sampler on a distributed GraphLab cluster.  We
substitute a single-machine engine that preserves the *algorithmic* shape:

* each superstep, every node processes its shard against a snapshot of the
  shared counters (GraphLab's gather/apply made explicit as snapshot/merge);
* node deltas are merged at the barrier (scatter's global effect);
* per-node wall time is measured while the shards execute, and the
  *simulated cluster time* of a superstep is ``max(node times) + merge``,
  exactly what a real synchronous cluster would spend.

Because every post/link lives on exactly one shard, the merged counters are
identical to a from-scratch recount of the new assignments; the only
approximation relative to the serial sampler is counter staleness *within*
a superstep — the standard approximate-parallel-Gibbs (AD-LDA-style)
trade-off that the GraphLab implementation also makes.

Fault tolerance and the superstep-replay guarantee
--------------------------------------------------
The engine accepts a pluggable :class:`~repro.resilience.faults.FaultPlan`
(node crashes — possibly mid-shard, straggler delays, merge failures), a
per-node ``node_timeout``, and a bounded exponential-backoff
:class:`~repro.resilience.retry.RetryPolicy`.  When a node task raises
:class:`~repro.resilience.faults.FaultError` or overruns its timeout, the
engine invokes the caller's ``reset`` hook — which must roll the node back
to the **pre-barrier snapshot** — waits out the (simulated) backoff, and
replays the node's work from scratch.  Because failed attempts are rolled
back to the snapshot and the barrier merge only applies complete node
deltas, *a failed node can never corrupt the merged counters*: after any
recovered superstep the merged state equals a from-scratch recount of the
assignments, which ``CountState.check_invariants()`` verifies in the
sampler.  Merge failures are retried the same way (the merge is
idempotent — it recomputes from the snapshot each attempt).  Retries,
injected delays, and backoff waits are all recorded in the
:class:`SuperstepReport`.

Executors
---------
``"simulated"`` runs tasks sequentially and *reports* parallel time —
deterministic, contention-free measurement.  ``"threads"`` runs tasks on a
thread pool (GIL-limited for pure-Python kernels).  ``"processes"`` is the
true multi-core mode: the caller's tasks dispatch shards to a
:class:`~repro.parallel.worker.ProcessWorkerPool` whose workers share the
corpus/snapshot/assignment arrays via shared memory.  The engine drives
``"processes"`` with the same thread-pool dispatch as ``"threads"`` — each
dispatch thread blocks on a worker pipe with the GIL released — so the
retry/timeout/fault machinery is identical across executors; a worker
process dying mid-shard surfaces as a :class:`FaultError` exactly like an
injected crash.

Node tasks may *return* their own measured seconds (a float): remote
workers self-report the compute time of the sweep they ran, which excludes
dispatch overhead and idle-queue waits.  Tasks returning ``None`` are
timed by the engine's own wall clock, as before.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .._compat import keyword_only
from ..resilience.faults import FaultError, FaultPlan
from ..resilience.retry import RetryError, RetryPolicy
from ..telemetry import tracing as trace
from ..telemetry.logconfig import get_logger

_log = get_logger(__name__)


class EngineError(ValueError):
    """Raised for invalid engine configurations."""


@dataclass(frozen=True)
class NodeTiming:
    """Wall time one simulated node spent on its shard in one superstep.

    ``seconds`` accumulates every attempt (including failed ones) plus any
    injected straggler delay; ``retry_wait_seconds`` is the simulated
    backoff spent between attempts.  ``attempt_seconds`` breaks the total
    down per attempt (in attempt order) so recovered supersteps attribute
    compute honestly: the *last* attempt is the one whose work survived
    the barrier, everything before it is lost time.
    """

    node_id: int
    seconds: float
    attempts: int = 1
    retry_wait_seconds: float = 0.0
    attempt_seconds: tuple[float, ...] = ()

    @property
    def retries(self) -> int:
        return self.attempts - 1

    @property
    def compute_seconds(self) -> float:
        """Seconds of the successful (final) attempt — the merged work."""
        if self.attempt_seconds:
            return self.attempt_seconds[-1]
        return self.seconds

    @property
    def lost_seconds(self) -> float:
        """Seconds burned by crashed/timed-out attempts that were rolled back."""
        if self.attempt_seconds:
            return self.seconds - self.attempt_seconds[-1]
        return 0.0


@dataclass(frozen=True)
class SuperstepReport:
    """Timing and recovery record of one superstep across all nodes.

    ``dispatch_wall_seconds`` is the engine's wall clock around the whole
    node phase; ``barrier_seconds`` is the synchronisation overhead beyond
    the slowest node's own compute (dispatch, idle waiting at the barrier,
    pipe turnaround) — ``0.0`` for the ``simulated`` executor, whose node
    phase is sequential by construction.
    """

    node_timings: tuple[NodeTiming, ...]
    merge_seconds: float
    merge_attempts: int = 1
    dispatch_wall_seconds: float = 0.0
    barrier_seconds: float = 0.0

    @property
    def cluster_seconds(self) -> float:
        """Simulated synchronous-cluster time: slowest node + merge."""
        slowest = max(
            (t.seconds + t.retry_wait_seconds for t in self.node_timings),
            default=0.0,
        )
        return slowest + self.merge_seconds

    @property
    def serial_seconds(self) -> float:
        """Total work time (what one node would have spent)."""
        return sum(t.seconds for t in self.node_timings) + self.merge_seconds

    @property
    def retries(self) -> int:
        """Node retries plus merge retries recovered in this superstep."""
        node_retries = sum(t.retries for t in self.node_timings)
        return node_retries + (self.merge_attempts - 1)


@dataclass
class ClusterReport:
    """Accumulated timings over a whole run."""

    supersteps: list[SuperstepReport]

    @property
    def cluster_seconds(self) -> float:
        return sum(s.cluster_seconds for s in self.supersteps)

    @property
    def serial_seconds(self) -> float:
        return sum(s.serial_seconds for s in self.supersteps)

    @property
    def speedup(self) -> float:
        """Serial-work / simulated-cluster time; ~num_nodes when balanced."""
        if self.cluster_seconds == 0:
            return 1.0
        return self.serial_seconds / self.cluster_seconds

    @property
    def total_retries(self) -> int:
        """Recovered node/merge retries across the whole run."""
        return sum(s.retries for s in self.supersteps)


@keyword_only
class SimulatedCluster:
    """Runs node tasks and reports simulated synchronous-cluster timing.

    Parameters
    ----------
    num_nodes:
        Number of simulated nodes; each superstep must supply exactly this
        many tasks (one per shard).
    executor:
        ``"simulated"`` runs tasks sequentially and *reports* parallel time
        (deterministic, GIL-free measurement); ``"threads"`` actually runs
        them on a thread pool; ``"processes"`` dispatches them the same
        way but the tasks hand shards to out-of-process workers (see
        :class:`~repro.parallel.worker.ProcessWorkerPool`).
    fault_plan:
        Optional fault-injection schedule; consulted for straggler delays
        and merge failures (node crashes are injected inside the caller's
        tasks, which raise :class:`FaultError`).
    retry:
        Backoff policy for failed/timed-out nodes and failed merges.
        Delays are *simulated* (recorded, never slept).
    node_timeout:
        Per-node, per-attempt limit in (simulated) seconds; an attempt
        exceeding it is rolled back via ``reset`` and replayed, exactly
        like a crash.
    """

    def __init__(
        self,
        num_nodes: int,
        executor: str = "simulated",
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        node_timeout: float | None = None,
    ) -> None:
        if num_nodes <= 0:
            raise EngineError(f"num_nodes must be positive, got {num_nodes}")
        if executor not in ("simulated", "threads", "processes"):
            raise EngineError(f"unknown executor {executor!r}")
        if node_timeout is not None and node_timeout <= 0:
            raise EngineError(f"node_timeout must be positive, got {node_timeout}")
        self.num_nodes = num_nodes
        self.executor = executor
        self.fault_plan = fault_plan
        self.retry = retry or RetryPolicy()
        self.node_timeout = node_timeout

    def _run_node(
        self,
        node_id: int,
        task: Callable[[], float | None],
        reset: Callable[[int], None] | None,
        superstep_index: int,
    ) -> NodeTiming:
        """One node's work with crash/timeout recovery.

        Each failed attempt is rolled back through ``reset`` before the
        replay, so a retried node always starts from the pre-barrier
        snapshot.  A task returning a float supplies its own measured
        seconds (remote workers self-report compute time); ``None`` keeps
        the engine's wall-clock measurement.
        """
        attempts = 0
        elapsed = 0.0
        wait = 0.0
        attempt_seconds: list[float] = []
        while True:
            if attempts > 0 and reset is not None:
                reset(node_id)
            start = time.perf_counter()
            failure: str | None = None
            reported: float | None = None
            with trace.span(
                "node", node=node_id, superstep=superstep_index, attempt=attempts
            ):
                try:
                    reported = task()
                except FaultError as exc:
                    failure = f"crashed: {exc}"
            seconds = time.perf_counter() - start
            if reported is not None:
                seconds = float(reported)
            if self.fault_plan is not None:
                seconds += self.fault_plan.straggler_delay(
                    superstep_index, node_id, attempts
                )
            elapsed += seconds
            attempt_seconds.append(seconds)
            attempts += 1
            if failure is None and (
                self.node_timeout is None or seconds <= self.node_timeout
            ):
                if attempts > 1:
                    _log.info(
                        "node %d recovered superstep %d on attempt %d "
                        "(%.3fs lost to rolled-back attempts)",
                        node_id,
                        superstep_index,
                        attempts,
                        elapsed - seconds,
                    )
                return NodeTiming(
                    node_id, elapsed, attempts, wait, tuple(attempt_seconds)
                )
            if failure is None:
                failure = (
                    f"timed out after {seconds:.3f}s "
                    f"(limit {self.node_timeout:.3f}s)"
                )
                # Timed-out work completed but is treated as lost (a real
                # cluster reschedules the straggler); roll it back too.
            if attempts >= self.retry.max_attempts:
                _log.error(
                    "node %d failed superstep %d after %d attempts: %s",
                    node_id,
                    superstep_index,
                    attempts,
                    failure,
                )
                raise RetryError(
                    f"node {node_id} failed superstep {superstep_index} "
                    f"after {attempts} attempts: {failure}"
                )
            if reset is None:
                raise EngineError(
                    f"node {node_id} failed ({failure}) but no reset hook was "
                    "given; cannot replay safely"
                )
            _log.warning(
                "node %d superstep %d attempt %d failed (%s); rolling back "
                "and replaying",
                node_id,
                superstep_index,
                attempts,
                failure,
            )
            wait += self.retry.delay(attempts - 1)

    def _run_merge(
        self, merge: Callable[[], None] | None, superstep_index: int
    ) -> tuple[float, float]:
        """Run the barrier merge with failure injection + retry.

        Returns ``(merge_seconds, merge_attempts)``; injected failures add
        simulated backoff to the merge time.  Safe because the merge
        recomputes the global counters from the snapshot each attempt.
        """
        attempts = 0
        extra = 0.0
        while True:
            if self.fault_plan is not None and self.fault_plan.merge_fails(
                superstep_index, attempts
            ):
                attempts += 1
                if attempts >= self.retry.max_attempts:
                    _log.error(
                        "merge of superstep %d failed after %d attempts",
                        superstep_index,
                        attempts,
                    )
                    raise RetryError(
                        f"merge of superstep {superstep_index} failed after "
                        f"{attempts} attempts"
                    )
                _log.warning(
                    "merge of superstep %d failed (attempt %d); retrying",
                    superstep_index,
                    attempts,
                )
                extra += self.retry.delay(attempts - 1)
                continue
            start = time.perf_counter()
            if merge is not None:
                with trace.span("barrier_merge", superstep=superstep_index):
                    merge()
            return time.perf_counter() - start + extra, attempts + 1

    def superstep(
        self,
        node_tasks: Sequence[Callable[[], float | None]],
        merge: Callable[[], None] | None = None,
        reset: Callable[[int], None] | None = None,
        superstep_index: int = 0,
    ) -> SuperstepReport:
        """Run one barrier-synchronised superstep and time it.

        ``node_tasks[n]`` is node ``n``'s shard work; ``merge`` runs once at
        the barrier (delta application); ``reset(n)`` must restore node
        ``n`` to its pre-superstep snapshot and is invoked before every
        replay of a crashed or timed-out node.
        """
        if len(node_tasks) != self.num_nodes:
            raise EngineError(
                f"expected {self.num_nodes} node tasks, got {len(node_tasks)}"
            )
        timings: list[NodeTiming]
        parallel_dispatch = (
            self.executor in ("threads", "processes") and self.num_nodes > 1
        )
        with trace.span(
            "superstep", superstep=superstep_index, executor=self.executor
        ):
            dispatch_start = time.perf_counter()
            if parallel_dispatch:
                with ThreadPoolExecutor(max_workers=self.num_nodes) as pool:
                    futures = [
                        pool.submit(
                            self._run_node, n, task, reset, superstep_index
                        )
                        for n, task in enumerate(node_tasks)
                    ]
                    timings = [f.result() for f in futures]
            else:
                timings = [
                    self._run_node(n, task, reset, superstep_index)
                    for n, task in enumerate(node_tasks)
                ]
            dispatch_wall = time.perf_counter() - dispatch_start
            merge_seconds, merge_attempts = self._run_merge(
                merge, superstep_index
            )
        barrier = 0.0
        if parallel_dispatch:
            slowest = max(
                (t.seconds + t.retry_wait_seconds for t in timings), default=0.0
            )
            barrier = max(0.0, dispatch_wall - slowest)
        return SuperstepReport(
            node_timings=tuple(timings),
            merge_seconds=merge_seconds,
            merge_attempts=merge_attempts,
            dispatch_wall_seconds=dispatch_wall,
            barrier_seconds=barrier,
        )
