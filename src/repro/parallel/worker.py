"""Persistent worker processes for the ``processes`` executor.

:class:`ProcessWorkerPool` gives :class:`~repro.parallel.sampler.ParallelCOLDSampler`
true multi-core sweep execution while preserving the simulated engine's
exact semantics:

* **Zero-copy dispatch.**  The corpus arrays (post table, links), the
  concatenated shard orders, the current assignment arrays, the
  per-superstep counter snapshot, and one delta buffer per node all live
  in :class:`~repro.parallel.shm.SharedArrayBlock` segments created once
  per fit.  Dispatching a shard sends a node id plus an RNG state over a
  pipe — no counters or corpus are ever pickled per superstep.  Fitting a
  :class:`~repro.datasets.packed.PackedCorpus` goes further
  (``packed_path``): the corpus columns never enter shared memory —
  every worker maps the ``.coldpack`` file read-only, so N workers share
  one page-cached copy of the data.
* **Exact merge.**  A worker builds a private
  :class:`~repro.core.state.CountState` whose counters are copies of the
  shared snapshot and whose assignment arrays are the shared views (shards
  own disjoint posts/links, so concurrent writes never collide), runs the
  ordinary :func:`repro.core.gibbs.sweep` (fast kernels by default), and
  writes ``local - snapshot`` into its delta row.  The barrier merge sums
  delta rows in fixed node order on top of the snapshot — bit-identical
  to the in-process ``_Snapshot.merge_into`` arithmetic (integer adds).
* **Draw identity.**  Per-node RNG streams remain parent-owned: each
  dispatch ships ``rng.bit_generator.state`` and each reply returns the
  advanced state.  Workers carry no *chain* state between commands —
  their private counters (and the bit-identical
  :meth:`~repro.core.fastgibbs.SweepCache.refresh`-ed cache) are reset to
  the shared snapshot on every run — so a fault-free ``processes`` fit is
  draw-identical to ``simulated`` and ``threads`` at equal ``num_nodes``,
  regardless of ``num_workers`` or which worker runs which shard.
* **Real crashes.**  An injected :class:`~repro.resilience.faults.NodeCrash`
  makes the worker resample a *fraction* of its shard (corrupting its
  shard's shared assignment slots) and then die via ``os._exit`` — actual
  process death, not an exception.  The pool respawns a replacement and
  raises :class:`WorkerCrashError` (a ``FaultError``), so the engine's
  rollback-and-replay machinery works unchanged.  The draws a dead worker
  consumed are lost with it; the replay restarts from the pre-attempt RNG
  state, which keeps the chain valid (the replayed shard is resampled
  from the restored snapshot) even though a *faulted* run's draws then
  differ from the ``simulated`` executor's replay draws.

Node timing: workers self-report their sweep's CPU seconds
(``time.process_time``), which the engine uses as the node's compute time.
Uncontended, CPU time equals wall time; oversubscribed (more workers than
cores), it still measures each shard's actual work, keeping the simulated
synchronous-cluster metric (``max(node seconds) + merge``) meaningful.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
import traceback
from dataclasses import asdict, dataclass

import numpy as np

from ..core.fastgibbs import SweepCache
from ..core.gibbs import sweep
from ..core.params import Hyperparameters
from ..core.state import CountState, PostTable
from ..resilience.faults import FaultError
from ..telemetry import profiler as profiling
from ..telemetry import tracing
from ..telemetry.logconfig import ROOT_LOGGER_NAME, BufferingLogHandler, get_logger
from ..telemetry.session import NULL_SESSION, TelemetrySession
from .engine import EngineError
from .partition import Shard
from .shm import SharedArrayBlock

_log = get_logger(__name__)

#: Counter arrays snapshotted/merged each superstep (CountState attributes).
COUNTER_FIELDS = (
    "n_user_comm",
    "n_comm_topic",
    "n_comm_topic_time",
    "n_topic_word",
    "n_topic_total",
    "n_link_comm",
)

#: Latent assignment arrays shared across processes (disjoint shard slots).
ASSIGNMENT_FIELDS = ("post_comm", "post_topic", "link_src_comm", "link_dst_comm")

#: Exit code of a worker dying from an injected mid-shard crash.
_CRASH_EXIT = 3


class WorkerCrashError(FaultError):
    """A worker process died mid-shard (real process death)."""


#: How often an idle worker re-checks that its parent is still alive.
_ORPHAN_POLL_SECONDS = 1.0


def _next_command(conn, parent_pid: int, poll_seconds: float):
    """Receive the next pipe command, or ``None`` to shut down.

    Blocks in ``poll(poll_seconds)`` increments instead of a bare
    ``recv()`` so the worker notices a *dead parent*: a SIGKILLed parent
    never sends ``("stop",)``, and with forked siblings holding inherited
    parent-side pipe ends the EOF may never arrive either.  Reparenting
    (``os.getppid()`` no longer the spawning pid) means the parent is
    gone — return ``None`` so the loop exits instead of orphan-spinning.
    """
    while True:
        try:
            if conn.poll(poll_seconds):
                return conn.recv()
        except (EOFError, OSError):
            return None
        if os.getppid() != parent_pid:
            _log.debug("parent %d gone; worker exiting", parent_pid)
            return None


def worker_main(worker_id: int, init: dict, conn) -> None:
    """Worker loop: attach the shared blocks, then serve shard commands.

    Commands are ``("run", node, crash_progress, rng_state)`` or
    ``("stop",)``.  Replies are ``("ok", payload)`` with the advanced RNG
    state, timing, and degeneracy tally, or ``("error", traceback)``.  An
    injected crash never replies — the process exits mid-shard and the
    parent observes the dead pipe.

    Telemetry (``init["telemetry"]``): when the parent's session is
    enabled, the worker buffers its own log records
    (:class:`~repro.telemetry.logconfig.BufferingLogHandler`) and — when
    tracing is on — runs a private span tracer around the shard sweep;
    both buffers are drained into every ``ok`` reply, so logs and spans
    travel home over the existing pipe with no extra channel.  A crashed
    worker's buffers die with it, exactly like its draws.
    """
    import logging
    from contextlib import nullcontext

    telemetry_cfg = init.get("telemetry") or {}
    log_buffer: BufferingLogHandler | None = None
    tracer: tracing.Tracer | None = None
    if telemetry_cfg.get("enabled"):
        log_buffer = BufferingLogHandler()
        root = logging.getLogger(ROOT_LOGGER_NAME)
        root.addHandler(log_buffer)
        root.setLevel(telemetry_cfg.get("log_level", logging.WARNING))
        root.propagate = False
        if telemetry_cfg.get("trace"):
            tracer = tracing.Tracer()
            tracing.set_tracer(tracer)
        _log.debug("worker %d ready (pid %d)", worker_id, os.getpid())
    # Phase profiling is independent of the metrics/trace session: a
    # ``cold profile`` run ships ``profile: True`` with no files at all.
    # The worker's phases travel home in every reply (``profile`` key) and
    # the parent folds them in under a ``worker`` prefix.
    shard_profiler: profiling.PhaseProfiler | None = None
    if telemetry_cfg.get("profile"):
        shard_profiler = profiling.PhaseProfiler()
        profiling.set_profiler(shard_profiler)

    def _phase(name: str):
        if shard_profiler is None:
            return nullcontext()
        return shard_profiler.phase(name)
    blocks = {
        key: SharedArrayBlock.attach(spec) for key, spec in init["blocks"].items()
    }
    data = blocks["data"].arrays
    snapshot = blocks["snapshot"].arrays
    deltas = blocks["deltas"].arrays
    hp = Hyperparameters(**init["hyperparameters"])
    packed = None
    if init.get("packed_path"):
        # Packed dispatch: the corpus never crossed the process boundary —
        # map the .coldpack file read-only and build the post table and
        # link pairs as views of it.  Every worker shares the kernel page
        # cache; only counters, orders, and assignments live in shm.
        from ..datasets.packed import PackedCorpus

        packed = PackedCorpus.open(init["packed_path"])
        posts = packed.post_table()
        links = (
            packed.link_array()
            if init.get("packed_links")
            else np.zeros((0, 2), np.int64)
        )
    else:
        posts = PostTable(
            **{name: data[f"posts_{name}"] for name in CountState._POST_FIELDS}
        )
        links = data["links"]
    post_offsets = data["shard_post_offsets"]
    link_offsets = data["shard_link_offsets"]
    rng = np.random.default_rng()
    # The private state and its SweepCache persist across commands: the
    # corpus-static cache structures (word expansions, metadata lists) are
    # built once, and each run resets the counters to the fresh snapshot
    # and calls the bit-identical ``SweepCache.refresh`` — so per-dispatch
    # overhead scales with the shard, not the corpus.
    local: CountState | None = None
    cache: SweepCache | None = None
    parent_pid = int(init.get("parent_pid", os.getppid()))
    poll_seconds = float(init.get("orphan_poll_seconds", _ORPHAN_POLL_SECONDS))
    while True:
        command = _next_command(conn, parent_pid, poll_seconds)
        if command is None or command[0] == "stop":
            break
        _, node, crash_progress, rng_state = command
        try:
            with _phase("shard"):
                rng.bit_generator.state = rng_state
                cpu_start = time.process_time()
                wall_start = time.perf_counter()
                if local is None:
                    with _phase("reset"):
                        local = CountState(
                            num_communities=init["num_communities"],
                            num_topics=init["num_topics"],
                            posts=posts,
                            links=links,
                            **{
                                name: snapshot[name].copy()
                                for name in COUNTER_FIELDS
                            },
                            **{name: data[name] for name in ASSIGNMENT_FIELDS},
                        )
                    cache = SweepCache(local, hp) if init["fast"] else None
                else:
                    with _phase("reset"):
                        for name in COUNTER_FIELDS:
                            np.copyto(getattr(local, name), snapshot[name])
                        local.degenerate_draws = 0
                    if cache is not None:
                        cache.refresh(local)
                post_order = data["shard_posts"][
                    post_offsets[node] : post_offsets[node + 1]
                ]
                link_order = data["shard_links"][
                    link_offsets[node] : link_offsets[node + 1]
                ]
                if log_buffer is not None:
                    _log.debug(
                        "worker %d: shard %d (%d posts, %d links)",
                        worker_id,
                        node,
                        len(post_order),
                        len(link_order),
                    )
                if crash_progress is not None:
                    # Die for real mid-shard: resample a fraction of the
                    # posts (corrupting this shard's shared assignment
                    # slots exactly like the in-process fault injection),
                    # then exit without replying.  The parent sees the
                    # dead pipe.
                    done = int(len(post_order) * crash_progress)
                    sweep(
                        local,
                        hp,
                        rng,
                        post_order=post_order[:done],
                        link_order=link_order[:0],
                        cache=cache,
                    )
                    os._exit(_CRASH_EXIT)
                with tracing.span("worker_shard", node=node, worker=worker_id):
                    sweep(
                        local,
                        hp,
                        rng,
                        post_order=post_order,
                        link_order=link_order,
                        cache=cache,
                    )
                with _phase("delta_write"):
                    for name in COUNTER_FIELDS:
                        np.subtract(
                            getattr(local, name),
                            snapshot[name],
                            out=deltas[name][node],
                        )
            payload = {
                "node": node,
                "seconds": time.process_time() - cpu_start,
                "wall_seconds": time.perf_counter() - wall_start,
                "degenerate_draws": int(local.degenerate_draws),
                "rng_state": rng.bit_generator.state,
                "rng_draws": int(len(post_order)) + int(len(link_order)),
            }
            if log_buffer is not None:
                payload["logs"] = log_buffer.drain()
            if tracer is not None:
                payload["spans"] = tracer.drain()
            if shard_profiler is not None:
                payload["profile"] = shard_profiler.drain()
            conn.send(("ok", payload))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    if packed is not None:
        local = cache = posts = links = None
        packed.close()
    for block in blocks.values():
        block.close()


@dataclass
class _WorkerHandle:
    worker_id: int
    process: multiprocessing.Process
    conn: object  # multiprocessing.connection.Connection


def _resolve_target(spec: str):
    """Import ``"package.module:function"`` inside a worker process.

    Targets are addressed by name rather than pickled so the pool can
    run functions from modules that themselves import this one (the
    multi-chain runner) without a circular import at spawn time.
    """
    import importlib

    module_name, _, function_name = spec.partition(":")
    if not module_name or not function_name:
        raise EngineError(f"invalid worker target {spec!r}; expected 'module:func'")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, function_name)
    except AttributeError as exc:
        raise EngineError(f"worker target {spec!r} does not exist") from exc


def task_worker_main(worker_id: int, init: dict, conn) -> None:
    """Generic task-worker loop: call ``init['target']`` per command.

    Commands are ``("run", task_id, payload)`` or ``("stop",)``; replies
    are ``("ok", task_id, result)`` or ``("error", task_id, traceback)``.
    ``init['common']`` holds keyword arguments shared by every task (the
    corpus, fit settings) so they cross the process boundary once per
    worker instead of once per task.
    """
    target = _resolve_target(init["target"])
    common = init.get("common") or {}
    _log.debug("task worker %d ready (pid %d)", worker_id, os.getpid())
    parent_pid = int(init.get("parent_pid", os.getppid()))
    poll_seconds = float(init.get("orphan_poll_seconds", _ORPHAN_POLL_SECONDS))
    while True:
        command = _next_command(conn, parent_pid, poll_seconds)
        if command is None or command[0] == "stop":
            break
        _, task_id, payload = command
        try:
            result = target(**common, **payload)
            conn.send(("ok", task_id, result))
        except Exception:
            conn.send(("error", task_id, traceback.format_exc()))


class TaskWorkerPool:
    """A small process pool running a named function over task payloads.

    The multi-chain diagnostics runner
    (:func:`repro.diagnostics.chains.run_chains`) uses this to fit K
    independent chains concurrently.  It shares the shard pool's process
    plumbing (spawn/reap lifecycle, pipe protocol, fork-where-available
    start method) but dispatches *whole independent tasks* instead of
    shared-memory shard sweeps: tasks exchange only their payload and
    result, so no shared blocks are created and any worker can run any
    task.

    Parameters
    ----------
    target:
        ``"module:function"`` resolved inside each worker.
    num_workers:
        Worker processes; capped by the number of submitted tasks in
        :meth:`run_all`.
    common:
        Keyword arguments merged into every task's payload, shipped once
        per worker at spawn.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available, else ``spawn``.
    """

    def __init__(
        self,
        target: str,
        num_workers: int,
        common: dict | None = None,
        start_method: str | None = None,
    ) -> None:
        if num_workers < 1:
            raise EngineError(f"num_workers must be positive, got {num_workers}")
        self._closed = False
        self.num_workers = num_workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._init = {
            "target": target,
            "common": common or {},
            "parent_pid": os.getpid(),
        }
        self._handles: list[_WorkerHandle] = []

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=task_worker_main,
            args=(worker_id, self._init, child_conn),
            name=f"cold-task-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        _log.debug("spawned task worker %d (pid %s)", worker_id, process.pid)
        return _WorkerHandle(worker_id, process, parent_conn)

    def _reap(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        handle.process.join(timeout=5)
        if handle.process.is_alive():  # pragma: no cover - stuck worker
            handle.process.terminate()
            handle.process.join(timeout=5)

    def run_all(self, payloads: list[dict]) -> list:
        """Run every payload; returns results in submission order.

        Tasks are dispatched to at most ``num_workers`` concurrent
        workers, multiplexed over the reply pipes.  A worker that dies
        mid-task raises :class:`WorkerCrashError`; a task that raises
        re-raises as :class:`EngineError` with the worker's traceback.
        Either way the pool is closed before raising — independent tasks
        have no replay semantics to preserve.
        """
        from multiprocessing import connection as mp_connection

        if self._closed:
            raise EngineError("task pool is closed")
        if not payloads:
            return []
        workers = min(self.num_workers, len(payloads))
        try:
            while len(self._handles) < workers:
                self._handles.append(self._spawn(len(self._handles)))
            results: list = [None] * len(payloads)
            pending = list(enumerate(payloads))
            idle = list(self._handles[:workers])
            busy: dict = {}
            while pending or busy:
                while pending and idle:
                    handle = idle.pop()
                    task_id, payload = pending.pop(0)
                    handle.conn.send(("run", task_id, payload))
                    busy[handle.conn] = (handle, task_id)
                ready = mp_connection.wait(list(busy))
                for conn in ready:
                    handle, task_id = busy.pop(conn)
                    try:
                        status, reply_id, result = conn.recv()
                    except (EOFError, BrokenPipeError, OSError) as exc:
                        raise WorkerCrashError(
                            f"task worker {handle.worker_id} died running "
                            f"task {task_id} ({type(exc).__name__})"
                        ) from exc
                    if status != "ok":
                        raise EngineError(
                            f"task {reply_id} failed in worker "
                            f"{handle.worker_id}:\n{result}"
                        )
                    results[reply_id] = result
                    idle.append(handle)
            return results
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Stop and reap every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
            self._reap(handle)
        self._handles = []

    def __enter__(self) -> "TaskWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcessWorkerPool:
    """A fixed pool of worker processes executing shard sweeps.

    Parameters
    ----------
    state:
        The global :class:`CountState`.  Its assignment arrays are
        *re-homed* into shared memory (values preserved) so parent-side
        rollbacks and worker-side resampling act on the same storage;
        :meth:`close` copies them back into private memory.
    hp, shards, fast:
        The sweep configuration; shards fix the (node -> posts/links)
        orders, concatenated once into shared index arrays.
    num_workers:
        Worker processes to spawn; defaults to ``len(shards)``.  Fewer
        workers than shards multiplexes shards over the pool (any worker
        can run any shard — all data is shared and RNG streams travel
        with the dispatch), trading parallelism for memory/cores.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap spawns), else ``spawn``.
    telemetry:
        The fit's :class:`~repro.telemetry.session.TelemetrySession`.
        When enabled, workers mirror the parent's log level into a
        buffered handler and (if tracing) a private tracer, and every
        reply's drained logs/spans are folded back into the session;
        worker crashes and respawns are counted on its registry.
    packed_path:
        Path of the ``.coldpack`` file backing ``state.posts`` (set when
        fitting a :class:`~repro.datasets.packed.PackedCorpus`).  The
        post table and link pairs are then *not* copied into shared
        memory at all — each worker maps the file read-only and shares
        the kernel page cache, so per-worker corpus memory is zero and
        dispatch pickles nothing but a node id and an RNG state.
    """

    def __init__(
        self,
        state: CountState,
        hp: Hyperparameters,
        shards: list[Shard],
        fast: bool = True,
        num_workers: int | None = None,
        start_method: str | None = None,
        telemetry: TelemetrySession | None = None,
        packed_path: "str | os.PathLike | None" = None,
    ) -> None:
        self._closed = False
        self._telemetry = telemetry if telemetry is not None else NULL_SESSION
        self._workers: queue.Queue[_WorkerHandle] = queue.Queue()
        self._blocks: list[SharedArrayBlock] = []
        self._state: CountState | None = None
        self.num_nodes = len(shards)
        if num_workers is None:
            num_workers = self.num_nodes
        if num_workers < 1:
            raise EngineError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = min(num_workers, self.num_nodes)

        post_orders = [shard.post_order() for shard in shards]
        link_orders = [shard.link_order() for shard in shards]
        # With a packed corpus the post/link columns stay on disk: workers
        # re-open the file, so the shm data block carries only the shard
        # orders and assignments (plus an empty links array when the fit
        # excludes the network — the file's links must not be used then).
        packed_links = packed_path is not None and state.links.size > 0
        data_arrays: dict[str, np.ndarray] = {}
        if packed_path is None:
            data_arrays.update(
                {
                    f"posts_{name}": getattr(state.posts, name)
                    for name in CountState._POST_FIELDS
                }
            )
            data_arrays["links"] = state.links
        data_arrays["shard_posts"] = np.concatenate(post_orders)
        data_arrays["shard_links"] = np.concatenate(link_orders)
        data_arrays["shard_post_offsets"] = np.cumsum(
            [0] + [len(order) for order in post_orders], dtype=np.int64
        )
        data_arrays["shard_link_offsets"] = np.cumsum(
            [0] + [len(order) for order in link_orders], dtype=np.int64
        )
        for name in ASSIGNMENT_FIELDS:
            data_arrays[name] = getattr(state, name)
        self._data = SharedArrayBlock.create(data_arrays)
        self._snapshot = SharedArrayBlock.create(
            {name: np.zeros_like(getattr(state, name)) for name in COUNTER_FIELDS}
        )
        self._deltas = SharedArrayBlock.create(
            {
                name: np.zeros(
                    (self.num_nodes, *getattr(state, name).shape), dtype=np.int64
                )
                for name in COUNTER_FIELDS
            }
        )
        self._blocks = [self._deltas, self._snapshot, self._data]
        # Re-home the live assignment arrays into the shared block so the
        # parent's snapshot/rollback and the workers' resampling share
        # storage.  close() restores private copies.
        for name in ASSIGNMENT_FIELDS:
            setattr(state, name, self._data.arrays[name])
        self._state = state

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._init = {
            "blocks": {
                "data": self._data.spec(),
                "snapshot": self._snapshot.spec(),
                "deltas": self._deltas.spec(),
            },
            "hyperparameters": asdict(hp),
            "num_communities": state.num_communities,
            "num_topics": state.num_topics,
            "fast": fast,
            "telemetry": self._telemetry.worker_config(),
            "parent_pid": os.getpid(),
            "packed_path": str(packed_path) if packed_path is not None else None,
            "packed_links": packed_links,
        }
        try:
            for worker_id in range(self.num_workers):
                self._workers.put(self._spawn(worker_id))
        except Exception:
            self.close()
            raise

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, self._init, child_conn),
            name=f"cold-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        _log.debug("spawned worker %d (pid %s)", worker_id, process.pid)
        return _WorkerHandle(worker_id, process, parent_conn)

    def _reap(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        handle.process.join(timeout=5)
        if handle.process.is_alive():  # pragma: no cover - stuck worker
            handle.process.terminate()
            handle.process.join(timeout=5)

    # -- superstep protocol ------------------------------------------------

    def begin_superstep(self, state: CountState) -> None:
        """Freeze the current counters into the shared snapshot block."""
        for name in COUNTER_FIELDS:
            self._snapshot.arrays[name][...] = getattr(state, name)

    def run_shard(
        self,
        node: int,
        rng_state: dict,
        crash_progress: float | None = None,
    ) -> dict:
        """Execute one shard on any idle worker; returns the reply payload.

        Thread-safe (the engine dispatches from one thread per node; the
        idle queue serialises worker checkout).  A worker that dies
        mid-shard is replaced and :class:`WorkerCrashError` is raised so
        the engine's reset/replay path takes over.
        """
        if self._closed:
            raise EngineError("worker pool is closed")
        handle = self._workers.get()
        try:
            handle.conn.send(("run", node, crash_progress, rng_state))
            status, payload = handle.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            dead_pid = handle.process.pid
            self._reap(handle)
            self._workers.put(self._spawn(handle.worker_id))
            if self._telemetry.enabled:
                self._telemetry.metrics.counter("worker_crashes_total").inc()
                self._telemetry.metrics.counter("worker_respawns_total").inc()
            _log.warning(
                "worker %d (pid %s) died while sampling shard %d (%s); "
                "respawned a replacement",
                handle.worker_id,
                dead_pid,
                node,
                type(exc).__name__,
            )
            raise WorkerCrashError(
                f"worker process died while sampling shard {node} "
                f"({type(exc).__name__})"
            ) from exc
        self._workers.put(handle)
        if status != "ok":
            raise EngineError(f"worker failed on shard {node}:\n{payload}")
        self._telemetry.absorb_worker_payload(payload)
        return payload

    def merge_into(
        self,
        state: CountState,
        snapshot_degenerate_draws: int,
        node_degenerate_draws: list[int],
    ) -> None:
        """``global = snapshot + sum_n delta_n``, summed in fixed node order.

        Identical integer arithmetic to the in-process merge, and
        idempotent: the snapshot block is immutable during a superstep and
        every node's delta row is complete before the barrier, so a
        retried merge recomputes the same result regardless of the order
        in which nodes finished.
        """
        for name in COUNTER_FIELDS:
            target = getattr(state, name)
            np.copyto(target, self._snapshot.arrays[name])
            target += self._deltas.arrays[name].sum(axis=0)
        state.degenerate_draws = snapshot_degenerate_draws + int(
            sum(node_degenerate_draws)
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop workers, detach the state, release shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        while True:
            try:
                handle = self._workers.get_nowait()
            except queue.Empty:
                break
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
            self._reap(handle)
        if self._state is not None:
            for name in ASSIGNMENT_FIELDS:
                setattr(self._state, name, getattr(self._state, name).copy())
            self._state = None
        for block in self._blocks:
            block.close()
        self._blocks = []

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
