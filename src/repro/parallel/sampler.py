"""Parallel COLD inference on the simulated GAS engine (paper §4.3, Alg. 2).

Each superstep is one Gibbs sweep executed shard-by-shard:

1. **snapshot** — the global counters are frozen (GraphLab's gather/apply
   phases materialise exactly this per-vertex view);
2. **scatter** — every node resamples the posts and links on its shard with
   the serial kernels of :mod:`repro.core.gibbs`, against its private copy
   of the snapshot (assignments are shared: shards own disjoint posts/links);
3. **merge** — node counter deltas are summed into the new global state.

Because shards partition the posts and links exactly, the merged counters
equal a from-scratch recount of the new assignments; staleness only affects
*which* conditional each draw used, the standard approximate-parallel-Gibbs
trade-off (the GraphLab implementation shares it).

``executor="processes"`` runs the same superstep through a
:class:`~repro.parallel.worker.ProcessWorkerPool`: snapshot, corpus, and
assignment arrays live in shared memory, each node's sweep executes in a
real worker process, and the barrier merge sums per-node delta buffers in
fixed node order.  Per-node RNG streams stay parent-owned (shipped with
each dispatch, returned advanced), so a fault-free ``processes`` fit draws
the identical chain to ``simulated``/``threads`` at equal ``num_nodes``,
for any ``num_workers``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from .. import _compat
from .._compat import keyword_only
from ..core.estimates import ParameterEstimates, average_estimates, estimate_from_state
from ..core.fastgibbs import SweepCache
from ..core.gibbs import sweep
from ..core.likelihood import ConvergenceMonitor, joint_log_likelihood
from ..core.params import Hyperparameters
from ..core.state import CountState
from ..datasets.corpus import SocialCorpus
from ..resilience.faults import FaultError, FaultPlan
from ..resilience.retry import RetryPolicy
from ..telemetry import profiler as profiling
from ..telemetry.logconfig import get_logger
from ..telemetry.profiler import memory_gauges, worker_utilization
from ..telemetry.session import TelemetrySession
from .engine import ClusterReport, EngineError, SimulatedCluster
from .graph import ComputationGraph
from .partition import PartitionStats, Shard, partition_graph
# The counter fields snapshotted/merged each superstep and the shared
# assignment fields captured for replay are defined canonically in
# repro.parallel.worker, which shares them with the process executor.
from .worker import ASSIGNMENT_FIELDS as _ASSIGNMENT_FIELDS
from .worker import COUNTER_FIELDS as _COUNTER_FIELDS
from .worker import ProcessWorkerPool

_log = get_logger(__name__)


@dataclass
class _Snapshot:
    """Frozen pre-barrier state: counters, assignments, degeneracy tally."""

    arrays: dict[str, np.ndarray]
    assignments: dict[str, np.ndarray]
    degenerate_draws: int

    @classmethod
    def of(cls, state: CountState) -> "_Snapshot":
        return cls(
            arrays={name: getattr(state, name).copy() for name in _COUNTER_FIELDS},
            assignments={
                name: getattr(state, name).copy() for name in _ASSIGNMENT_FIELDS
            },
            degenerate_draws=state.degenerate_draws,
        )

    def local_state(self, state: CountState) -> CountState:
        """A node-private state: copied counters, shared data/assignments."""
        return replace(
            state, **{name: array.copy() for name, array in self.arrays.items()}
        )

    def restore_shard(self, state: CountState, shard: Shard) -> None:
        """Roll one shard's shared assignments back to the snapshot.

        Shards own disjoint posts/links, so this never touches slots that
        surviving nodes have already resampled this superstep.
        """
        posts = shard.post_order()
        if len(posts):
            state.post_comm[posts] = self.assignments["post_comm"][posts]
            state.post_topic[posts] = self.assignments["post_topic"][posts]
        links = shard.link_order()
        if len(links):
            state.link_src_comm[links] = self.assignments["link_src_comm"][links]
            state.link_dst_comm[links] = self.assignments["link_dst_comm"][links]

    def merge_into(self, state: CountState, locals_: list[CountState]) -> None:
        """``global = snapshot + sum_n (local_n - snapshot)`` per counter."""
        for name in _COUNTER_FIELDS:
            base = self.arrays[name]
            merged = base.copy()
            for local in locals_:
                merged += getattr(local, name) - base
            getattr(state, name)[...] = merged
        state.degenerate_draws = self.degenerate_draws + sum(
            local.degenerate_draws - self.degenerate_draws for local in locals_
        )


@keyword_only
class ParallelCOLDSampler:
    """COLD inference over ``num_nodes`` simulated cluster nodes.

    Mirrors :class:`~repro.core.model.COLDModel`'s interface; after
    :meth:`fit`, ``estimates_`` holds the averaged parameter estimates and
    ``report_`` the per-superstep cluster timings that Figures 13–14 use.
    Arguments are keyword-only; positional use is deprecated (warns once
    per process).  ``fast`` selects the cached vectorised Gibbs kernels
    per node — draws are bit-identical to the reference kernels, so a
    seeded parallel fit produces the same chain either way.

    ``executor`` picks how node work runs: ``"simulated"`` (sequential,
    deterministic timing), ``"threads"`` (thread pool, GIL-limited), or
    ``"processes"`` (a shared-memory worker pool; true multi-core).  All
    three draw the identical chain for a given ``seed`` and ``num_nodes``.
    ``num_workers`` (``processes`` only) caps the worker processes;
    fewer workers than nodes multiplexes shards over the pool without
    changing the draws.
    """

    def __init__(
        self,
        num_communities: int = 20,
        num_topics: int = 20,
        num_nodes: int = 4,
        executor: str = "simulated",
        num_workers: int | None = None,
        hyperparameters: Hyperparameters | None = None,
        include_network: bool = True,
        kappa: float = 1.0,
        prior: str = "paper",
        seed: int = 0,
        fast: bool = True,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        node_timeout: float | None = None,
        verify_recovery: bool = True,
        metrics_out: str | Path | None = None,
        trace_out: str | Path | None = None,
    ) -> None:
        if num_communities <= 0 or num_topics <= 0:
            raise EngineError("num_communities and num_topics must be positive")
        if prior not in ("paper", "scaled"):
            raise EngineError(f"prior must be 'paper' or 'scaled', got {prior!r}")
        if num_workers is not None and num_workers <= 0:
            raise EngineError(f"num_workers must be positive, got {num_workers}")
        if num_workers is not None and executor != "processes":
            raise EngineError(
                "num_workers only applies to the 'processes' executor"
            )
        self.num_communities = num_communities
        self.num_topics = num_topics
        self.num_nodes = num_nodes
        self.executor = executor
        self.num_workers = num_workers
        self.hyperparameters = hyperparameters
        self.include_network = include_network
        self.kappa = kappa
        self.prior = prior
        self.seed = seed
        self.fast = fast
        self.fault_plan = fault_plan
        self.retry = retry
        self.node_timeout = node_timeout
        #: When true, run ``CountState.check_invariants()`` after every
        #: superstep that recovered from a fault — the replay guarantee.
        self.verify_recovery = verify_recovery
        #: Telemetry destinations (see :mod:`repro.telemetry`): a JSONL
        #: metrics stream and/or a Chrome trace_event file; ``None`` keeps
        #: the instrumentation a no-op.
        self.metrics_out = None if metrics_out is None else str(metrics_out)
        self.trace_out = None if trace_out is None else str(trace_out)
        self._telemetry = TelemetrySession.disabled()
        self.state_: CountState | None = None
        self.estimates_: ParameterEstimates | None = None
        self.report_: ClusterReport | None = None
        self.partition_stats_: PartitionStats | None = None
        self.monitor_: ConvergenceMonitor | None = None

    def fit(
        self,
        corpus: SocialCorpus,
        num_iterations: int = 100,
        burn_in: int | None = None,
        sample_interval: int = 5,
        likelihood_interval: int = 0,
    ) -> "ParallelCOLDSampler":
        """Run ``num_iterations`` parallel sweeps and store estimates."""
        if num_iterations <= 0:
            raise EngineError("num_iterations must be positive")
        if burn_in is None:
            burn_in = num_iterations // 2
        if not 0 <= burn_in < num_iterations:
            raise EngineError("burn_in must lie in [0, num_iterations)")

        hp = self._resolve_hyperparameters(corpus)
        seed_seq = np.random.SeedSequence(self.seed)
        init_rng = np.random.default_rng(seed_seq.spawn(1)[0])
        state = CountState.initialize(
            corpus,
            self.num_communities,
            self.num_topics,
            init_rng,
            include_network=self.include_network,
        )

        graph = ComputationGraph.from_corpus(corpus)
        if not self.include_network:
            graph.user_user_edges = []
        shards, stats = partition_graph(graph, self.num_nodes)
        cluster = SimulatedCluster(
            num_nodes=self.num_nodes,
            executor=self.executor,
            fault_plan=self.fault_plan,
            retry=self.retry,
            node_timeout=self.node_timeout,
        )
        node_rngs = [
            np.random.default_rng(child) for child in seed_seq.spawn(self.num_nodes)
        ]

        telemetry = TelemetrySession.create(
            metrics_path=self.metrics_out, trace_path=self.trace_out
        )
        self._telemetry = telemetry
        telemetry.begin(
            config={
                "num_communities": self.num_communities,
                "num_topics": self.num_topics,
                "include_network": self.include_network,
                "kappa": self.kappa,
                "prior": self.prior,
                "fast": self.fast,
                "num_iterations": num_iterations,
                "burn_in": burn_in,
                "sample_interval": sample_interval,
                "likelihood_interval": likelihood_interval,
            },
            seed=self.seed,
            executor=self.executor,
            num_nodes=self.num_nodes,
            num_workers=self.num_workers,
            num_iterations=num_iterations,
        )

        pool: ProcessWorkerPool | None = None
        monitor = ConvergenceMonitor()
        if telemetry.enabled:
            monitor.attach(
                telemetry.likelihood_sink(int(state.posts.lengths.sum()))
            )
            _log.info(
                "parallel fit: %d node(s), executor=%s, %d sweep(s)",
                self.num_nodes,
                self.executor,
                num_iterations,
            )
        samples: list[ParameterEstimates] = []
        supersteps = []
        try:
            with telemetry:
                if self.executor == "processes":
                    # A packed corpus carries the path of its mmap-backed
                    # file; workers re-open it read-only instead of having
                    # the post/link columns copied into shared memory.
                    packed_path = getattr(corpus, "packed_path", None)
                    if packed_path is None and (
                        getattr(corpus, "packed_source", None) is not None
                    ):
                        _compat.warn_deprecated(
                            "pickle-corpus-dispatch",
                            "dispatching a materialised corpus to the "
                            "'processes' executor copies every post into "
                            "shared memory; this corpus came from a packed "
                            "file — fit the PackedCorpus directly so "
                            "workers map the .coldpack instead",
                        )
                    pool = ProcessWorkerPool(
                        state,
                        hp,
                        shards,
                        fast=self.fast,
                        num_workers=self.num_workers,
                        telemetry=telemetry,
                        packed_path=packed_path,
                    )
                for iteration in range(1, num_iterations + 1):
                    sweep_start = time.perf_counter()
                    report, churn = self._superstep(
                        state, hp, shards, cluster, node_rngs, iteration, pool
                    )
                    sweep_wall = time.perf_counter() - sweep_start
                    prof = profiling.get_profiler()
                    if prof is not None:
                        # Parent-side phase attribution of the superstep:
                        # the dispatch window splits into the slowest
                        # node's compute and the synchronisation overhead
                        # beyond it (the engine's barrier reading), so the
                        # leaves sum to the superstep wall alongside
                        # snapshot + merge.
                        prof.add(("dispatch",), report.dispatch_wall_seconds)
                        prof.add(
                            ("dispatch", "compute"),
                            report.dispatch_wall_seconds
                            - report.barrier_seconds,
                        )
                        if report.barrier_seconds:
                            prof.add(
                                ("dispatch", "barrier"), report.barrier_seconds
                            )
                        prof.add(("merge",), report.merge_seconds)
                    supersteps.append(report)
                    if self.verify_recovery and report.retries:
                        # The superstep replayed at least one node (or re-ran
                        # the merge); prove the recovery corrupted nothing.
                        state.check_invariants()
                    likelihood = None
                    if (
                        likelihood_interval
                        and iteration % likelihood_interval == 0
                    ):
                        likelihood = joint_log_likelihood(state, hp)
                        monitor.record(likelihood)
                    if (
                        iteration > burn_in
                        and (iteration - burn_in) % sample_interval == 0
                    ):
                        samples.append(estimate_from_state(state, hp))
                    if telemetry.enabled:
                        self._record_superstep(
                            telemetry,
                            state,
                            iteration,
                            num_iterations,
                            report,
                            sweep_wall,
                            churn,
                            likelihood,
                        )
                telemetry.end(sweeps=num_iterations)
        finally:
            if pool is not None:
                pool.close()
            telemetry.close()
            self._telemetry = TelemetrySession.disabled()

        if not samples:
            samples.append(estimate_from_state(state, hp))
        monitor.degenerate_draws = state.degenerate_draws
        self.state_ = state
        self.estimates_ = average_estimates(samples)
        self.report_ = ClusterReport(supersteps=supersteps)
        self.partition_stats_ = stats
        self.monitor_ = monitor
        self.hyperparameters = hp
        return self

    def _superstep(
        self,
        state: CountState,
        hp: Hyperparameters,
        shards: list[Shard],
        cluster: SimulatedCluster,
        node_rngs: list[np.random.Generator],
        iteration: int,
        pool: ProcessWorkerPool | None = None,
    ):
        if pool is not None:
            return self._process_superstep(
                state, shards, cluster, node_rngs, iteration, pool
            )
        with profiling.phase("snapshot"):
            snapshot = _Snapshot.of(state)
            locals_ = [snapshot.local_state(state) for _ in shards]
        attempt_counters = [0] * len(shards)
        plan = cluster.fault_plan

        def make_task(node: int):
            shard = shards[node]
            rng = node_rngs[node]

            def task() -> None:
                attempt = attempt_counters[node]
                attempt_counters[node] += 1
                local = locals_[node]  # re-read: reset() swaps in a fresh copy
                # The cache is derived entirely from the local snapshot, so
                # building it per attempt keeps crash replays exact.
                cache = SweepCache(local, hp) if self.fast else None
                post_order = shard.post_order()
                link_order = shard.link_order()
                crash = (
                    plan.crash_for(iteration, node, attempt)
                    if plan is not None
                    else None
                )
                if crash is not None:
                    # Die mid-shard: do a fraction of the work (corrupting
                    # local counters and this shard's shared assignment
                    # slots), then fail.  The engine rolls it back via
                    # reset() and replays the full shard.
                    done = int(len(post_order) * crash.progress)
                    sweep(
                        local,
                        hp,
                        rng,
                        post_order=post_order[:done],
                        link_order=link_order[:0],
                        cache=cache,
                    )
                    raise FaultError(
                        f"injected crash of node {node} at superstep "
                        f"{iteration} ({done}/{len(post_order)} posts done)"
                    )
                sweep(
                    local,
                    hp,
                    rng,
                    post_order=post_order,
                    link_order=link_order,
                    cache=cache,
                )

            return task

        def reset(node: int) -> None:
            locals_[node] = snapshot.local_state(state)
            snapshot.restore_shard(state, shards[node])

        tasks = [make_task(n) for n in range(len(shards))]
        report = cluster.superstep(
            tasks,
            merge=lambda: snapshot.merge_into(state, locals_),
            reset=reset,
            superstep_index=iteration,
        )
        return report, self._compute_churn(state, snapshot)

    def _process_superstep(
        self,
        state: CountState,
        shards: list[Shard],
        cluster: SimulatedCluster,
        node_rngs: list[np.random.Generator],
        iteration: int,
        pool: ProcessWorkerPool,
    ):
        """One superstep through the shared-memory worker pool.

        Same structure as the in-process path — snapshot, scatter, merge —
        but the shard sweeps execute in worker processes against the
        shared snapshot, and the merge sums the preallocated per-node
        delta buffers.  RNG streams stay parent-owned: each dispatch
        ships the node's generator state and stores the advanced state
        from the reply, so draws match the ``simulated`` executor exactly
        in fault-free supersteps.  An injected crash becomes real worker
        death (the pool raises :class:`~repro.parallel.worker.WorkerCrashError`,
        a ``FaultError``), and the engine's reset/replay path restores
        the shard's shared assignment slots from the snapshot; the dead
        worker's consumed draws are lost, so the replay restarts from the
        pre-attempt RNG state.
        """
        with profiling.phase("snapshot"):
            snapshot = _Snapshot.of(state)
            pool.begin_superstep(state)
        plan = cluster.fault_plan
        attempt_counters = [0] * len(shards)
        node_degenerates = [0] * len(shards)

        def make_task(node: int):
            rng = node_rngs[node]

            def task() -> float:
                attempt = attempt_counters[node]
                attempt_counters[node] += 1
                crash = (
                    plan.crash_for(iteration, node, attempt)
                    if plan is not None
                    else None
                )
                result = pool.run_shard(
                    node,
                    rng.bit_generator.state,
                    crash_progress=None if crash is None else crash.progress,
                )
                rng.bit_generator.state = result["rng_state"]
                node_degenerates[node] = result["degenerate_draws"]
                return result["seconds"]

            return task

        def reset(node: int) -> None:
            snapshot.restore_shard(state, shards[node])

        tasks = [make_task(n) for n in range(len(shards))]
        report = cluster.superstep(
            tasks,
            merge=lambda: pool.merge_into(
                state, snapshot.degenerate_draws, node_degenerates
            ),
            reset=reset,
            superstep_index=iteration,
        )
        return report, self._compute_churn(state, snapshot)

    def _compute_churn(self, state: CountState, snapshot: _Snapshot):
        """Post-merge assignment churn vs the superstep's snapshot.

        The snapshot already copies every assignment array (the replay
        path needs them), so churn costs only the comparisons — and only
        when telemetry is on.
        """
        if not self._telemetry.enabled:
            return None
        before = snapshot.assignments
        churn = {
            "post_comm": int(
                np.count_nonzero(state.post_comm != before["post_comm"])
            ),
            "post_topic": int(
                np.count_nonzero(state.post_topic != before["post_topic"])
            ),
        }
        if state.num_links:
            churn["link"] = int(
                np.count_nonzero(
                    (state.link_src_comm != before["link_src_comm"])
                    | (state.link_dst_comm != before["link_dst_comm"])
                )
            )
        return churn

    def _record_superstep(
        self,
        telemetry: TelemetrySession,
        state: CountState,
        iteration: int,
        num_iterations: int,
        report,
        sweep_wall: float,
        churn,
        likelihood: float | None,
    ) -> None:
        """Feed the registry and emit one ``kind="sweep"`` JSONL record."""
        metrics = telemetry.metrics
        draws = state.num_posts + state.num_links
        metrics.counter("supersteps_total").inc()
        metrics.counter("gibbs_draws_total").inc(draws)
        retries = sum(t.retries for t in report.node_timings)
        if retries:
            metrics.counter("node_replays_total").inc(retries)
        if report.merge_attempts > 1:
            metrics.counter("merge_retries_total").inc(report.merge_attempts - 1)
        metrics.histogram("sweep_seconds").observe(sweep_wall)
        metrics.histogram("merge_seconds").observe(report.merge_seconds)
        node_hist = metrics.histogram("node_compute_seconds")
        for timing in report.node_timings:
            node_hist.observe(timing.compute_seconds)
        if report.barrier_seconds:
            metrics.histogram("barrier_seconds").observe(report.barrier_seconds)
        metrics.gauge("sweep").set(iteration)
        utilization = worker_utilization(
            [t.seconds for t in report.node_timings],
            [t.compute_seconds for t in report.node_timings],
            sweep_wall,
        )
        metrics.gauge("worker_busy_fraction").set(utilization["busy_fraction"])
        metrics.gauge("worker_straggler_ratio").set(
            utilization["straggler_ratio"]
        )
        memory = memory_gauges(include_children=self.executor == "processes")
        metrics.gauge("rss_peak_mb").set(memory["rss_peak_mb"])
        metrics.gauge("major_page_faults").set(memory["major_page_faults"])

        record = {
            "sweep": iteration,
            "total_sweeps": num_iterations,
            "wall_seconds": sweep_wall,
            "cluster_seconds": report.cluster_seconds,
            "node_seconds": [t.seconds for t in report.node_timings],
            "node_compute_seconds": [
                t.compute_seconds for t in report.node_timings
            ],
            "merge_seconds": report.merge_seconds,
            "barrier_seconds": report.barrier_seconds,
            "dispatch_wall_seconds": report.dispatch_wall_seconds,
            "retries": retries,
            "merge_attempts": report.merge_attempts,
            "rng_draws": draws,
            "busy_fraction": utilization["busy_fraction"],
            "straggler_ratio": utilization["straggler_ratio"],
            "rss_peak_mb": memory["rss_peak_mb"],
            "major_page_faults": memory["major_page_faults"],
        }
        if churn is not None:
            record["churn"] = churn
        if likelihood is not None:
            record["log_likelihood"] = likelihood
            perplexity = telemetry.metrics.gauge("perplexity").value
            if perplexity is not None:
                record["perplexity"] = perplexity
        telemetry.emit("sweep", **record)

    def _resolve_hyperparameters(self, corpus: SocialCorpus) -> Hyperparameters:
        if self.hyperparameters is not None:
            return self.hyperparameters
        network_corpus = corpus if self.include_network else None
        if self.prior == "scaled":
            return Hyperparameters.scaled(
                self.num_communities, self.num_topics, network_corpus
            )
        return Hyperparameters.default(
            self.num_communities, self.num_topics, network_corpus, kappa=self.kappa
        )

    # -- results ----------------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self.estimates_ is not None

    def training_seconds(self) -> float:
        """Total simulated-cluster training time (Fig. 13/14 metric)."""
        if self.report_ is None:
            raise EngineError("sampler is not fitted; call fit() first")
        return self.report_.cluster_seconds

    def speedup(self) -> float:
        """Serial-work / cluster-time ratio achieved by the partitioning."""
        if self.report_ is None:
            raise EngineError("sampler is not fitted; call fit() first")
        return self.report_.speedup
