"""Edge partitioning across simulated cluster nodes (paper §4.3).

"The data, as well as computation tasks, is partitioned into fine
granularity and evenly distributed to each vertex and edge" — we reproduce
this with greedy longest-processing-time (LPT) bin packing of edges onto
``num_nodes`` shards, balancing the per-sweep work estimate (posts + links).
LPT guarantees a makespan within 4/3 of optimal, which keeps the simulated
cluster's load imbalance low and the Fig.-13b speedups near-linear.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .graph import ComputationGraph, UserTimeEdge, UserUserEdge


class PartitionError(ValueError):
    """Raised for invalid partitioning requests."""


@dataclass
class Shard:
    """One cluster node's slice of the computation graph."""

    node_id: int
    user_time_edges: list[UserTimeEdge] = field(default_factory=list)
    user_user_edges: list[UserUserEdge] = field(default_factory=list)

    @property
    def work(self) -> int:
        posts = sum(edge.work for edge in self.user_time_edges)
        return posts + len(self.user_user_edges)

    def post_order(self) -> np.ndarray:
        """Post indices this shard resamples, in edge order."""
        ids = [pid for edge in self.user_time_edges for pid in edge.post_ids]
        return np.asarray(ids, dtype=np.int64)

    def link_order(self) -> np.ndarray:
        """Link indices this shard resamples."""
        return np.asarray(
            [edge.link_id for edge in self.user_user_edges], dtype=np.int64
        )


@dataclass(frozen=True)
class PartitionStats:
    """Load-balance summary of a partitioning."""

    work_per_node: tuple[int, ...]

    @property
    def imbalance(self) -> float:
        """max/mean work ratio; 1.0 is perfectly balanced."""
        work = np.asarray(self.work_per_node, dtype=np.float64)
        mean = work.mean()
        if mean == 0:
            return 1.0
        return float(work.max() / mean)

    @property
    def total_work(self) -> int:
        return int(sum(self.work_per_node))


def partition_graph(
    graph: ComputationGraph, num_nodes: int
) -> tuple[list[Shard], PartitionStats]:
    """LPT-balance all edges of ``graph`` onto ``num_nodes`` shards.

    Edges are sorted by decreasing work and each is placed on the currently
    lightest shard (min-heap).  Every edge lands on exactly one shard, so
    each post/link is resampled by exactly one node per superstep.
    """
    if num_nodes <= 0:
        raise PartitionError(f"num_nodes must be positive, got {num_nodes}")
    shards = [Shard(node_id=n) for n in range(num_nodes)]
    heap: list[tuple[int, int]] = [(0, n) for n in range(num_nodes)]
    heapq.heapify(heap)

    edges: list[tuple[int, object]] = [
        (edge.work, edge) for edge in graph.user_time_edges
    ]
    edges.extend((edge.work, edge) for edge in graph.user_user_edges)
    # Sort by decreasing work; tie-break deterministically by type and ids.
    def sort_key(item: tuple[int, object]) -> tuple:
        work, edge = item
        if isinstance(edge, UserTimeEdge):
            return (-work, 0, edge.user, edge.time)
        return (-work, 1, edge.link_id, 0)

    for work, edge in sorted(edges, key=sort_key):
        load, node = heapq.heappop(heap)
        if isinstance(edge, UserTimeEdge):
            shards[node].user_time_edges.append(edge)
        else:
            shards[node].user_user_edges.append(edge)
        heapq.heappush(heap, (load + work, node))

    stats = PartitionStats(work_per_node=tuple(shard.work for shard in shards))
    return shards, stats
