"""Gibbs sweep benchmark harness: reference kernels vs the fast path.

``cold bench`` (see :mod:`repro.cli`) runs this suite and writes
``BENCH_gibbs.json``, the committed perf artefact EXPERIMENTS.md
documents.  Each case builds a planted synthetic corpus, warms a chain
per kernel path, and reports the best-of-``reps`` per-sweep wall time —
warmed chains and min-of-reps because single-shot sweep timings on a
busy machine swing by 30%+.

Two things keep the numbers honest:

* **equivalence first** — every case replays a few sweeps through both
  paths from the same seed and records ``draws_match``; a speedup over
  kernels that draw a *different* chain would be meaningless.
* **occupancy alongside** — the fast path's sparse cell iteration gains
  depend on how concentrated the chain is, so each case reports its
  (community, topic) occupancy summary via
  :meth:`~repro.core.state.CountState.top_comm_topic_cells`.

A second suite (``cold bench --parallel``, written as
``BENCH_parallel.json``) measures the parallel sampler's scaling over
cluster nodes with a chosen executor, applying the same discipline:
executor equivalence against the sequential ``simulated`` oracle is
re-checked on every run and recorded as ``draws_match``.

A third harness (:func:`run_telemetry_overhead_case`, gated by
``benchmarks/perf/test_telemetry_overhead.py``) enforces the telemetry
layer's off-by-default-cheap contract: per-sweep wall time with
``metrics_out``/``trace_out`` enabled must stay within a few percent of
a dark fit, and the drawn chain must be bit-identical either way
(telemetry never consumes RNG).

A fourth harness (:func:`run_diagnostics_overhead_case`, gated by
``benchmarks/perf/test_diagnostics_overhead.py``, written as
``BENCH_diagnostics.json`` by ``cold bench --diagnostics``) does the
same for the quality-streaming diagnostics of :mod:`repro.diagnostics`:
a stride-10 :class:`~repro.diagnostics.quality.QualityStream` must cost
under 5% per sweep *amortised* — the statistic is the mean (not min)
per-sweep time, because the stride concentrates the cost on every tenth
sweep and a min would simply land on an unmetered one — and the drawn
chain must again be bit-identical with the stream attached or not.

Memory is tracked alongside wall time: every case record carries
``peak_rss_mb`` (:func:`peak_rss_mb`, the ``getrusage`` high-water mark).
Because ``ru_maxrss`` is a monotonic per-process maximum, the large-scale
packed harness (:func:`run_packed_scaling_case`, gated by
``benchmarks/perf/test_packed_scaling.py``) measures each scale point in
a fresh *spawned* subprocess — chunked ``.coldpack`` generation and an
mmap-backed ``processes``-executor fit per corpus size — so the reported
peaks are per-point facts, not whichever earlier case was fattest.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import platform
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from .core.fastgibbs import SweepCache
from .core.gibbs import sweep
from .core.model import COLDModel
from .core.params import Hyperparameters
from .core.state import CountState
from .datasets.corpus import SocialCorpus
from .datasets.synthetic import SyntheticConfig, generate_corpus
from .parallel.sampler import ParallelCOLDSampler
from .resilience.checkpoint import atomic_write_text

__all__ = [
    "DEFAULT_COMPARE_THRESHOLD",
    "DEFAULT_HISTORY_PATH",
    "MEDIUM",
    "PACKED_SCALES",
    "SMOKE",
    "BenchCase",
    "append_history",
    "comparable_metrics",
    "compare_benchmarks",
    "comparison_regressed",
    "diagnostics_draws_match",
    "draws_match",
    "environment_stamp",
    "machine_fingerprint",
    "metric_direction",
    "packed_draws_match",
    "packed_scale_config",
    "parallel_draws_match",
    "peak_rss_mb",
    "profiler_draws_match",
    "read_history",
    "render_comparison",
    "resolve_baseline",
    "run_benchmark",
    "run_case",
    "run_diagnostics_overhead_case",
    "run_packed_scaling_case",
    "run_parallel_benchmark",
    "run_parallel_case",
    "run_profile_case",
    "run_profiler_overhead_case",
    "run_serving_case",
    "run_streaming_benchmark",
    "run_streaming_case",
    "run_telemetry_overhead_case",
    "telemetry_draws_match",
    "write_benchmark",
    "write_parallel_benchmark",
    "write_diagnostics_benchmark",
    "write_serving_benchmark",
    "write_streaming_benchmark",
]


def peak_rss_mb(include_children: bool = False) -> float:
    """Peak resident set size of this process in MB (``getrusage`` high-water).

    ``include_children`` folds in the max over *waited-for* child
    processes (``RUSAGE_CHILDREN``) — the right reading for fits that ran
    a worker pool.  Note the counter is monotonic per process: it reports
    the fattest moment since process start, which is why the packed
    scaling harness isolates each scale point in a fresh subprocess.
    Returns 0.0 on platforms without ``resource`` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak = max(peak, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
    return round(peak / divisor, 1)


@dataclass(frozen=True)
class BenchCase:
    """One benchmark scenario: a synthetic corpus plus model dimensions.

    The planted generator uses half the model's latent dimensions (floored
    at 4), so the chain has real structure to find without being handed
    the answer — occupancy then concentrates the way fitted chains do,
    which is what the fast path's sparse iteration is built for.
    """

    name: str
    num_users: int
    num_communities: int
    num_topics: int
    num_time_slices: int
    vocab_size: int
    mean_posts_per_user: float
    mean_words_per_post: float
    mean_links_per_user: float
    seed: int = 7

    def build_corpus(self) -> SocialCorpus:
        config = SyntheticConfig(
            num_users=self.num_users,
            num_communities=max(4, self.num_communities // 2),
            num_topics=max(4, self.num_topics // 2),
            num_time_slices=self.num_time_slices,
            vocab_size=self.vocab_size,
            mean_posts_per_user=self.mean_posts_per_user,
            mean_words_per_post=self.mean_words_per_post,
            mean_links_per_user=self.mean_links_per_user,
            seed=self.seed,
        )
        corpus, _truth = generate_corpus(config)
        return corpus


#: Lint-gate scale: a few hundred draws, finishes in seconds.
SMOKE = BenchCase(
    name="smoke",
    num_users=40,
    num_communities=4,
    num_topics=6,
    num_time_slices=6,
    vocab_size=300,
    mean_posts_per_user=4.0,
    mean_words_per_post=8.0,
    mean_links_per_user=2.0,
)

#: The headline case BENCH_gibbs.json is about: a medium corpus (600
#: users, ~4.8K posts of ~40 words, ~1.8K links) fitted with C=20, K=40.
MEDIUM = BenchCase(
    name="medium",
    num_users=600,
    num_communities=20,
    num_topics=40,
    num_time_slices=12,
    vocab_size=2000,
    mean_posts_per_user=8.0,
    mean_words_per_post=40.0,
    mean_links_per_user=3.0,
)


def draws_match(
    corpus: SocialCorpus,
    hp: Hyperparameters,
    case: BenchCase,
    num_sweeps: int = 3,
) -> bool:
    """True iff both kernel paths draw the identical chain from one seed."""
    states = []
    for fast in (False, True):
        rng = np.random.default_rng(case.seed + 1)
        state = CountState.initialize(
            corpus, case.num_communities, case.num_topics, rng
        )
        cache = SweepCache(state, hp) if fast else None
        for _ in range(num_sweeps):
            sweep(state, hp, rng, cache=cache)
        states.append(state)
    reference, fast_state = states
    return (
        np.array_equal(reference.post_comm, fast_state.post_comm)
        and np.array_equal(reference.post_topic, fast_state.post_topic)
        and np.array_equal(reference.link_src_comm, fast_state.link_src_comm)
        and np.array_equal(reference.link_dst_comm, fast_state.link_dst_comm)
        and reference.degenerate_draws == fast_state.degenerate_draws
    )


def run_case(
    case: BenchCase,
    warmup: int = 10,
    reps: int = 5,
    sweeps_per_rep: int = 2,
    equivalence_sweeps: int = 3,
) -> dict:
    """Benchmark one case; returns its JSON-ready result record."""
    corpus = case.build_corpus()
    hp = Hyperparameters.default(
        case.num_communities, case.num_topics, corpus
    )
    seconds: dict[str, float] = {}
    occupancy: dict | None = None
    for mode in ("reference", "fast"):
        rng = np.random.default_rng(case.seed)
        state = CountState.initialize(
            corpus, case.num_communities, case.num_topics, rng
        )
        cache = SweepCache(state, hp) if mode == "fast" else None
        for _ in range(warmup):
            sweep(state, hp, rng, cache=cache)
        best = math.inf
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(sweeps_per_rep):
                sweep(state, hp, rng, cache=cache)
            best = min(best, (time.perf_counter() - start) / sweeps_per_rep)
        seconds[mode] = best
        if mode == "fast":
            cs, ks, counts = state.top_comm_topic_cells(10)
            occupancy = {
                "active_cells": int(len(state.active_comm_topic_cells()[0])),
                "total_cells": case.num_communities * case.num_topics,
                "top_cells": [
                    [int(c), int(k), int(n)]
                    for c, k, n in zip(cs, ks, counts)
                ],
            }
    return {
        "name": case.name,
        "config": asdict(case),
        "corpus": {
            "num_posts": corpus.num_posts,
            "num_links": len(corpus.links),
            "mean_post_length": round(
                float(np.mean([len(post) for post in corpus.posts])), 2
            ),
        },
        "reference_seconds_per_sweep": round(seconds["reference"], 5),
        "fast_seconds_per_sweep": round(seconds["fast"], 5),
        "speedup": round(seconds["reference"] / seconds["fast"], 2),
        "draws_match": draws_match(corpus, hp, case, equivalence_sweeps),
        "occupancy": occupancy,
        "peak_rss_mb": peak_rss_mb(),
    }


def run_benchmark(
    cases: tuple[BenchCase, ...] = (SMOKE, MEDIUM),
    warmup: int = 10,
    reps: int = 5,
    sweeps_per_rep: int = 2,
) -> dict:
    """Run every case; returns the full JSON-ready payload."""
    return {
        "benchmark": "collapsed Gibbs sweep, reference vs fast kernels",
        "harness": "repro.perf",
        **environment_stamp(),
        "method": {
            "warmup_sweeps": warmup,
            "reps": reps,
            "sweeps_per_rep": sweeps_per_rep,
            "statistic": "min over reps of mean seconds per sweep",
        },
        "cases": [
            run_case(case, warmup=warmup, reps=reps, sweeps_per_rep=sweeps_per_rep)
            for case in cases
        ],
    }


def write_benchmark(
    path: str | Path,
    cases: tuple[BenchCase, ...] = (SMOKE, MEDIUM),
    warmup: int = 10,
    reps: int = 5,
    sweeps_per_rep: int = 2,
) -> dict:
    """Run the benchmark and atomically write its JSON to ``path``."""
    payload = run_benchmark(
        cases, warmup=warmup, reps=reps, sweeps_per_rep=sweeps_per_rep
    )
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


def _states_identical(reference: CountState, candidate: CountState) -> bool:
    return (
        np.array_equal(reference.post_comm, candidate.post_comm)
        and np.array_equal(reference.post_topic, candidate.post_topic)
        and np.array_equal(reference.link_src_comm, candidate.link_src_comm)
        and np.array_equal(reference.link_dst_comm, candidate.link_dst_comm)
        and reference.degenerate_draws == candidate.degenerate_draws
    )


def telemetry_draws_match(
    corpus: SocialCorpus, case: BenchCase, num_sweeps: int = 3
) -> bool:
    """True iff telemetry-on and telemetry-off fits draw the same chain.

    The telemetry layer must never consume RNG; this replays a short fit
    with metrics + tracing enabled (written to a throwaway directory) and
    with both disabled, from the same seed, and compares every assignment
    array bitwise.
    """
    states = []
    with tempfile.TemporaryDirectory() as tmp:
        for enabled in (False, True):
            run_dir = Path(tmp) / ("on" if enabled else "off")
            model = COLDModel(
                num_communities=case.num_communities,
                num_topics=case.num_topics,
                seed=case.seed + 1,
                metrics_out=run_dir / "metrics.jsonl" if enabled else None,
                trace_out=run_dir / "trace.json" if enabled else None,
            )
            model.fit(corpus, num_iterations=num_sweeps, likelihood_interval=1)
            assert model.state_ is not None
            states.append(model.state_)
    return _states_identical(*states)


def _timed_fit_min_sweep_seconds(
    model: COLDModel, corpus: SocialCorpus, sweeps: int
) -> float:
    """Fit ``model`` and return its fastest inter-sweep wall time.

    Sweeps are timed individually via the fit callback (the delta between
    consecutive callbacks covers the sweep *and* all per-sweep telemetry
    bookkeeping), and the min is taken — on a noisy machine the floor of
    many short samples is far more stable than one whole-fit wall time,
    which is what lets the gate resolve a sub-millisecond overhead.
    """
    times: list[float] = []
    last: float | None = None

    def clock(_iteration: int, _model: COLDModel) -> None:
        nonlocal last
        now = time.perf_counter()
        if last is not None:
            times.append(now - last)
        last = now

    model.fit(
        corpus,
        num_iterations=sweeps,
        burn_in=sweeps - 1,
        sample_interval=1,
        likelihood_interval=0,
        callback=clock,
    )
    return min(times)


def run_telemetry_overhead_case(
    case: BenchCase,
    sweeps: int = 8,
    reps: int = 6,
    equivalence_sweeps: int = 3,
) -> dict:
    """Per-sweep cost of a fit with telemetry on vs off; JSON-ready record.

    Each rep runs a short serial fit dark and one with both
    ``metrics_out`` and ``trace_out`` enabled (likelihood monitoring off,
    so the sweeps dominate), alternating which mode goes first (ABBA) so
    slow machine drift hits both equally.  The statistic per mode is the
    min over all reps of the min per-sweep wall time (see
    :func:`_timed_fit_min_sweep_seconds`): on a contended host whole-fit
    wall times swing by 10%+, while the floor of many short interleaved
    samples converges on the quiet-machine sweep time for both modes.
    ``overhead_fraction`` is ``on/off - 1``; the perf gate asserts it
    stays under 3%.
    """
    corpus = case.build_corpus()
    best = {"off": math.inf, "on": math.inf}
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(reps):
            order = ("off", "on") if rep % 2 == 0 else ("on", "off")
            for mode in order:
                run_dir = Path(tmp) / f"{mode}_{rep}"
                enabled = mode == "on"
                model = COLDModel(
                    num_communities=case.num_communities,
                    num_topics=case.num_topics,
                    seed=case.seed,
                    metrics_out=run_dir / "metrics.jsonl" if enabled else None,
                    trace_out=run_dir / "trace.json" if enabled else None,
                )
                best[mode] = min(
                    best[mode],
                    _timed_fit_min_sweep_seconds(model, corpus, sweeps),
                )
    return {
        "name": case.name,
        "config": asdict(case),
        "sweeps": sweeps,
        "reps": reps,
        "off_seconds_per_sweep": round(best["off"], 5),
        "on_seconds_per_sweep": round(best["on"], 5),
        "overhead_fraction": round(best["on"] / best["off"] - 1.0, 4),
        "draws_match": telemetry_draws_match(
            corpus, case, num_sweeps=equivalence_sweeps
        ),
        "peak_rss_mb": peak_rss_mb(),
    }


def diagnostics_draws_match(
    corpus: SocialCorpus,
    case: BenchCase,
    num_sweeps: int = 3,
    stride: int = 1,
) -> bool:
    """True iff a fit with quality streaming draws the identical chain.

    The diagnostics layer's contract is the same as telemetry's: strictly
    read-only over the sampler state, zero RNG consumption.  Replays a
    short telemetry-enabled fit with a stride-1
    :class:`~repro.diagnostics.quality.QualityStream` attached (every
    sweep evaluated — the worst case) and one without, from the same
    seed, and compares every assignment array bitwise.
    """
    from .diagnostics.quality import QualityStream

    states = []
    with tempfile.TemporaryDirectory() as tmp:
        for enabled in (False, True):
            run_dir = Path(tmp) / ("on" if enabled else "off")
            model = COLDModel(
                num_communities=case.num_communities,
                num_topics=case.num_topics,
                seed=case.seed + 1,
                metrics_out=run_dir / "metrics.jsonl",
            )
            stream = QualityStream(corpus, stride=stride) if enabled else None
            model.fit(
                corpus,
                num_iterations=num_sweeps,
                likelihood_interval=1,
                diagnostics=stream,
            )
            assert model.state_ is not None
            states.append(model.state_)
    return _states_identical(*states)


def _timed_fit_mean_sweep_seconds(
    model: COLDModel,
    corpus: SocialCorpus,
    sweeps: int,
    diagnostics=None,
) -> float:
    """Fit ``model`` and return its mean inter-sweep wall time.

    The mean — not the min of :func:`_timed_fit_min_sweep_seconds` — is
    the right statistic for stride-gated work: quality streaming spends
    its budget on every ``stride``-th sweep, so the min would land on an
    unmetered sweep and report zero overhead regardless of the true
    amortised cost.
    """
    times: list[float] = []
    last: float | None = None

    def clock(_iteration: int, _model: COLDModel) -> None:
        nonlocal last
        now = time.perf_counter()
        if last is not None:
            times.append(now - last)
        last = now

    model.fit(
        corpus,
        num_iterations=sweeps,
        burn_in=sweeps - 1,
        sample_interval=1,
        likelihood_interval=0,
        callback=clock,
        diagnostics=diagnostics,
    )
    return sum(times) / len(times)


def run_diagnostics_overhead_case(
    case: BenchCase,
    sweeps: int = 20,
    reps: int = 4,
    stride: int = 10,
    equivalence_sweeps: int = 3,
) -> dict:
    """Amortised per-sweep cost of quality streaming; JSON-ready record.

    Both modes fit with telemetry enabled (so the measured delta is the
    quality stream itself, not the JSONL plumbing the telemetry gate
    already covers); the "on" mode attaches a
    :class:`~repro.diagnostics.quality.QualityStream` at ``stride``.
    Reps alternate mode order (ABBA) and the statistic per mode is the
    min over reps of the *mean* per-sweep wall time (see
    :func:`_timed_fit_mean_sweep_seconds`).  ``sweeps`` should cover at
    least two stride periods so the amortisation is real.
    ``overhead_fraction`` is ``on/off - 1`` — the *steady-state* cost:
    the one-time coherence co-occurrence index build is warmed outside
    the timed fits (it would dominate at bench-scale sweep counts while
    vanishing over a real run's hundreds of sweeps) and reported
    separately as ``index_build_seconds``.  The perf gate asserts the
    steady-state fraction stays under 5%.
    """
    from .diagnostics.quality import QualityStream
    from .eval.coherence import CooccurrenceIndex

    corpus = case.build_corpus()
    best = {"off": math.inf, "on": math.inf}
    # The coherence co-occurrence index is a one-time corpus scan that
    # would otherwise land inside the first metered sweep and swamp the
    # amortised statistic at bench-scale sweep counts; build it outside
    # the timed region, share it across reps, report its cost separately.
    index_start = time.perf_counter()
    warm_index = CooccurrenceIndex(corpus)
    index_build_seconds = time.perf_counter() - index_start
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(reps):
            order = ("off", "on") if rep % 2 == 0 else ("on", "off")
            for mode in order:
                run_dir = Path(tmp) / f"{mode}_{rep}"
                model = COLDModel(
                    num_communities=case.num_communities,
                    num_topics=case.num_topics,
                    seed=case.seed,
                    metrics_out=run_dir / "metrics.jsonl",
                )
                stream = None
                if mode == "on":
                    stream = QualityStream(
                        corpus, stride=stride, index=warm_index
                    )
                best[mode] = min(
                    best[mode],
                    _timed_fit_mean_sweep_seconds(
                        model, corpus, sweeps, diagnostics=stream
                    ),
                )
    return {
        "name": case.name,
        "config": asdict(case),
        "sweeps": sweeps,
        "reps": reps,
        "stride": stride,
        "off_seconds_per_sweep": round(best["off"], 5),
        "on_seconds_per_sweep": round(best["on"], 5),
        "overhead_fraction": round(best["on"] / best["off"] - 1.0, 4),
        "index_build_seconds": round(index_build_seconds, 3),
        "draws_match": diagnostics_draws_match(
            corpus, case, num_sweeps=equivalence_sweeps
        ),
        "peak_rss_mb": peak_rss_mb(),
    }


def write_diagnostics_benchmark(
    path: str | Path,
    cases: tuple[BenchCase, ...] = (MEDIUM,),
    sweeps: int = 20,
    reps: int = 4,
    stride: int = 10,
    equivalence_sweeps: int = 3,
) -> dict:
    """Run the diagnostics overhead suite and atomically write its JSON."""
    payload = {
        "benchmark": "quality-streaming diagnostics overhead per Gibbs sweep",
        "harness": "repro.perf",
        **environment_stamp(),
        "method": {
            "sweeps": sweeps,
            "reps": reps,
            "stride": stride,
            "statistic": (
                "min over ABBA reps of mean seconds per sweep "
                "(mean, not min: stride-gated cost is non-uniform); "
                "one-time co-occurrence index build excluded, "
                "reported as index_build_seconds"
            ),
            "baseline": "telemetry-enabled fit without a QualityStream",
        },
        "cases": [
            run_diagnostics_overhead_case(
                case,
                sweeps=sweeps,
                reps=reps,
                stride=stride,
                equivalence_sweeps=equivalence_sweeps,
            )
            for case in cases
        ],
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


def _serving_client_worker(
    host: str,
    port: int,
    requests: list[tuple[str, dict]],
    cursor: list[int],
    cursor_lock,
    samples: list[tuple[str, float, int]],
    samples_lock,
) -> None:
    """One load-generator thread: a persistent connection draining the mix.

    Client-side latency (request sent -> body read) over a keep-alive
    HTTP/1.1 connection, which is how a real serving client measures it:
    connection setup is amortised away and every sample includes JSON
    encode/decode plus the full server pipeline.  Every request carries a
    client-supplied ``X-Request-Id`` and the sample records whether the
    server echoed it back — exercising the correlation-id contract under
    the same load the latency numbers come from.
    """
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=30)
    local: list[tuple[str, float, int, bool]] = []
    try:
        while True:
            with cursor_lock:
                if cursor[0] >= len(requests):
                    break
                index = cursor[0]
                cursor[0] += 1
            path, body = requests[index]
            payload = json.dumps(body)
            request_id = f"perf-{index:06d}"
            start = time.perf_counter()
            try:
                conn.request(
                    "POST", path, body=payload,
                    headers={
                        "Content-Type": "application/json",
                        "X-Request-Id": request_id,
                    },
                )
                response = conn.getresponse()
                response.read()
                status = response.status
                rid_ok = response.getheader("X-Request-Id") == request_id
            except OSError:
                # Reconnect once (keep-alive churn), count as an error.
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=30)
                status = 0
                rid_ok = False
            local.append((path, time.perf_counter() - start, status, rid_ok))
    finally:
        conn.close()
        with samples_lock:
            samples.extend(local)


def _scrape_prometheus(host: str, port: int) -> dict:
    """Scrape ``/metrics`` as Prometheus text and validate the exposition.

    Parses the body with the in-repo strict parser, so a malformed
    exposition (bad escaping, torn series, duplicate samples) fails the
    benchmark run instead of shipping silently.
    """
    import http.client

    from .telemetry import parse_prometheus_text

    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/metrics", headers={"Accept": "text/plain"})
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        content_type = response.getheader("Content-Type") or ""
    finally:
        conn.close()
    parsed = parse_prometheus_text(body)
    requests_total = sum(
        sample.value for sample in parsed.series("serving_requests_total")
    )
    return {
        "valid": True,
        "content_type": content_type,
        "samples": len(parsed.samples),
        "families": len(parsed.types),
        "requests_total": requests_total,
    }


def _serving_request_mix(
    num_requests: int, num_users: int, vocab_size: int
) -> list[tuple[str, dict]]:
    """A deterministic retweet/link/timestamp/influential request mix."""
    mix: list[tuple[str, dict]] = []
    for index in range(num_requests):
        source = index % num_users
        other = (index + 1) % num_users
        words = [(index * 3 + offset) % vocab_size for offset in range(3)]
        kind = index % 4
        if kind == 0:
            mix.append((
                "/predict/retweet",
                {"source": source, "candidates": [other, (index + 2) % num_users],
                 "words": words},
            ))
        elif kind == 1:
            mix.append((
                "/predict/link", {"sources": [source], "targets": [other]}
            ))
        elif kind == 2:
            mix.append((
                "/predict/timestamp", {"author": source, "words": words}
            ))
        else:
            mix.append(("/query/influential", {"topic": index % 4}))
    return mix


def run_serving_case(
    case: BenchCase,
    fit_iterations: int = 30,
    num_requests: int = 600,
    concurrency: int = 4,
    warmup_requests: int = 60,
    deadline_ms: int = 5000,
) -> dict:
    """Throughput/latency of the serving layer on one case; JSON record.

    Fits a small model on the case's synthetic corpus (fit quality is
    irrelevant to serving cost — tensor shapes are what matter), boots a
    real :class:`~repro.serving.server.ColdHTTPServer` on a loopback
    port, and drives a deterministic retweet/link/timestamp/influential
    mix from ``concurrency`` persistent-connection client threads.
    Reports client-side p50/p99 per endpoint and aggregate QPS; the
    warmup phase populates the fold and influence caches first, exactly
    like a production server that has been up for a minute.
    """
    import threading

    from .serving import ColdHTTPServer, ModelServer, ServerConfig

    corpus = case.build_corpus()
    model = COLDModel(
        num_communities=case.num_communities,
        num_topics=case.num_topics,
        seed=case.seed,
    ).fit(corpus, num_iterations=fit_iterations)
    assert model.estimates_ is not None
    engine = ModelServer(model.estimates_, ic_simulations=50)
    config = ServerConfig(
        port=0,
        deadline_ms=deadline_ms,
        max_inflight=max(concurrency * 2, 8),
        max_waiting=max(concurrency * 4, 16),
    )
    server = ColdHTTPServer(config, engine=engine)
    thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    num_users = model.estimates_.num_users
    vocab = model.estimates_.vocab_size

    def drive(mix: list[tuple[str, dict]]) -> tuple[list, float]:
        samples: list[tuple[str, float, int]] = []
        cursor = [0]
        cursor_lock = threading.Lock()
        samples_lock = threading.Lock()
        workers = [
            threading.Thread(
                target=_serving_client_worker,
                args=(host, port, mix, cursor, cursor_lock,
                      samples, samples_lock),
                daemon=True,
            )
            for _ in range(concurrency)
        ]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=300)
        return samples, time.perf_counter() - start

    try:
        drive(_serving_request_mix(warmup_requests, num_users, vocab))
        samples, wall = drive(
            _serving_request_mix(num_requests, num_users, vocab)
        )
        exposition = _scrape_prometheus(host, port)
    finally:
        server.begin_drain()
        thread.join(timeout=30)

    by_endpoint: dict[str, list[float]] = {}
    errors = 0
    rid_mismatches = 0
    for path, seconds, status, rid_ok in samples:
        if status == 200:
            by_endpoint.setdefault(path, []).append(seconds)
        else:
            errors += 1
        if status and not rid_ok:
            rid_mismatches += 1
    endpoints = {}
    for path, latencies in sorted(by_endpoint.items()):
        arr = np.asarray(latencies)
        endpoints[path] = {
            "count": int(arr.size),
            "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
            "mean_ms": round(float(arr.mean()) * 1e3, 3),
        }
    all_ok = np.asarray(
        [seconds for _, seconds, status, _ in samples if status == 200]
    )
    return {
        "name": case.name,
        "config": asdict(case),
        "model": {
            "num_users": num_users,
            "num_communities": model.estimates_.num_communities,
            "num_topics": model.estimates_.num_topics,
            "vocab_size": vocab,
        },
        "concurrency": concurrency,
        "num_requests": num_requests,
        "completed": int(all_ok.size),
        "errors": errors,
        "qps": round(len(samples) / wall, 1),
        "p50_ms": round(float(np.percentile(all_ok, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(all_ok, 99)) * 1e3, 3),
        "endpoints": endpoints,
        "request_id_mismatches": rid_mismatches,
        "metrics_exposition": exposition,
        "cache": engine.describe()["fold_cache"],
        "peak_rss_mb": peak_rss_mb(),
    }


def write_serving_benchmark(
    path: str | Path,
    cases: tuple[BenchCase, ...] = (SMOKE, MEDIUM),
    fit_iterations: int = 30,
    num_requests: int = 600,
    concurrency: int = 4,
) -> dict:
    """Run the serving suite and atomically write its JSON to ``path``."""
    payload = {
        "benchmark": "prediction serving layer, QPS and client-side latency",
        "harness": "repro.perf",
        **environment_stamp(),
        "cpu_count": os.cpu_count(),
        "method": {
            "num_requests": num_requests,
            "concurrency": concurrency,
            "clients": "persistent HTTP/1.1 connections, client-side timing",
            "mix": "retweet/link/timestamp/influential round-robin",
            "warmup": "caches populated by a warmup phase before timing",
        },
        "cases": [
            run_serving_case(
                case,
                fit_iterations=fit_iterations,
                num_requests=num_requests,
                concurrency=concurrency,
            )
            for case in cases
        ],
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


def parallel_draws_match(
    corpus: SocialCorpus,
    case: BenchCase,
    num_nodes: int,
    executor: str,
    num_workers: int | None = None,
    num_sweeps: int = 2,
) -> bool:
    """True iff ``executor`` draws the identical chain as ``simulated``.

    Runs two parallel fits from the same seed at equal ``num_nodes`` — one
    with the sequential ``simulated`` executor (the oracle) and one with
    the executor under test — and compares every assignment array bitwise
    plus the degenerate-draw tally.  A parallel "speedup" over an executor
    that draws a *different* chain would be meaningless, so the scaling
    harness records this with every run.
    """
    states = []
    for run_executor, run_workers in (("simulated", None), (executor, num_workers)):
        sampler = ParallelCOLDSampler(
            num_communities=case.num_communities,
            num_topics=case.num_topics,
            num_nodes=num_nodes,
            executor=run_executor,
            num_workers=run_workers,
            seed=case.seed + 1,
            fast=True,
        ).fit(corpus, num_iterations=num_sweeps)
        states.append(sampler.state_)
    reference, candidate = states
    assert reference is not None and candidate is not None
    return (
        np.array_equal(reference.post_comm, candidate.post_comm)
        and np.array_equal(reference.post_topic, candidate.post_topic)
        and np.array_equal(reference.link_src_comm, candidate.link_src_comm)
        and np.array_equal(reference.link_dst_comm, candidate.link_dst_comm)
        and reference.degenerate_draws == candidate.degenerate_draws
    )


def run_parallel_case(
    case: BenchCase,
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    executor: str = "processes",
    num_workers: int | None = None,
    sweeps: int = 5,
    equivalence_sweeps: int = 2,
) -> dict:
    """Scaling curve of one case across ``node_counts``; JSON-ready record.

    Per node count this fits the parallel sampler for ``sweeps`` sweeps and
    reports the best per-sweep *cluster* time (slowest node + merge, the
    Fig. 13/14 metric) plus its speedup over the 1-node baseline.  For the
    ``processes`` executor each node's seconds are the worker's
    self-reported CPU time for its shard, so the curve measures per-shard
    work even when the host has fewer cores than workers (wall time per
    sweep is recorded alongside for honesty on such hosts).
    """
    if not node_counts:
        raise ValueError("node_counts must not be empty")
    corpus = case.build_corpus()
    scaling = []
    base: float | None = None
    for nodes in node_counts:
        start = time.perf_counter()
        sampler = ParallelCOLDSampler(
            num_communities=case.num_communities,
            num_topics=case.num_topics,
            num_nodes=nodes,
            executor=executor,
            num_workers=num_workers,
            seed=case.seed,
            fast=True,
        ).fit(corpus, num_iterations=sweeps)
        wall = time.perf_counter() - start
        report = sampler.report_
        assert report is not None
        per_sweep = min(step.cluster_seconds for step in report.supersteps)
        if base is None:
            base = per_sweep
        scaling.append(
            {
                "nodes": nodes,
                "cluster_seconds_per_sweep": round(per_sweep, 5),
                "wall_seconds_per_sweep": round(wall / sweeps, 5),
                "speedup_vs_1_node": round(base / per_sweep, 2),
                "work_over_cluster_time": round(report.speedup, 2),
            }
        )
    match_nodes = max(node_counts)
    return {
        "name": case.name,
        "config": asdict(case),
        "corpus": {
            "num_posts": corpus.num_posts,
            "num_links": len(corpus.links),
        },
        "executor": executor,
        "num_workers": num_workers,
        "sweeps": sweeps,
        "scaling": scaling,
        "draws_match": parallel_draws_match(
            corpus,
            case,
            match_nodes,
            executor,
            num_workers=num_workers,
            num_sweeps=equivalence_sweeps,
        ),
        "draws_match_nodes": match_nodes,
        "peak_rss_mb": peak_rss_mb(include_children=True),
    }


def run_parallel_benchmark(
    cases: tuple[BenchCase, ...] = (MEDIUM,),
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    executor: str = "processes",
    num_workers: int | None = None,
    sweeps: int = 5,
    equivalence_sweeps: int = 2,
) -> dict:
    """Run the parallel scaling suite; returns the full JSON-ready payload."""
    return {
        "benchmark": "parallel COLD sampling, scaling over cluster nodes",
        "harness": "repro.perf",
        **environment_stamp(),
        "cpu_count": os.cpu_count(),
        "method": {
            "sweeps": sweeps,
            "equivalence_sweeps": equivalence_sweeps,
            "statistic": "min over supersteps of cluster seconds per sweep",
            "node_seconds": (
                "worker-reported CPU seconds per shard for the 'processes' "
                "executor; engine wall clock otherwise"
            ),
        },
        "cases": [
            run_parallel_case(
                case,
                node_counts=node_counts,
                executor=executor,
                num_workers=num_workers,
                sweeps=sweeps,
                equivalence_sweeps=equivalence_sweeps,
            )
            for case in cases
        ],
    }


def write_parallel_benchmark(
    path: str | Path,
    cases: tuple[BenchCase, ...] = (MEDIUM,),
    node_counts: tuple[int, ...] = (1, 2, 4, 8),
    executor: str = "processes",
    num_workers: int | None = None,
    sweeps: int = 5,
    equivalence_sweeps: int = 2,
    packed_scales: tuple[int, ...] = (),
) -> dict:
    """Run the scaling suite and atomically write its JSON to ``path``.

    ``packed_scales`` (e.g. :data:`PACKED_SCALES`) additionally runs the
    out-of-core sweep — :func:`run_packed_scaling_case` — and records it
    under ``packed_scaling``; this is the ``cold bench --parallel
    --packed-large`` path and takes minutes at the 10^5-user point.
    """
    payload = run_parallel_benchmark(
        cases,
        node_counts=node_counts,
        executor=executor,
        num_workers=num_workers,
        sweeps=sweeps,
        equivalence_sweeps=equivalence_sweeps,
    )
    if packed_scales:
        payload["method"]["packed_scaling"] = (
            "per scale point, chunked .coldpack generation and an "
            "mmap-backed 'processes' fit each run in a fresh spawned "
            "subprocess that self-reports wall time and getrusage peak "
            "RSS (children folded in), so every peak is a per-point fact"
        )
        payload["packed_scaling"] = run_packed_scaling_case(
            scales=packed_scales,
            num_workers=num_workers if num_workers is not None else 2,
            equivalence_sweeps=equivalence_sweeps,
        )
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


def run_streaming_case(
    case: BenchCase,
    *,
    num_updates: int = 5,
    bootstrap_fraction: float = 0.6,
    fit_iterations: int = 60,
    update_sweeps: int = 8,
    equivalence_sweeps: int = 24,
) -> dict:
    """Measure incremental updates against a full batch refit for one case.

    The case's corpus is round-tripped to a wall-clock event stream; the
    head ``bootstrap_fraction`` is batch-fitted, the tail is folded in
    ``num_updates`` incremental :meth:`~repro.core.model.COLDModel.update`
    calls (windowed Gibbs).  The comparison baseline is a from-scratch
    refit of the *final accumulated corpus* at the same iteration budget
    — exactly what continuous operation would otherwise have to run per
    batch — and ``speedup`` is refit wall time over mean update wall
    time.  The statistical-equivalence gate
    (:func:`repro.streaming.equivalence.equivalence_report`) rides along
    so a speedup over a *diverged* incremental chain can't pass silently.

    At this scale the posterior is multimodal and independently seeded
    batch refits land in different modes (their pairwise split R-hat is
    huge even though each chain is individually stationary) — so the
    gate cannot demand the strict two-chain criterion against a single
    arbitrary refit.  Instead *two* refits establish a seed-to-seed
    noise floor, and the incremental model passes if it is strictly
    equivalent to its closest refit or no further from the refit
    ensemble than the refits are from each other.  The top-level
    ``equivalent`` field is that verdict; ``equivalence`` holds the
    closest-refit report and ``baseline`` the refit-vs-refit one.
    """
    from .core.config import StreamConfig
    from .datasets.stream import CorpusStreamBuilder, PostEvent
    from .streaming.equivalence import equivalence_report
    from .streaming.events import corpus_to_events, split_events

    corpus = case.build_corpus()
    events = corpus_to_events(corpus)
    bootstrap, remainder = split_events(events, bootstrap_fraction)
    builder = CorpusStreamBuilder(num_time_slices=case.num_time_slices)
    for event in bootstrap:
        if isinstance(event, PostEvent):
            builder.add_post(event.author_key, event.tokens, event.time)
        else:
            builder.add_link(event.source_key, event.target_key, event.time)
    boot_corpus = builder.build(incremental=True)

    stream_config = StreamConfig(update_sweeps=update_sweeps)
    model = COLDModel(
        num_communities=case.num_communities,
        num_topics=case.num_topics,
        seed=case.seed,
        stream=stream_config,
    )
    model.stream_builder_ = builder
    start = time.perf_counter()
    model.fit(boot_corpus, num_iterations=fit_iterations)
    bootstrap_seconds = time.perf_counter() - start

    chunk = max(1, math.ceil(len(remainder) / num_updates))
    updates = []
    for index in range(0, len(remainder), chunk):
        report = model.update(remainder[index:index + chunk])
        updates.append(
            {
                "update_index": report.update_index,
                "new_posts": report.new_posts,
                "new_links": report.new_links,
                "new_users": report.new_users,
                "new_terms": report.new_terms,
                "new_slices": report.new_slices,
                "window_posts": report.window_posts,
                "window_links": report.window_links,
                "seconds": report.seconds,
            }
        )
    update_seconds = [record["seconds"] for record in updates]
    mean_update_seconds = float(np.mean(update_seconds))

    final_corpus = model.corpus_
    assert final_corpus is not None
    refits = []
    refit_seconds = None
    for offset in (1, 2):
        refit = COLDModel(
            num_communities=case.num_communities,
            num_topics=case.num_topics,
            seed=case.seed + offset,
            stream=stream_config,
        )
        start = time.perf_counter()
        refit.fit(final_corpus, num_iterations=fit_iterations)
        if refit_seconds is None:
            refit_seconds = time.perf_counter() - start
        refits.append(refit)

    reports = [
        equivalence_report(
            model, refit, sweeps=equivalence_sweeps, seed=17 * (index + 1)
        )
        for index, refit in enumerate(refits)
    ]
    equivalence = min(reports, key=lambda report: report["split_rhat"])
    baseline = equivalence_report(
        refits[1], refits[0], sweeps=equivalence_sweeps, seed=51
    )
    within_noise = (
        equivalence["split_rhat"]
        <= max(equivalence["rhat_threshold"], baseline["split_rhat"])
        and equivalence["relative_loglik_gap"]
        <= max(equivalence["loglik_tolerance"], baseline["relative_loglik_gap"])
    )
    equivalent = bool(equivalence["equivalent"] or within_noise)

    assert model.state_ is not None
    return {
        "name": case.name,
        "num_events": len(events),
        "bootstrap_events": len(bootstrap),
        "streamed_events": len(remainder),
        "bootstrap_fraction": bootstrap_fraction,
        "fit_iterations": fit_iterations,
        "update_sweeps": update_sweeps,
        "bootstrap_seconds": bootstrap_seconds,
        "updates": updates,
        "mean_update_seconds": mean_update_seconds,
        "refit_seconds": refit_seconds,
        "speedup": refit_seconds / mean_update_seconds,
        "final_posts": model.state_.num_posts,
        "final_links": model.state_.num_links,
        "final_vocab": int(model.state_.n_topic_word.shape[1]),
        "final_slices": int(model.state_.n_comm_topic_time.shape[2]),
        "equivalence": equivalence,
        "baseline": baseline,
        "equivalent": equivalent,
        "peak_rss_mb": peak_rss_mb(),
    }


def run_streaming_benchmark(
    cases: tuple[BenchCase, ...] = (MEDIUM,),
    num_updates: int = 5,
    bootstrap_fraction: float = 0.6,
    fit_iterations: int = 60,
    update_sweeps: int = 8,
    equivalence_sweeps: int = 24,
) -> dict:
    """Run the streaming suite; returns the full JSON-ready payload."""
    return {
        "benchmark": "incremental stream updates vs full batch refit",
        "harness": "repro.perf",
        **environment_stamp(),
        "method": {
            "num_updates": num_updates,
            "bootstrap_fraction": bootstrap_fraction,
            "fit_iterations": fit_iterations,
            "update_sweeps": update_sweeps,
            "equivalence_sweeps": equivalence_sweeps,
            "statistic": "refit wall seconds over mean update wall seconds",
            "equivalence": (
                "strict split R-hat + loglik gap vs the closest of two "
                "independent refits, or within the refit-vs-refit seed "
                "noise floor (the posterior is multimodal at this scale)"
            ),
        },
        "cases": [
            run_streaming_case(
                case,
                num_updates=num_updates,
                bootstrap_fraction=bootstrap_fraction,
                fit_iterations=fit_iterations,
                update_sweeps=update_sweeps,
                equivalence_sweeps=equivalence_sweeps,
            )
            for case in cases
        ],
    }


#: Scale points (users) for the out-of-core packed sweep: 1.7x to 167x the
#: MEDIUM corpus by user count (and ~0.1x to ~10x by token count — the
#: packed config plants lighter per-user rates so the top point stays
#: minutes, not hours, on a laptop).
PACKED_SCALES = (1_000, 10_000, 100_000)


def packed_scale_config(num_users: int, seed: int = 7) -> SyntheticConfig:
    """Planted-parameter config for one out-of-core scale point.

    Everything except ``num_users`` is fixed so posts, tokens, and links
    all grow linearly in users — the property the packed sweep is there
    to demonstrate.  Latent dimensions are small (C=8, K=12) because the
    sweep measures data scaling, not model-size scaling.
    """
    return SyntheticConfig(
        num_users=num_users,
        num_communities=8,
        num_topics=12,
        num_time_slices=12,
        vocab_size=2000,
        mean_posts_per_user=4.0,
        mean_words_per_post=8.0,
        mean_links_per_user=2.0,
        seed=seed,
    )


def _packed_generate_probe(conn, config_kwargs: dict, path: str) -> None:
    """Subprocess body: chunk-generate a ``.coldpack`` and self-report.

    Runs in a fresh *spawned* process so the reported ``peak_rss_mb`` is
    the generation's own high-water mark, untainted by whatever the
    parent benchmarked earlier (``ru_maxrss`` is monotonic per process).
    """
    from .datasets.synthetic import generate_packed_corpus

    config = SyntheticConfig(**config_kwargs)
    start = time.perf_counter()
    corpus, _truth = generate_packed_corpus(config, path=path)
    seconds = time.perf_counter() - start
    try:
        conn.send(
            {
                "seconds": seconds,
                "num_posts": corpus.num_posts,
                "num_tokens": corpus.num_words,
                "num_links": corpus.num_links,
                "file_mb": round(os.path.getsize(path) / 2**20, 2),
                "peak_rss_mb": peak_rss_mb(include_children=True),
            }
        )
    finally:
        corpus.close()
        conn.close()


def _packed_train_probe(
    conn,
    path: str,
    num_communities: int,
    num_topics: int,
    num_nodes: int,
    num_workers: int | None,
    sweeps: int,
    seed: int,
) -> None:
    """Subprocess body: mmap-backed ``processes`` fit, self-reported.

    Opens the ``.coldpack`` read-only and fits with the ``processes``
    executor, so workers map the file instead of receiving pickled
    posts; ``peak_rss_mb`` folds the worker children in.
    """
    from .datasets.packed import PackedCorpus

    corpus = PackedCorpus.open(path)
    try:
        start = time.perf_counter()
        sampler = ParallelCOLDSampler(
            num_communities=num_communities,
            num_topics=num_topics,
            num_nodes=num_nodes,
            executor="processes",
            num_workers=num_workers,
            seed=seed,
            fast=True,
        ).fit(corpus, num_iterations=sweeps)
        wall = time.perf_counter() - start
        report = sampler.report_
        assert report is not None
        per_sweep = min(step.cluster_seconds for step in report.supersteps)
        conn.send(
            {
                "cluster_seconds_per_sweep": per_sweep,
                "wall_seconds_per_sweep": wall / sweeps,
                "peak_rss_mb": peak_rss_mb(include_children=True),
            }
        )
    finally:
        corpus.close()
        conn.close()


def _run_probe(ctx, target, args: tuple) -> dict:
    """Run a probe function in a fresh process; return what it piped back."""
    receiver, sender = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=target, args=(sender, *args))
    proc.start()
    sender.close()
    try:
        result = receiver.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"{target.__name__} subprocess died (exit code {proc.exitcode}) "
            "before reporting a result"
        ) from None
    proc.join()
    receiver.close()
    return result


def packed_draws_match(
    path: str | Path,
    num_communities: int,
    num_topics: int,
    num_nodes: int,
    num_workers: int | None = None,
    num_sweeps: int = 2,
    seed: int = 7,
) -> bool:
    """True iff mmap-backed and in-RAM fits draw the identical chain.

    Fits the same corpus twice from one seed: once as a materialised
    :class:`SocialCorpus` on the sequential ``simulated`` oracle, once as
    the memory-mapped :class:`PackedCorpus` on the ``processes`` executor.
    This is the packed format's whole correctness claim — out-of-core is
    a storage decision, not a statistical one — so the scaling harness
    records it with every run.
    """
    from .datasets.packed import PackedCorpus

    packed = PackedCorpus.open(path)
    try:
        social = packed.to_social_corpus()
        states = []
        for corpus, run_executor, run_workers in (
            (social, "simulated", None),
            (packed, "processes", num_workers),
        ):
            sampler = ParallelCOLDSampler(
                num_communities=num_communities,
                num_topics=num_topics,
                num_nodes=num_nodes,
                executor=run_executor,
                num_workers=run_workers,
                seed=seed,
                fast=True,
            ).fit(corpus, num_iterations=num_sweeps)
            states.append(sampler.state_)
    finally:
        packed.close()
    reference, candidate = states
    assert reference is not None and candidate is not None
    return (
        np.array_equal(reference.post_comm, candidate.post_comm)
        and np.array_equal(reference.post_topic, candidate.post_topic)
        and np.array_equal(reference.link_src_comm, candidate.link_src_comm)
        and np.array_equal(reference.link_dst_comm, candidate.link_dst_comm)
        and reference.degenerate_draws == candidate.degenerate_draws
    )


def run_packed_scaling_case(
    scales: tuple[int, ...] = PACKED_SCALES,
    num_communities: int = 8,
    num_topics: int = 12,
    num_nodes: int = 4,
    num_workers: int | None = 2,
    sweeps: int = 2,
    equivalence_sweeps: int = 2,
    seed: int = 7,
) -> dict:
    """Out-of-core scaling sweep: generate + train per scale, JSON-ready.

    Per scale point, chunked ``.coldpack`` generation and an mmap-backed
    ``processes`` fit each run in their own freshly *spawned* subprocess,
    which self-reports wall time and its ``getrusage`` peak RSS (children
    folded in).  Isolation is what makes the RSS column trustworthy: the
    counter is a monotonic per-process maximum, so measuring three scales
    in one process would report the largest one three times.  Draw
    equivalence (mmap ``processes`` vs in-RAM ``simulated``) is checked
    at the smallest scale, where a double fit is cheap.
    """
    if not scales:
        raise ValueError("scales must not be empty")
    ctx = multiprocessing.get_context("spawn")
    points = []
    draws_ok: bool | None = None
    with tempfile.TemporaryDirectory(prefix="coldpack-bench-") as tmp:
        for num_users in scales:
            config = packed_scale_config(num_users, seed=seed)
            path = os.path.join(tmp, f"scale_{num_users}.coldpack")
            gen = _run_probe(ctx, _packed_generate_probe, (asdict(config), path))
            train = _run_probe(
                ctx,
                _packed_train_probe,
                (
                    path,
                    num_communities,
                    num_topics,
                    num_nodes,
                    num_workers,
                    sweeps,
                    seed,
                ),
            )
            if num_users == min(scales):
                draws_ok = packed_draws_match(
                    path,
                    num_communities,
                    num_topics,
                    num_nodes,
                    num_workers=num_workers,
                    num_sweeps=equivalence_sweeps,
                    seed=seed,
                )
            points.append(
                {
                    "users": num_users,
                    "posts": gen["num_posts"],
                    "tokens": gen["num_tokens"],
                    "links": gen["num_links"],
                    "file_mb": gen["file_mb"],
                    "generate_seconds": round(gen["seconds"], 2),
                    "generate_peak_rss_mb": gen["peak_rss_mb"],
                    "cluster_seconds_per_sweep": round(
                        train["cluster_seconds_per_sweep"], 5
                    ),
                    "wall_seconds_per_sweep": round(
                        train["wall_seconds_per_sweep"], 5
                    ),
                    "train_peak_rss_mb": train["peak_rss_mb"],
                }
            )
            os.remove(path)
    return {
        "name": "packed_out_of_core",
        "config": {
            "num_communities": num_communities,
            "num_topics": num_topics,
            "generator": asdict(packed_scale_config(0, seed=seed)) | {
                "num_users": "per scale point"
            },
        },
        "executor": "processes",
        "num_nodes": num_nodes,
        "num_workers": num_workers,
        "sweeps": sweeps,
        "draws_match": draws_ok,
        "draws_match_users": min(scales),
        "scaling": points,
    }


def write_streaming_benchmark(
    path: str | Path,
    cases: tuple[BenchCase, ...] = (MEDIUM,),
    num_updates: int = 5,
    bootstrap_fraction: float = 0.6,
    fit_iterations: int = 60,
    update_sweeps: int = 8,
    equivalence_sweeps: int = 24,
) -> dict:
    """Run the streaming suite and atomically write its JSON to ``path``."""
    payload = run_streaming_benchmark(
        cases,
        num_updates=num_updates,
        bootstrap_fraction=bootstrap_fraction,
        fit_iterations=fit_iterations,
        update_sweeps=update_sweeps,
        equivalence_sweeps=equivalence_sweeps,
    )
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
    return payload


# ---------------------------------------------------------------------------
# environment stamping — who produced a benchmark number
# ---------------------------------------------------------------------------


def _cpu_model() -> str | None:
    """Human-readable CPU model, best-effort (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    model = platform.processor() or platform.machine()
    return model or None


def machine_fingerprint() -> dict:
    """The hardware/runtime identity a benchmark number depends on.

    Two ledger entries are comparable only when their fingerprints match;
    ``cold bench --compare`` prints a warning, not a verdict, across
    differing machines.
    """
    return {
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def environment_stamp() -> dict:
    """The block every ``BENCH_*.json`` payload and ledger entry carries.

    Keeps the historical top-level ``python``/``numpy`` keys (older
    committed snapshots have only those) and adds ``git_describe`` plus
    the full :func:`machine_fingerprint`.
    """
    from .telemetry.manifest import git_describe

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "git_describe": git_describe(),
        "machine": machine_fingerprint(),
    }


# ---------------------------------------------------------------------------
# benchmark regression ledger + snapshot comparison
# ---------------------------------------------------------------------------

#: Where ``cold bench`` appends one record per run (repo-relative).
DEFAULT_HISTORY_PATH = Path("benchmarks") / "history.jsonl"

#: Relative change beyond which a metric is a regression/improvement.
DEFAULT_COMPARE_THRESHOLD = 0.10

_HIGHER_BETTER_PATTERNS = ("speedup", "qps", "per_second", "throughput")
_LOWER_BETTER_PATTERNS = ("seconds", "latency", "_ms", "rss", "overhead")


def metric_direction(name: str) -> str | None:
    """``"higher"``/``"lower"``-is-better classification of a metric key.

    Returns ``None`` for keys that are not performance metrics (config
    sizes, counts, booleans), which :func:`comparable_metrics` skips.
    Higher-better patterns win ties (``events_per_second`` contains both
    ``per_second`` and ``seconds``).
    """
    key = name.rsplit(".", 1)[-1].lower()
    if any(pattern in key for pattern in _HIGHER_BETTER_PATTERNS):
        return "higher"
    if any(pattern in key for pattern in _LOWER_BETTER_PATTERNS):
        return "lower"
    return None


def _walk_metrics(node: object, prefix: str, out: dict[str, float]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, (dict, list)):
                _walk_metrics(value, f"{prefix}{key}.", out)
            elif (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and metric_direction(key)
            ):
                out[f"{prefix}{key}"] = float(value)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            label: object = index
            if isinstance(item, dict):
                for id_key in ("name", "nodes", "users", "scale"):
                    value = item.get(id_key)
                    if isinstance(value, (str, int)):
                        label = value
                        break
            _walk_metrics(item, f"{prefix}{label}.", out)


def comparable_metrics(payload: dict) -> dict[str, float]:
    """Flatten a benchmark payload into ``{dotted.metric: value}``.

    Walks the ``cases``/``scaling`` structures, labelling list entries by
    their ``name``/``nodes``/``users`` field, and keeps only keys
    :func:`metric_direction` can classify — so config dimensions and
    equivalence booleans never produce spurious verdicts.
    """
    out: dict[str, float] = {}
    cases = payload.get("cases", payload.get("scaling"))
    _walk_metrics(cases if cases is not None else payload, "", out)
    return out


def _metrics_of(obj: dict) -> dict[str, float]:
    """Metrics of either a full payload or a ledger record."""
    metrics = obj.get("metrics")
    if isinstance(metrics, dict) and all(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        for value in metrics.values()
    ):
        return {key: float(value) for key, value in metrics.items()}
    return comparable_metrics(obj)


def append_history(
    payload: dict, path: str | Path = DEFAULT_HISTORY_PATH
) -> dict:
    """Append one run's record to the benchmark regression ledger.

    The ledger is append-only JSONL via the telemetry plane's
    :class:`~repro.telemetry.metrics.JsonlWriter` — per-record flush,
    fresh-line salvage after a torn write — so killed runs never corrupt
    the history and readers tolerate a truncated tail.
    """
    from .telemetry.metrics import JsonlWriter

    record = {
        "benchmark": payload.get("benchmark"),
        "git_describe": payload.get("git_describe"),
        "machine": payload.get("machine"),
        "metrics": _metrics_of(payload),
    }
    with JsonlWriter(path) as writer:
        return writer.write("bench", **record)


def read_history(
    path: str | Path = DEFAULT_HISTORY_PATH, benchmark: str | None = None
) -> list[dict]:
    """Complete ledger records (torn tail skipped), optionally filtered."""
    from .telemetry.metrics import read_jsonl

    records = [
        record
        for record in read_jsonl(path)
        if record.get("kind") == "bench"
    ]
    if benchmark is not None:
        records = [r for r in records if r.get("benchmark") == benchmark]
    return records


def compare_benchmarks(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_COMPARE_THRESHOLD,
) -> list[dict]:
    """Per-metric verdicts of ``current`` against ``baseline``.

    Both sides may be full benchmark payloads or ledger records.  Only
    metrics present on both sides are judged; a verdict is ``regressed``
    when the metric moved more than ``threshold`` in its bad direction,
    ``improved`` beyond the threshold the other way, else ``ok``.
    """
    cur = _metrics_of(current)
    base = _metrics_of(baseline)
    verdicts = []
    for name in sorted(set(cur) & set(base)):
        direction = metric_direction(name)
        if direction is None or base[name] <= 0:
            continue
        ratio = cur[name] / base[name]
        if direction == "lower":
            worse, better = ratio > 1.0 + threshold, ratio < 1.0 - threshold
        else:
            worse, better = ratio < 1.0 - threshold, ratio > 1.0 + threshold
        verdicts.append(
            {
                "metric": name,
                "current": cur[name],
                "baseline": base[name],
                "ratio": round(ratio, 4),
                "direction": direction,
                "verdict": (
                    "regressed" if worse else "improved" if better else "ok"
                ),
            }
        )
    return verdicts


def comparison_regressed(verdicts: list[dict]) -> bool:
    """True when any metric regressed — the ``--strict`` exit condition."""
    return any(row["verdict"] == "regressed" for row in verdicts)


def render_comparison(verdicts: list[dict]) -> str:
    """The per-metric verdict table ``cold bench --compare`` prints."""
    if not verdicts:
        return "no overlapping metrics to compare"
    width = max(len(row["metric"]) for row in verdicts)
    lines = [
        f"{'metric':<{width}}  {'current':>12}  {'baseline':>12}  "
        f"{'ratio':>7}  verdict"
    ]
    for row in verdicts:
        lines.append(
            f"{row['metric']:<{width}}  {row['current']:>12.5g}  "
            f"{row['baseline']:>12.5g}  {row['ratio']:>7.3f}  {row['verdict']}"
        )
    counts = {"ok": 0, "improved": 0, "regressed": 0}
    for row in verdicts:
        counts[row["verdict"]] += 1
    lines.append(
        f"{counts['ok']} ok, {counts['improved']} improved, "
        f"{counts['regressed']} regressed"
    )
    return "\n".join(lines)


def resolve_baseline(
    spec: str | None,
    snapshot_path: str | Path,
    benchmark: str | None = None,
) -> dict | None:
    """Find the baseline a run should be compared against.

    ``spec`` may be a file path (a BENCH snapshot, or a ``.jsonl`` ledger
    whose last matching record wins), a git ref (the committed snapshot
    at that ref is read via ``git show``), or ``None`` to use whatever is
    at ``snapshot_path`` right now — which is why the CLI loads the
    baseline *before* overwriting the snapshot.  Returns ``None`` when no
    baseline can be found.
    """
    snapshot_path = Path(snapshot_path)
    if spec is not None:
        candidate = Path(spec)
        if candidate.exists():
            if candidate.suffix == ".jsonl":
                records = read_history(candidate, benchmark=benchmark)
                return records[-1] if records else None
            try:
                return json.loads(candidate.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                return None
        return _git_show_json(spec, snapshot_path)
    if snapshot_path.exists():
        try:
            return json.loads(snapshot_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
    return None


def _git_show_json(ref: str, path: Path) -> dict | None:
    """``git show ref:path`` parsed as JSON; ``None`` on any failure."""
    import subprocess

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
        ).stdout.strip()
        relative = os.path.relpath(path.resolve(), top)
        shown = subprocess.run(
            ["git", "show", f"{ref}:{relative}"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
        ).stdout
        return json.loads(shown)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# phase profiling harness — `cold profile`
# ---------------------------------------------------------------------------


def run_profile_case(
    case: BenchCase,
    sweeps: int = 5,
    warmup: int = 2,
    executor: str = "serial",
    nodes: int = 2,
    num_workers: int | None = None,
) -> dict:
    """Run ``sweeps`` instrumented sweeps and build the attribution report.

    ``executor="serial"`` profiles the fast serial kernels directly
    (``warmup`` dark sweeps first, so the report measures warmed sweeps);
    any :class:`~repro.parallel.sampler.ParallelCOLDSampler` executor
    profiles a parallel fit, with worker shard phases shipped home over
    the reply pipe and the per-sweep wall read back from a throwaway
    metrics file (which also exercises the utilization gauges).  The
    returned record embeds the report, the collapsed-stack text, and the
    utilization/memory summary — everything ``cold profile`` renders.
    """
    from .telemetry import profiler as profiling
    from .telemetry.metrics import read_jsonl
    from .telemetry.profiler import memory_gauges

    corpus = case.build_corpus()
    prof = profiling.PhaseProfiler()
    utilization = None
    if executor == "serial":
        hp = Hyperparameters.default(
            case.num_communities, case.num_topics, corpus
        )
        rng = np.random.default_rng(case.seed)
        state = CountState.initialize(
            corpus, case.num_communities, case.num_topics, rng
        )
        cache = SweepCache(state, hp)
        for _ in range(warmup):
            sweep(state, hp, rng, cache=cache)
        previous = profiling.set_profiler(prof)
        total_wall = 0.0
        try:
            for _ in range(sweeps):
                start = time.perf_counter()
                sweep(state, hp, rng, cache=cache)
                total_wall += time.perf_counter() - start
        finally:
            profiling.set_profiler(previous)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            metrics_path = Path(tmp) / "metrics.jsonl"
            previous = profiling.set_profiler(prof)
            try:
                ParallelCOLDSampler(
                    num_communities=case.num_communities,
                    num_topics=case.num_topics,
                    num_nodes=nodes,
                    executor=executor,
                    num_workers=num_workers,
                    seed=case.seed,
                    metrics_out=metrics_path,
                ).fit(corpus, num_iterations=sweeps)
            finally:
                profiling.set_profiler(previous)
            records = [
                r for r in read_jsonl(metrics_path) if r.get("kind") == "sweep"
            ]
        total_wall = sum(r["wall_seconds"] for r in records)
        if records:
            utilization = {
                "busy_fraction": round(
                    sum(r["busy_fraction"] for r in records) / len(records), 4
                ),
                "straggler_ratio": round(
                    sum(r["straggler_ratio"] for r in records) / len(records),
                    4,
                ),
            }
    report = profiling.build_profile_report(prof, total_wall, sweeps)
    return {
        "name": case.name,
        "config": asdict(case),
        "executor": executor,
        "nodes": 1 if executor == "serial" else nodes,
        "sweeps": sweeps,
        **report,
        "utilization": utilization,
        "memory": memory_gauges(include_children=executor == "processes"),
        "collapsed": profiling.render_collapsed(prof),
        **environment_stamp(),
    }


def profiler_draws_match(
    corpus: SocialCorpus, case: BenchCase, num_sweeps: int = 3
) -> bool:
    """True iff profiled and dark fits draw the identical chain.

    The profiled sweep variant is a separate code path
    (:func:`~repro.core.fastgibbs.fast_sweep_profiled`), so this is the
    strongest claim the gate makes: same weights, same RNG consumption,
    op for op.
    """
    from .telemetry import profiler as profiling

    states = []
    for enabled in (False, True):
        model = COLDModel(
            num_communities=case.num_communities,
            num_topics=case.num_topics,
            seed=case.seed + 1,
        )
        previous = profiling.set_profiler(
            profiling.PhaseProfiler() if enabled else None
        )
        try:
            model.fit(corpus, num_iterations=num_sweeps, likelihood_interval=1)
        finally:
            profiling.set_profiler(previous)
        assert model.state_ is not None
        states.append(model.state_)
    return _states_identical(*states)


def run_profiler_overhead_case(
    case: BenchCase,
    sweeps: int = 8,
    reps: int = 6,
    equivalence_sweeps: int = 3,
) -> dict:
    """Per-sweep cost of profiling on vs off; JSON-ready record.

    Same ABBA/min-floor discipline as
    :func:`run_telemetry_overhead_case`: each rep times a dark fit and a
    fit with an active :class:`~repro.telemetry.profiler.PhaseProfiler`
    (which routes sweeps through the instrumented kernel twin),
    alternating order so machine drift hits both modes equally.  The
    perf gate asserts ``overhead_fraction`` stays under 3%.
    """
    from .telemetry import profiler as profiling

    corpus = case.build_corpus()
    best = {"off": math.inf, "on": math.inf}
    for rep in range(reps):
        order = ("off", "on") if rep % 2 == 0 else ("on", "off")
        for mode in order:
            model = COLDModel(
                num_communities=case.num_communities,
                num_topics=case.num_topics,
                seed=case.seed,
            )
            previous = profiling.set_profiler(
                profiling.PhaseProfiler() if mode == "on" else None
            )
            try:
                timed = _timed_fit_min_sweep_seconds(model, corpus, sweeps)
            finally:
                profiling.set_profiler(previous)
            best[mode] = min(best[mode], timed)
    return {
        "name": case.name,
        "config": asdict(case),
        "sweeps": sweeps,
        "reps": reps,
        "off_seconds_per_sweep": round(best["off"], 5),
        "on_seconds_per_sweep": round(best["on"], 5),
        "overhead_fraction": round(best["on"] / best["off"] - 1.0, 4),
        "draws_match": profiler_draws_match(
            corpus, case, num_sweeps=equivalence_sweeps
        ),
        "peak_rss_mb": peak_rss_mb(),
    }
