"""Chaos harness for the serving layer: inject faults, assert invariants.

The same declarative discipline :mod:`repro.resilience.faults` applies to
training is applied here to the query path.  A :class:`ServingFaultPlan`
schedules faults by *(endpoint, request index)* with the FaultPlan
``times`` convention (a fault fires for a bounded number of consecutive
attempts) and tallies every injection so tests can assert on what was
actually exercised:

* :class:`SlowRequest` — delays a handler before scoring.  The delay runs
  through :meth:`~repro.serving.robustness.Deadline.sleep`, so a slow
  handler either finishes within budget or surfaces as a structured 504.
* :class:`FailRequest` — raises a raw exception inside the handler, which
  must surface as the structured ``internal`` 500 (never a default HTML
  error page or a torn connection).

:func:`run_chaos` is the driver: it fires a concurrent mix of prediction
queries at a live server while triggering hot-swap reloads mid-request —
both valid reloads and deliberately *corrupted* candidate models — then
checks the robustness contract and returns a :class:`ChaosReport`:

* every request got a structured JSON response — a result, a 504
  timeout, a 503 shed/circuit-trip, or a structured 500 (``torn == 0``,
  ``unstructured == 0``);
* no wedged threads: every client worker joined and the server's handler
  thread count returned to its baseline;
* corrupted reloads rolled back (``/readyz`` still green, generation
  unchanged by the bad candidates).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..resilience.faults import FaultError


class ChaosError(FaultError):
    """An injected serving fault (raised inside a request handler)."""


@dataclass(frozen=True)
class SlowRequest:
    """Delay ``endpoint`` by ``seconds`` starting at request ``start``.

    Applies to the endpoint's request indices ``start .. start+times-1``
    (0-based, counted per endpoint).
    """

    endpoint: str
    seconds: float
    start: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class FailRequest:
    """Raise inside ``endpoint``'s handler at request ``start`` (``times``x)."""

    endpoint: str
    start: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass
class ServingFaultPlan:
    """A schedule of serving faults, queried by (endpoint, request index)."""

    slow_requests: tuple[SlowRequest, ...] = ()
    failures: tuple[FailRequest, ...] = ()
    injected_delays: int = field(default=0, init=False)
    injected_failures: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.slow_requests = tuple(self.slow_requests)
        self.failures = tuple(self.failures)
        self._lock = threading.Lock()

    def delay_for(self, endpoint: str, index: int) -> float:
        """Total injected delay (seconds) for this request."""
        total = 0.0
        for slow in self.slow_requests:
            if (
                slow.endpoint == endpoint
                and slow.start <= index < slow.start + slow.times
            ):
                total += slow.seconds
        if total > 0:
            with self._lock:
                self.injected_delays += 1
        return total

    def should_fail(self, endpoint: str, index: int) -> bool:
        """Whether this request's handler raises an injected exception."""
        for failure in self.failures:
            if (
                failure.endpoint == endpoint
                and failure.start <= index < failure.start + failure.times
            ):
                with self._lock:
                    self.injected_failures += 1
                return True
        return False

    @property
    def total_injected(self) -> int:
        return self.injected_delays + self.injected_failures


#: Response classes the robustness contract allows (anything else is a bug).
STRUCTURED_ERRORS = {
    "deadline_exceeded",
    "shed",
    "circuit_open",
    "degenerate",
    "internal",
    "bad_request",
    "not_found",
    "draining",
    "reload_failed",
}


@dataclass
class ChaosReport:
    """What the chaos run observed; tests assert on these fields."""

    total: int = 0
    ok: int = 0
    timeout: int = 0
    shed: int = 0
    circuit_open: int = 0
    degenerate: int = 0
    internal: int = 0
    bad_request: int = 0
    other_structured: int = 0
    torn: int = 0
    unstructured: int = 0
    wedged_threads: int = 0
    reloads_ok: int = 0
    reloads_rolled_back: int = 0
    ready_after: bool = False
    generation_before: int = -1
    generation_after: int = -1

    def classify(self, status: int, payload: dict | None) -> None:
        """Tally one HTTP exchange."""
        self.total += 1
        if payload is None:
            self.torn += 1
            return
        if status == 200 and "error" not in payload:
            self.ok += 1
            return
        error = payload.get("error")
        if error not in STRUCTURED_ERRORS:
            self.unstructured += 1
            return
        if error == "deadline_exceeded":
            self.timeout += 1
        elif error == "shed":
            self.shed += 1
        elif error == "circuit_open":
            self.circuit_open += 1
        elif error == "degenerate":
            self.degenerate += 1
        elif error == "internal":
            self.internal += 1
        elif error == "bad_request":
            self.bad_request += 1
        else:
            self.other_structured += 1

    @property
    def structured_total(self) -> int:
        return self.total - self.torn - self.unstructured


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 10.0,
) -> tuple[int, dict | None]:
    """One HTTP exchange; returns ``(status, payload-or-None)``.

    ``None`` payload means a torn response: the connection died or the
    body was not valid JSON — exactly what the chaos invariants forbid.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        raw = response.read()
        try:
            parsed = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return response.status, None
        if not isinstance(parsed, dict):
            return response.status, None
        return response.status, parsed
    except OSError:
        return 0, None
    finally:
        conn.close()


def corrupt_model_copy(model_path: str | Path, out_dir: str | Path) -> Path:
    """Write a corrupted copy of a saved model (truncated estimates file).

    The returned path is a valid reload *target* whose ``.npz`` payload is
    garbage — the candidate the hot-swap validation must reject.
    """
    model_path = Path(model_path)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    target = out_dir / "corrupt-model"
    config = model_path.with_suffix(".json").read_bytes()
    target.with_suffix(".json").write_bytes(config)
    payload = model_path.with_suffix(".npz").read_bytes()
    target.with_suffix(".npz").write_bytes(payload[: max(len(payload) // 3, 16)])
    return target


def run_chaos(
    host: str,
    port: int,
    *,
    num_requests: int = 60,
    concurrency: int = 8,
    model_path: str | Path | None = None,
    corrupt_candidate: Path | None = None,
    reload_every: int = 10,
    deadline_ms: int | None = None,
    num_users: int = 10,
    vocab_size: int = 10,
    request_timeout: float = 15.0,
) -> ChaosReport:
    """Fire mixed queries at a live server while reloading it mid-request.

    ``concurrency`` client threads drain a shared queue of
    ``num_requests`` mixed retweet/link/timestamp/influential queries.
    Every ``reload_every`` requests a reload fires concurrently —
    alternating between the genuine ``model_path`` and the
    ``corrupt_candidate`` (when given) — so swaps and rollbacks happen
    under load.  Returns the :class:`ChaosReport`; the caller asserts the
    invariants.
    """
    report = ChaosReport()
    report_lock = threading.Lock()
    status, payload = _request(host, port, "GET", "/healthz")
    if status == 200 and payload is not None:
        report.generation_before = int(payload.get("generation", -1))

    def build_query(index: int) -> tuple[str, dict]:
        kind = index % 4
        source = index % num_users
        other = (index + 1) % num_users
        words = [index % vocab_size]
        if kind == 0:
            return "/predict/retweet", {
                "source": source,
                "candidates": [other, (index + 2) % num_users],
                "words": words,
            }
        if kind == 1:
            return "/predict/link", {"sources": [source], "targets": [other]}
        if kind == 2:
            return "/predict/timestamp", {"author": source, "words": words}
        return "/query/influential", {"topic": 0, "num_simulations": 20}

    indices = list(range(num_requests))
    index_lock = threading.Lock()
    reload_threads: list[threading.Thread] = []

    def fire_reload(candidate: Path | None) -> None:
        body: dict = {}
        if candidate is not None:
            body["path"] = str(candidate)
        status, payload = _request(
            host, port, "POST", "/admin/reload", body, timeout=request_timeout
        )
        with report_lock:
            if status == 200 and payload is not None and "error" not in payload:
                report.reloads_ok += 1
            elif payload is not None and payload.get("error") == "reload_failed":
                report.reloads_rolled_back += 1

    def client_worker() -> None:
        while True:
            with index_lock:
                if not indices:
                    return
                index = indices.pop(0)
            if reload_every and index and index % reload_every == 0:
                # Trigger a hot-swap mid-request-stream: even indices use
                # the genuine model, odd multiples the corrupted one.
                candidate = None
                if corrupt_candidate is not None and (index // reload_every) % 2:
                    candidate = corrupt_candidate
                elif model_path is not None:
                    candidate = Path(model_path)
                thread = threading.Thread(
                    target=fire_reload, args=(candidate,), daemon=True
                )
                thread.start()
                reload_threads.append(thread)
            path, body = build_query(index)
            if deadline_ms is not None:
                body["deadline_ms"] = deadline_ms
            status, payload = _request(
                host, port, "POST", path, body, timeout=request_timeout
            )
            with report_lock:
                report.classify(status, payload)

    baseline_threads = threading.active_count()
    workers = [
        threading.Thread(target=client_worker, daemon=True)
        for _ in range(concurrency)
    ]
    for worker in workers:
        worker.start()
    join_deadline = time.monotonic() + request_timeout * 2 + num_requests
    for worker in workers:
        worker.join(timeout=max(join_deadline - time.monotonic(), 0.1))
    for thread in reload_threads:
        thread.join(timeout=max(join_deadline - time.monotonic(), 0.1))
    report.wedged_threads = sum(
        1 for t in [*workers, *reload_threads] if t.is_alive()
    )
    # Handler threads must drain back to (roughly) the pre-chaos count;
    # give the server a moment to reap keep-alive connections.
    for _ in range(100):
        if threading.active_count() <= baseline_threads:
            break
        time.sleep(0.05)

    status, payload = _request(host, port, "GET", "/readyz")
    report.ready_after = status == 200
    status, payload = _request(host, port, "GET", "/healthz")
    if status == 200 and payload is not None:
        report.generation_after = int(payload.get("generation", -1))
    return report
