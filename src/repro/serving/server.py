"""Zero-dependency HTTP front end: deadline-aware, load-shedding, hot-swap.

:class:`ColdHTTPServer` is a stdlib ``ThreadingHTTPServer`` exposing the
:class:`~repro.serving.engine.ModelServer` query families as JSON-over-HTTP
(the ``cold serve`` CLI).  The query surface is versioned under ``/v1/``:

=========================  ======  ===============================================
``/healthz``               GET     liveness: process is up (200 even while draining)
``/readyz``                GET     readiness: model loaded, breaker closed, not draining
``/metrics``               GET     telemetry registry snapshot (QPS counters,
                                   latency histograms, cache stats)
``/v1/query/retweet``      POST    ``{"source", "candidates", "words"}`` -> scores
``/v1/query/link``         POST    ``{"sources", "targets"}`` -> scores
``/v1/query/timestamp``    POST    ``{"author", "words"}`` (or batched
                                   ``"authors"``/``"words_per_post"``)
``/v1/query/influential``  POST    ``{"topic", ...}`` -> community ranking + users
``/v1/admin/reload``       POST    ``{"path"?}`` -> validate candidate, swap or
                                   roll back
=========================  ======  ===============================================

``/v1/`` responses share one envelope: ``{"result": ..., "model_generation":
N, "api_version": "v1", "elapsed_ms": ...}`` on success, and every error
payload carries ``api_version`` too.  The pre-versioning routes
(``/predict/retweet``, ``/predict/link``, ``/predict/timestamp``,
``/query/influential``, ``/admin/reload``) remain as aliases with their
original *flat* response shape, but every legacy response carries
``Deprecation: true``, a ``Sunset`` date, and a ``Link`` header pointing
at the ``/v1/`` successor; migrate before the sunset.

Every request runs the robustness pipeline: *admission* (bounded queue;
beyond it a 503 shed with ``Retry-After``), *circuit breaker* (degenerate
scores trip it; open means fail-fast 503 and a red ``/readyz``),
*deadline* (default budget, per-request override via ``deadline_ms`` in
the body or an ``X-Deadline-Ms`` header; expiry is a structured 504), and
*typed error mapping* (bad input 400, unknown path 404, injected or
unexpected handler failures a **structured** 500 — never a default HTML
error page, never a torn connection).

Hot-swap reload (``/admin/reload`` or ``SIGHUP``) builds a candidate
engine off to the side, runs its self-check queries, and atomically swaps
the engine reference only on success; failures (missing file, corrupt
archive, degenerate scores) roll back to the serving engine with
``/readyz`` staying green.  ``SIGTERM``/``SIGINT`` begin a graceful
drain: readiness goes red, in-flight requests finish, then the listener
closes.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from ..core.estimates import EstimateError
from ..core.influence import InfluenceError
from ..core.model import ModelError
from ..core.prediction import PredictionError
from ..telemetry import trace
from ..telemetry.context import (
    new_request_id,
    reset_request_id,
    sanitize_request_id,
    set_request_id,
)
from ..telemetry.logconfig import get_logger
from ..telemetry.metrics import JsonlWriter, MetricsRegistry, bucket_preset
from ..telemetry.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from ..telemetry.slo import SLOConfig, SLOTracker
from .chaos import ChaosError, ServingFaultPlan
from .engine import ModelServer
from .robustness import (
    AdmissionGate,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    DegenerateScoreError,
    PayloadTooLarge,
    QueueFullError,
    ReloadError,
    ServingError,
)

_log = get_logger(__name__)

#: Input mistakes mapped to a structured 400 (client bugs, not ours).
_BAD_REQUEST_ERRORS = (
    PredictionError,
    InfluenceError,
    KeyError,
    TypeError,
    ValueError,
)

#: Loader failures a reload candidate may exhibit; all roll back.
_RELOAD_ERRORS = (
    ModelError,
    EstimateError,
    ServingError,
    FileNotFoundError,
    IsADirectoryError,
    PermissionError,
    OSError,
)


def _endpoint_counter(registry: MetricsRegistry, name: str, endpoint: str):
    """The per-endpoint child of a labeled request counter family."""
    return registry.counter(name, labels=("endpoint",)).labels(
        endpoint=endpoint
    )


#: breaker state -> gauge value ("half-open" is the in-between on purpose).
_BREAKER_STATES = {"closed": 0.0, "half-open": 0.5, "open": 1.0}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the serving front end (all have production defaults)."""

    host: str = "127.0.0.1"
    port: int = 8080
    deadline_ms: int = 2000
    max_inflight: int = 8
    max_waiting: int = 16
    max_wait_seconds: float = 0.5
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 5.0
    cache_size: int = 1024
    top_comm_size: int = 5
    ic_simulations: int = 100
    max_body_bytes: int = 1 << 20
    #: JSONL file for periodic registry snapshots (``cold monitor --serving``).
    metrics_out: str | Path | None = None
    metrics_interval_seconds: float = 2.0
    #: SLO objectives tracked per query request (see repro.telemetry.slo).
    slo_availability_target: float = 0.999
    slo_latency_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ServingError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.max_body_bytes <= 0:
            raise ServingError(
                f"max_body_bytes must be positive, got {self.max_body_bytes}"
            )
        if self.metrics_interval_seconds <= 0:
            raise ServingError(
                f"metrics_interval_seconds must be positive, got "
                f"{self.metrics_interval_seconds}"
            )
        if not 0.0 < self.slo_availability_target < 1.0:
            raise ServingError(
                f"slo_availability_target must be in (0, 1), got "
                f"{self.slo_availability_target}"
            )
        if self.slo_latency_ms <= 0:
            raise ServingError(
                f"slo_latency_ms must be positive, got {self.slo_latency_ms}"
            )


class _Handler(BaseHTTPRequestHandler):
    """Per-request handler; all state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: headers and body go out as separate writes, and with
    # Nagle enabled the body segment stalls behind the client's delayed
    # ACK — a flat ~40ms per request on loopback (the serving benchmark
    # is what catches this regressing).
    disable_nagle_algorithm = True
    server: "ColdHTTPServer"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)

    def handle_one_request(self) -> None:
        # Fresh exchange on a (possibly keep-alive) connection: nothing
        # has been written yet.  _internal_error consults this flag to
        # avoid emitting a second status line on the same connection.
        self._response_started = False
        self._last_status: int | None = None
        super().handle_one_request()

    def _begin_request(self):
        """Adopt the client's ``X-Request-Id`` (or mint one) for this request.

        The id lives in a contextvar for the handler's duration, so every
        log record, trace span, and breaker/deadline decision downstream
        is stamped without threading it through call signatures.  Returns
        the contextvar reset token; the caller restores it in a
        ``finally``.
        """
        request_id = (
            sanitize_request_id(self.headers.get("X-Request-Id"))
            or new_request_id()
        )
        self.request_id = request_id
        return set_request_id(request_id)

    def _send_raw(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._response_started = True
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "request_id", None)
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_raw(status, body, "application/json", headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.config.max_body_bytes:
            raise PayloadTooLarge(
                f"declared body of {length} bytes exceeds the "
                f"{self.server.config.max_body_bytes}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _payload_too_large(self, exc: PayloadTooLarge) -> None:
        """413 without reading the oversized body; the unread bytes would
        be parsed as the next request, so the connection must close."""
        self.close_connection = True
        self._send_json(
            413, {"error": "payload_too_large", "detail": str(exc)},
            headers={"Connection": "close"},
        )

    def _deadline(self, body: dict) -> Deadline:
        ms = body.get("deadline_ms")
        if ms is None:
            header = self.headers.get("X-Deadline-Ms")
            ms = int(header) if header else self.server.config.deadline_ms
        ms = int(ms)
        if ms <= 0:
            raise ValueError("deadline_ms must be positive")
        return Deadline.after(ms / 1000.0)

    # -- routing ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        token = self._begin_request()
        try:
            path, _, query = self.path.partition("?")
            if path == "/healthz":
                self._send_json(200, self.server.health_payload())
            elif path == "/readyz":
                status, payload = self.server.ready_payload()
                self._send_json(status, payload)
            elif path == "/metrics":
                if (
                    wants_prometheus(self.headers.get("Accept"))
                    or "format=prometheus" in query
                ):
                    body = self.server.metrics_exposition().encode("utf-8")
                    self._send_raw(200, body, PROMETHEUS_CONTENT_TYPE)
                else:
                    self._send_json(200, self.server.metrics_snapshot())
            else:
                self._send_json(404, {"error": "not_found", "path": self.path})
        except Exception:
            self._internal_error()
        finally:
            reset_request_id(token)

    def _route(self) -> tuple[str, dict[str, str] | None]:
        """Resolve the request path to its canonical (``/v1/``) route.

        Returns ``(canonical_path, deprecation_headers)`` —
        the headers are ``None`` for native ``/v1/`` requests.
        """
        successor = _LEGACY_ROUTES.get(self.path)
        if successor is None:
            return self.path, None
        self.server.registry.counter("serving_legacy_requests_total").inc()
        return successor, _deprecation_headers(successor)

    def _finish(
        self,
        status: int,
        payload: dict,
        deprecation: dict[str, str] | None,
        headers: dict[str, str] | None = None,
    ) -> None:
        """Send a payload in the route's dialect.

        ``/v1/`` responses are stamped with ``api_version``; legacy
        responses keep their flat pre-versioning shape but carry the
        deprecation headers.  Both dialects carry the same top-level
        ``request_id`` field (the one envelope key that is uniform across
        shapes — correlate a response with its logs and trace by it).
        """
        request_id = getattr(self, "request_id", None)
        if deprecation is None:
            payload = {**payload, "api_version": "v1"}
            merged = headers
        else:
            payload = dict(payload)
            merged = {**deprecation, **(headers or {})}
        if request_id is not None:
            payload.setdefault("request_id", request_id)
        self._send_json(status, payload, headers=merged)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        token = self._begin_request()
        started = time.perf_counter()
        try:
            with trace.span(
                "http_request", method="POST", path=self.path
            ):
                self._handle_post()
        finally:
            _log.info(
                "POST %s -> %s (%.1f ms)",
                self.path,
                self._last_status,
                (time.perf_counter() - started) * 1e3,
            )
            reset_request_id(token)

    def _handle_post(self) -> None:
        server = self.server
        endpoint, deprecation = self._route()
        if endpoint == _RELOAD_ROUTE:
            self._handle_reload(deprecation)
            return
        method = server.query_methods().get(endpoint)
        if method is None:
            self._send_json(404, {"error": "not_found", "path": self.path})
            return
        metrics = server.registry
        label = method.__name__
        _endpoint_counter(metrics, "serving_requests_total", label).inc()
        index = server.next_request_index(label)
        try:
            with trace.span("parse", endpoint=label):
                body = self._read_body()
                deadline = self._deadline(body)
        except PayloadTooLarge as exc:
            _endpoint_counter(metrics, "serving_bad_requests_total", label).inc()
            self._payload_too_large(exc)
            return
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError, TypeError) as exc:
            _endpoint_counter(metrics, "serving_bad_requests_total", label).inc()
            self._finish(
                400, {"error": "bad_request", "detail": str(exc)}, deprecation
            )
            return
        # A half-open probe must always report back: any exit that is not
        # record_success/record_failure releases the probe slot in the
        # ``finally`` below, otherwise a probe shed by the gate (or ended
        # by a deadline, bad input, or an unexpected error) would leave
        # the slot taken forever and wedge the server in fail-fast 503s.
        # Error paths release *before* writing the response: the moment
        # the client reads the error it may retry, and that retry must be
        # able to claim the probe slot.
        is_probe = False
        probe_resolved = False

        def release_probe() -> None:
            nonlocal probe_resolved
            if is_probe and not probe_resolved:
                server.breaker.abort_probe()
                probe_resolved = True

        try:
            if server.draining:
                raise QueueFullError("server is draining", retry_after=5.0)
            with trace.span("admission", endpoint=label):
                is_probe = server.breaker.guard()
                server.gate.acquire(deadline)
            try:
                self._inject_chaos(label, index, deadline)
                start = server.clock()
                # Grab the engine reference once: a concurrent hot-swap
                # never changes the model under a request's feet.
                engine = server.engine
                with trace.span("engine", endpoint=label):
                    result = method(engine, body, deadline)
                elapsed = server.clock() - start
            finally:
                server.gate.release()
            server.breaker.record_success()
            probe_resolved = True
            _endpoint_counter(metrics, "serving_responses_total", label).inc()
            metrics.histogram(
                "serving_latency_seconds",
                buckets=bucket_preset("serving_latency"),
                labels=("endpoint",),
            ).labels(endpoint=label).observe(elapsed)
            server.slo.record(True, elapsed)
            elapsed_ms = round(elapsed * 1e3, 3)
            with trace.span("respond", endpoint=label, status=200):
                if deprecation is None:
                    self._finish(
                        200,
                        {
                            "result": result,
                            "model_generation": server.generation,
                            "elapsed_ms": elapsed_ms,
                        },
                        deprecation,
                    )
                else:
                    result["generation"] = server.generation
                    result["elapsed_ms"] = elapsed_ms
                    self._finish(200, result, deprecation)
        except DeadlineExceededResponse as response:
            _endpoint_counter(metrics, "serving_timeouts_total", label).inc()
            server.slo.record(False)
            release_probe()
            self._finish(504, response.payload, deprecation)
        except QueueFullError as exc:
            metrics.counter("serving_shed_total").inc()
            server.slo.record(False)
            release_probe()
            self._finish(
                503,
                {"error": "shed", "detail": str(exc),
                 "retry_after_seconds": exc.retry_after},
                deprecation,
                headers={"Retry-After": f"{max(int(exc.retry_after), 1)}"},
            )
        except CircuitOpenError as exc:
            metrics.counter("serving_circuit_rejections_total").inc()
            server.slo.record(False)
            self._finish(
                503, {"error": "circuit_open", "detail": str(exc)}, deprecation
            )
        except DegenerateScoreError as exc:
            server.breaker.record_failure()
            probe_resolved = True
            metrics.counter("serving_degenerate_total").inc()
            server.slo.record(False)
            self._finish(
                503, {"error": "degenerate", "detail": str(exc)}, deprecation
            )
        except _BAD_REQUEST_ERRORS as exc:
            _endpoint_counter(metrics, "serving_bad_requests_total", label).inc()
            release_probe()
            self._finish(
                400,
                {"error": "bad_request", "detail": f"{type(exc).__name__}: {exc}"},
                deprecation,
            )
        except Exception:
            server.slo.record(False)
            release_probe()
            self._internal_error()
        finally:
            release_probe()

    # -- helpers ---------------------------------------------------------------

    def _inject_chaos(self, label: str, index: int, deadline: Deadline) -> None:
        """Apply the fault plan: deadline-honouring delays, then failures."""
        plan = self.server.chaos
        if plan is None:
            return
        delay = plan.delay_for(label, index)
        if delay > 0:
            try:
                deadline.sleep(delay, stage=f"injected {label} delay")
            except ServingError as exc:
                raise DeadlineExceededResponse(
                    {"error": "deadline_exceeded", "detail": str(exc)}
                ) from exc
        if plan.should_fail(label, index):
            raise ChaosError(f"injected failure in {label} request {index}")

    def _handle_reload(self, deprecation: dict[str, str] | None) -> None:
        try:
            body = self._read_body()
        except PayloadTooLarge as exc:
            self._payload_too_large(exc)
            return
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            self._finish(
                400, {"error": "bad_request", "detail": str(exc)}, deprecation
            )
            return
        path = body.get("path")
        try:
            with trace.span("reload", path=str(path)):
                generation = self.server.reload(path)
        except ReloadError as exc:
            self._finish(
                409,
                {"error": "reload_failed", "detail": str(exc),
                 "generation": self.server.generation},
                deprecation,
            )
        except Exception:
            self._internal_error()
        else:
            if deprecation is None:
                self._finish(
                    200,
                    {"result": {"status": "reloaded"},
                     "model_generation": generation},
                    deprecation,
                )
            else:
                self._finish(
                    200,
                    {"status": "reloaded", "generation": generation},
                    deprecation,
                )

    def _internal_error(self) -> None:
        """Last-resort structured 500 — the 'no unstructured 500s' guarantee."""
        _log.exception("unhandled error serving %s", self.path)
        self.server.registry.counter("serving_internal_errors_total").inc()
        if getattr(self, "_response_started", False):
            # A response (possibly partial — e.g. wfile.write failed
            # mid-body) already went out on this connection.  A second
            # status line would corrupt HTTP/1.1 framing for the next
            # pipelined request, so drop the connection instead.
            self.close_connection = True
            return
        try:
            self._send_json(500, {"error": "internal"})
        except OSError:  # pragma: no cover - client already gone
            self.close_connection = True


class DeadlineExceededResponse(Exception):
    """Internal control flow: carry a prepared 504 payload to the sender."""

    def __init__(self, payload: dict) -> None:
        super().__init__(payload.get("detail", "deadline exceeded"))
        self.payload = payload


def _as_timeout_response(fn):
    """Convert engine DeadlineExceeded into the prepared 504 payload."""

    def wrapped(engine: ModelServer, body: dict, deadline: Deadline) -> dict:
        try:
            return fn(engine, body, deadline)
        except DeadlineExceeded as exc:
            raise DeadlineExceededResponse(
                {"error": "deadline_exceeded", "detail": str(exc)}
            ) from exc

    wrapped.__name__ = fn.__name__
    return wrapped


# -- query adapters (body dict -> engine call -> JSON-ready dict) --------------


@_as_timeout_response
def retweet(engine: ModelServer, body: dict, deadline: Deadline) -> dict:
    scores = engine.retweet(
        int(body["source"]),
        list(body["candidates"]),
        list(body["words"]),
        deadline=deadline,
    )
    return {"scores": [round(float(s), 9) for s in scores]}


@_as_timeout_response
def link(engine: ModelServer, body: dict, deadline: Deadline) -> dict:
    sources = body["sources"] if "sources" in body else body["source"]
    targets = body["targets"] if "targets" in body else body["target"]
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
    if sources.size == 1 and targets.size > 1:
        sources = np.repeat(sources, targets.size)
    if targets.size == 1 and sources.size > 1:
        targets = np.repeat(targets, sources.size)
    scores = engine.link(sources, targets, deadline=deadline)
    return {"scores": [round(float(s), 9) for s in scores]}


@_as_timeout_response
def timestamp(engine: ModelServer, body: dict, deadline: Deadline) -> dict:
    if "authors" in body:
        authors = list(body["authors"])
        words_per_post = [list(words) for words in body["words_per_post"]]
    else:
        authors = [int(body["author"])]
        words_per_post = [list(body["words"])]
    slices, confidences = engine.timestamp(authors, words_per_post, deadline=deadline)
    return {
        "slices": [int(s) for s in slices],
        "confidences": [
            [round(float(p), 6) for p in row] for row in confidences
        ],
    }


@_as_timeout_response
def influential(engine: ModelServer, body: dict, deadline: Deadline) -> dict:
    return engine.influential(
        int(body["topic"]),
        size=int(body.get("size", 4)),
        top_users=int(body.get("top_users", 10)),
        num_simulations=(
            None
            if body.get("num_simulations") is None
            else int(body["num_simulations"])
        ),
        deadline=deadline,
    )


#: Canonical (versioned) query routes.
_QUERY_METHODS = {
    "/v1/query/retweet": retweet,
    "/v1/query/link": link,
    "/v1/query/timestamp": timestamp,
    "/v1/query/influential": influential,
}

#: The versioned admin route (canonical; ``/admin/reload`` aliases it).
_RELOAD_ROUTE = "/v1/admin/reload"

#: Pre-versioning aliases -> their ``/v1/`` successors.  Legacy responses
#: keep the original flat payload shape (no envelope) so old clients
#: parse unchanged, but always carry the deprecation headers below.
_LEGACY_ROUTES = {
    "/predict/retweet": "/v1/query/retweet",
    "/predict/link": "/v1/query/link",
    "/predict/timestamp": "/v1/query/timestamp",
    "/query/influential": "/v1/query/influential",
    "/admin/reload": _RELOAD_ROUTE,
}

#: RFC 8594 sunset date announced on every legacy response.
_SUNSET = "Mon, 01 Mar 2027 00:00:00 GMT"


def _deprecation_headers(successor: str) -> dict[str, str]:
    """The RFC 8594-style headers every legacy-route response carries."""
    return {
        "Deprecation": "true",
        "Sunset": _SUNSET,
        "Link": f'<{successor}>; rel="successor-version"',
    }


class ColdHTTPServer(ThreadingHTTPServer):
    """The serving front end; see the module docstring for the contract."""

    # Join handler threads on server_close so a drain is genuinely graceful.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        config: ServerConfig,
        engine: ModelServer | None = None,
        model_path: str | Path | None = None,
        chaos: ServingFaultPlan | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if engine is None:
            if model_path is None:
                raise ServingError("need an engine or a model_path to serve")
            engine = self._build_engine(model_path, config)
        self.config = config
        self.engine = engine
        self.model_path = None if model_path is None else Path(model_path)
        self.generation = 1
        self.chaos = chaos
        self.registry = registry if registry is not None else MetricsRegistry()
        self.gate = AdmissionGate(
            max_inflight=config.max_inflight,
            max_waiting=config.max_waiting,
            max_wait_seconds=config.max_wait_seconds,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_seconds=config.breaker_cooldown_seconds,
        )
        self.draining = False
        self._reload_lock = threading.Lock()
        self._request_indices: dict[str, int] = {}
        self._index_lock = threading.Lock()
        self._drain_thread: threading.Thread | None = None
        self.clock = time.perf_counter
        self.slo = SLOTracker(
            SLOConfig(
                availability_target=config.slo_availability_target,
                latency_threshold_seconds=config.slo_latency_ms / 1000.0,
            )
        )
        #: Lineage of the last *published* model observed by a watcher
        #: (trainer generation, publish wall-clock, event high-watermark).
        self._freshness: dict = {}
        self._freshness_lock = threading.Lock()
        self._metrics_writer: JsonlWriter | None = None
        self._snapshot_stop = threading.Event()
        self._snapshot_thread: threading.Thread | None = None
        super().__init__((config.host, config.port), _Handler)
        if config.metrics_out is not None:
            self._metrics_writer = JsonlWriter(config.metrics_out)
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop,
                name="cold-serving-metrics",
                daemon=True,
            )
            self._snapshot_thread.start()

    @staticmethod
    def _build_engine(path: str | Path, config: ServerConfig) -> ModelServer:
        return ModelServer.from_path(
            path,
            top_comm_size=config.top_comm_size,
            cache_size=config.cache_size,
            ic_simulations=config.ic_simulations,
        )

    # -- handler support -------------------------------------------------------

    def query_methods(self) -> dict:
        return _QUERY_METHODS

    def next_request_index(self, endpoint: str) -> int:
        """Per-endpoint request sequence number (drives the fault plan)."""
        with self._index_lock:
            index = self._request_indices.get(endpoint, 0)
            self._request_indices[endpoint] = index + 1
            return index

    def health_payload(self) -> dict:
        payload = {
            "status": "ok",
            "generation": self.generation,
            "draining": self.draining,
            "breaker": self.breaker.state,
            "inflight": self.gate.inflight,
        }
        payload.update(self.engine.describe())
        return payload

    def ready_payload(self) -> tuple[int, dict]:
        if self.draining:
            return 503, {"error": "draining", "status": "draining"}
        state = self.breaker.state
        if state == "open":
            return 503, {"error": "circuit_open", "status": "not_ready",
                         "breaker": state}
        if state == "half-open":
            # Still 200 — routing all traffic away would starve the probe
            # that closes the breaker — but flagged degraded so
            # orchestrators can prefer fully-ready replicas.
            return 200, {"status": "degraded", "degraded": True,
                         "generation": self.generation, "breaker": state,
                         "slo": self.slo.summary()}
        return 200, {"status": "ready", "generation": self.generation,
                     "breaker": state, "slo": self.slo.summary()}

    # -- observability ---------------------------------------------------------

    def record_publish_freshness(
        self,
        *,
        generation: int | None = None,
        published_at: float | None = None,
        event_high_watermark: float | None = None,
        updates: int | None = None,
    ) -> None:
        """Adopt a published manifest's freshness block after a hot-swap.

        Called by :class:`~repro.streaming.watcher.ModelWatcher` once the
        reload succeeded.  ``event_to_servable_seconds`` — the headline
        end-to-end lag from an event's ingest wall-clock to the moment a
        model containing it answers queries — is fixed here, at swap
        time; ``model_staleness_seconds`` keeps growing from
        ``published_at`` until the next publish lands.
        """
        now = time.time()
        with self._freshness_lock:
            self._freshness = {
                "trainer_generation": generation,
                "published_at": published_at,
                "event_high_watermark": event_high_watermark,
                "updates": updates,
                "swapped_at": now,
            }
        registry = self.registry
        if generation is not None:
            registry.gauge("model_trainer_generation").set(generation)
        if updates is not None:
            registry.gauge("model_updates_applied").set(updates)
        if published_at is not None:
            registry.gauge("publish_to_servable_seconds").set(
                max(now - published_at, 0.0)
            )
        if event_high_watermark is not None:
            registry.gauge("event_to_servable_seconds").set(
                max(now - event_high_watermark, 0.0)
            )

    def freshness(self) -> dict:
        with self._freshness_lock:
            return dict(self._freshness)

    def _refresh_gauges(self) -> None:
        """Point-in-time gauges computed at scrape/snapshot time."""
        registry = self.registry
        registry.gauge("serving_inflight").set(self.gate.inflight)
        registry.gauge("serving_draining").set(1.0 if self.draining else 0.0)
        registry.gauge("serving_breaker_state").set(
            _BREAKER_STATES.get(self.breaker.state, -1.0)
        )
        registry.gauge("model_generation").set(self.generation)
        fresh = self.freshness()
        published_at = fresh.get("published_at")
        if published_at is not None:
            registry.gauge("model_staleness_seconds").set(
                max(time.time() - published_at, 0.0)
            )
        self.slo.export_gauges(registry)

    def metrics_snapshot(self) -> dict:
        """The JSON ``/metrics`` body: registry snapshot + SLO + freshness."""
        self._refresh_gauges()
        snapshot = self.registry.snapshot()
        snapshot["slo"] = self.slo.snapshot()
        snapshot["freshness"] = self.freshness()
        return snapshot

    def metrics_exposition(self) -> str:
        """The Prometheus text ``/metrics`` body (content-negotiated)."""
        self._refresh_gauges()
        return render_prometheus(self.registry)

    def _write_snapshot(self, kind: str) -> None:
        writer = self._metrics_writer
        if writer is None:
            return
        snapshot = self.metrics_snapshot()
        writer.write(
            kind,
            breaker=self.breaker.state,
            draining=self.draining,
            generation=self.generation,
            **snapshot,
        )

    def _snapshot_loop(self) -> None:
        while not self._snapshot_stop.wait(self.config.metrics_interval_seconds):
            try:
                self._write_snapshot("serving")
            except Exception:  # pragma: no cover - snapshots must not kill serving
                _log.exception("serving metrics snapshot failed")

    # -- hot-swap reload -------------------------------------------------------

    def reload(self, path: str | Path | None = None) -> int:
        """Validate a candidate model and atomically swap it in.

        Returns the new generation on success.  On any failure —
        unreadable file, corrupt archive, shape mismatch, degenerate
        self-check scores — raises :class:`ReloadError` and the serving
        engine keeps answering (rollback is simply *not swapping*).
        Reloads serialise on a lock; requests never take it (they read the
        ``engine`` attribute once, which Python guarantees is atomic).
        """
        with self._reload_lock:
            target = Path(path) if path is not None else self.model_path
            if target is None:
                raise ReloadError("no model path to reload from")
            self.registry.counter("serving_reload_attempts_total").inc()
            try:
                candidate = self._build_engine(target, self.config)
                checks = candidate.self_check()
            except _RELOAD_ERRORS as exc:
                self.registry.counter("serving_reload_failures_total").inc()
                _log.warning("reload of %s rolled back: %s", target, exc)
                raise ReloadError(
                    f"candidate model {target} rejected "
                    f"({type(exc).__name__}: {exc}); "
                    f"kept serving generation {self.generation}"
                ) from exc
            self.engine = candidate
            self.generation += 1
            if path is not None:
                self.model_path = target
            self.breaker.reset()
            self.registry.counter("serving_reloads_total").inc()
            _log.info(
                "hot-swapped model from %s (generation %d, self-check %s)",
                target,
                self.generation,
                checks,
            )
            return self.generation

    # -- lifecycle -------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop accepting, finish in-flight work, then shut down (async)."""
        if self.draining:
            return
        self.draining = True
        # shutdown() blocks until serve_forever exits, so it cannot run on
        # the serving thread (or inside a signal handler) — hand it off.
        self._drain_thread = threading.Thread(target=self.shutdown, daemon=True)
        self._drain_thread.start()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain; SIGHUP -> hot-swap reload.

        Only callable from the main thread (signal API restriction); the
        CLI uses it, tests drive :meth:`begin_drain`/:meth:`reload`
        directly.
        """

        def drain(signum, frame) -> None:
            _log.info("signal %d: draining", signum)
            self.begin_drain()

        def reload_handler(signum, frame) -> None:
            def try_reload() -> None:
                try:
                    self.reload()
                except ReloadError as exc:
                    _log.warning("SIGHUP reload failed: %s", exc)

            threading.Thread(target=try_reload, daemon=True).start()

        signal.signal(signal.SIGTERM, drain)
        signal.signal(signal.SIGINT, drain)
        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, reload_handler)

    def server_close(self) -> None:
        """Close the listener, then flush the metrics stream terminally."""
        super().server_close()
        if self._snapshot_thread is not None:
            self._snapshot_stop.set()
            self._snapshot_thread.join(timeout=5)
            self._snapshot_thread = None
        if self._metrics_writer is not None:
            try:
                self._write_snapshot("serving")
                self._metrics_writer.write("serving_end")
            finally:
                self._metrics_writer.close()
                self._metrics_writer = None

    def serve_until_shutdown(self) -> None:
        """``serve_forever`` + graceful close (joins in-flight handlers)."""
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()
            if self._drain_thread is not None:
                self._drain_thread.join(timeout=5)
