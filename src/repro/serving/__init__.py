"""Resilient prediction serving: the query side of the reproduction.

Training extracts community-level diffusion patterns; this package serves
them.  The paper's §5.2 motivates the split — offline precomputation plus
a cheap online scoring path — and this package wraps that online path in
production discipline:

* :mod:`~repro.serving.engine` — :class:`ModelServer`, the in-process
  query engine: a saved model loaded into contiguous precomputed tensors,
  batched vectorised scoring for the four query families (retweet, link,
  timestamp, influential communities), LRU caches for hot users and hot
  topics, and degenerate-score guards;
* :mod:`~repro.serving.robustness` — the per-request discipline:
  cooperative :class:`Deadline` budgets, the bounded :class:`AdmissionGate`
  (load shedding), a :class:`CircuitBreaker`, and the :class:`LRUCache`;
* :mod:`~repro.serving.server` — the zero-dependency HTTP front end
  behind ``cold serve``: JSON endpoints, health/readiness probes, atomic
  hot-swap reload with self-check validation and rollback, graceful
  drain on SIGTERM;
* :mod:`~repro.serving.chaos` — the chaos harness: a declarative
  :class:`ServingFaultPlan` injecting slow handlers and in-handler
  failures while reloads (valid and corrupt) race live traffic, plus the
  invariant checks (no torn responses, no unstructured 500s, no wedged
  threads).
"""

from .chaos import (
    ChaosError,
    ChaosReport,
    FailRequest,
    ServingFaultPlan,
    SlowRequest,
    corrupt_model_copy,
    run_chaos,
)
from .engine import ModelServer
from .robustness import (
    AdmissionGate,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    DegenerateScoreError,
    LRUCache,
    PayloadTooLarge,
    QueueFullError,
    ReloadError,
    ServingError,
)
from .server import ColdHTTPServer, ServerConfig

__all__ = [
    "AdmissionGate",
    "ChaosError",
    "ChaosReport",
    "CircuitBreaker",
    "CircuitOpenError",
    "ColdHTTPServer",
    "Deadline",
    "DeadlineExceeded",
    "DegenerateScoreError",
    "FailRequest",
    "LRUCache",
    "ModelServer",
    "PayloadTooLarge",
    "QueueFullError",
    "ReloadError",
    "ServerConfig",
    "ServingError",
    "ServingFaultPlan",
    "SlowRequest",
    "corrupt_model_copy",
    "run_chaos",
]
