"""The in-process model server: precomputed tensors + batched scoring.

:class:`ModelServer` loads a saved COLD model into contiguous precomputed
estimate tensors (pi/theta/phi/psi/eta plus the derived zeta), and answers
the paper's four query families through the vectorised kernels of
:mod:`repro.core.prediction` and :mod:`repro.core.influence`:

* **retweet** — Eq. (5)-(7) diffusion scores of one post against a batch
  of candidate retweeters (:meth:`ModelServer.retweet`);
* **link** — ``P(i -> i')`` for batched user pairs (:meth:`ModelServer.link`);
* **timestamp** — maximum-likelihood time slice of a batch of unseen
  posts (:meth:`ModelServer.timestamp`);
* **influential** — per-topic community influence degrees and the top
  users, via Independent Cascade (:meth:`ModelServer.influential`).

Two bounded LRU caches keep hot entities cheap: the per-source zeta fold
(the expensive half of a retweet query — hot *users*) and the per-topic
Monte-Carlo community influence (hot *communities*).  Every public result
passes a NaN/degenerate guard (:meth:`_guard`) so a numerically broken
model raises :class:`~repro.serving.robustness.DegenerateScoreError` —
which the HTTP layer converts into a circuit-breaker trip — instead of
emitting garbage scores.

The engine is immutable after construction (caches aside), which is what
makes the HTTP layer's hot-swap reload safe: in-flight requests keep
scoring against the engine reference they grabbed at admission while the
swap installs a new one.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from ..core.estimates import ParameterEstimates
from ..core.influence import (
    CommunityInfluence,
    community_influence,
    top_influential_users,
)
from ..core.model import COLDModel
from ..core.prediction import (
    DiffusionPredictor,
    PredictionError,
    batch_timestamp_scores,
    link_probability,
)
from ..telemetry import trace
from .robustness import Deadline, DegenerateScoreError, LRUCache, ServingError


class ModelServer:
    """Precomputed, cache-accelerated query engine over a fitted model.

    Parameters
    ----------
    estimates:
        Fitted parameter estimates; copied into C-contiguous float64
        tensors at construction (one-time cost) so every query runs on
        cache-friendly memory.
    top_comm_size:
        ``|TopComm|`` truncation of the two-stage diffusion method.
    cache_size:
        Max entries of the hot-user fold cache (0 disables caching).
    influence_cache_size:
        Max entries of the per-topic influence cache.
    ic_simulations:
        Monte-Carlo realisations per influential-community query.
    seed:
        Seed of the IC simulations (queries are deterministic given it).
    """

    def __init__(
        self,
        estimates: ParameterEstimates,
        top_comm_size: int = 5,
        cache_size: int = 1024,
        influence_cache_size: int = 64,
        ic_simulations: int = 100,
        seed: int = 0,
    ) -> None:
        # np.array with copy=True (not ascontiguousarray, which aliases
        # already-contiguous inputs): the engine must own its tensors so a
        # caller-side mutation can never corrupt a serving model.
        def owned(tensor: np.ndarray) -> np.ndarray:
            return np.array(tensor, dtype=np.float64, order="C", copy=True)

        contiguous = ParameterEstimates(
            pi=owned(estimates.pi),
            theta=owned(estimates.theta),
            phi=owned(estimates.phi),
            psi=owned(estimates.psi),
            eta=owned(estimates.eta),
        )
        contiguous.validate()
        self.estimates = contiguous
        self.ic_simulations = ic_simulations
        self.seed = seed
        self._predictor = DiffusionPredictor(contiguous, top_comm_size)
        self._fold_cache = LRUCache(cache_size)
        self._influence_cache = LRUCache(influence_cache_size)
        self._influence_lock = threading.Lock()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_path(cls, path: str | Path, **kwargs) -> "ModelServer":
        """Build an engine from a model saved by ``COLDModel.save``.

        Raises the loader's typed errors (``ModelError``,
        ``EstimateError``, ``FileNotFoundError``) on corrupt or missing
        artefacts — the reload path catches these and rolls back.
        """
        model = COLDModel.load(path)
        assert model.estimates_ is not None
        return cls(model.estimates_, **kwargs)

    def describe(self) -> dict:
        """Model dimensions and cache statistics (the ``/healthz`` payload)."""
        est = self.estimates
        return {
            "num_users": est.num_users,
            "num_communities": est.num_communities,
            "num_topics": est.num_topics,
            "num_time_slices": est.num_time_slices,
            "vocab_size": est.vocab_size,
            "fold_cache": self._fold_cache.stats(),
            "influence_cache": self._influence_cache.stats(),
        }

    # -- degenerate-score guard ------------------------------------------------

    @staticmethod
    def _guard(
        name: str,
        values: np.ndarray,
        lower: float | None = None,
        upper: float | None = None,
    ) -> np.ndarray:
        """Reject NaN/inf (and out-of-range, when bounded) results."""
        values = np.asarray(values, dtype=np.float64)
        if not np.isfinite(values).all():
            raise DegenerateScoreError(f"{name} produced non-finite scores")
        if lower is not None and values.size and values.min() < lower:
            raise DegenerateScoreError(f"{name} produced scores below {lower}")
        if upper is not None and values.size and values.max() > upper:
            raise DegenerateScoreError(f"{name} produced scores above {upper}")
        return values

    # -- query families --------------------------------------------------------

    def retweet(
        self,
        source: int,
        candidates: list[int],
        words: list[int],
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """Diffusion probabilities of ``source``'s post for each candidate."""
        if deadline is not None:
            deadline.check("retweet admission")
        if not words:
            raise PredictionError("post must contain at least one word")
        words = self._validate_words(words)
        fold = self._fold_cache.get(source)
        if fold is None:
            with trace.span("fold_build", source=int(source)):
                fold = self._predictor.source_fold(int(source))
            self._fold_cache.put(source, fold)
        if deadline is not None:
            deadline.check("retweet scoring")
        with trace.span(
            "score_retweet", source=int(source), candidates=len(candidates)
        ):
            scores = self._predictor.score_candidates(
                int(source), candidates, words, source_fold=fold
            )
        return self._guard("retweet", scores, lower=0.0, upper=1.0 + 1e-9)

    def link(
        self,
        sources: list[int] | np.ndarray,
        targets: list[int] | np.ndarray,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """``P(i -> i')`` for equal-length source/target index batches."""
        if deadline is not None:
            deadline.check("link admission")
        sources = self._validate_users(sources, "sources")
        targets = self._validate_users(targets, "targets")
        with trace.span("score_link", pairs=int(sources.size)):
            scores = link_probability(self.estimates, sources, targets)
        return self._guard("link", scores, lower=0.0, upper=1.0 + 1e-9)

    def timestamp(
        self,
        authors: list[int],
        words_per_post: list[list[int]],
        deadline: Deadline | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """ML time slices for a batch of posts; returns ``(slices, scores)``.

        ``scores`` rows are normalised to sum to 1 so clients can read
        them as per-slice confidences.
        """
        if deadline is not None:
            deadline.check("timestamp admission")
        for words in words_per_post:
            self._validate_words(words)
        with trace.span("score_timestamp", posts=len(authors)):
            scores = batch_timestamp_scores(
                self.estimates, authors, words_per_post
            )
        scores = self._guard("timestamp", scores, lower=0.0)
        totals = scores.sum(axis=1, keepdims=True)
        if scores.size and totals.min() <= 0:
            raise DegenerateScoreError("timestamp produced an all-zero row")
        return scores.argmax(axis=1), scores / np.maximum(totals, 1e-300)

    def influential(
        self,
        topic: int,
        size: int = 4,
        top_users: int = 10,
        num_simulations: int | None = None,
        deadline: Deadline | None = None,
    ) -> dict:
        """Influential communities (and users) for ``topic``, cached.

        The Monte-Carlo community influence is the expensive part; it is
        computed once per ``(topic, num_simulations)`` and cached, so a
        hot topic answers from one matrix-vector product.
        """
        if deadline is not None:
            deadline.check("influential admission")
        if not 0 <= topic < self.estimates.num_topics:
            raise PredictionError(f"topic {topic} out of range")
        sims = self.ic_simulations if num_simulations is None else num_simulations
        if sims <= 0:
            raise PredictionError("num_simulations must be positive")
        key = (int(topic), int(sims))
        influence = self._influence_cache.get(key)
        cached = influence is not None
        if not cached:
            # One topic's Monte-Carlo runs at a time: concurrent cold
            # queries for the same topic would duplicate the work.
            with self._influence_lock:
                influence = self._influence_cache.get(key)
                cached = influence is not None
                if not cached:
                    with trace.span(
                        "influence_mc", topic=int(topic), simulations=int(sims)
                    ):
                        influence = community_influence(
                            self.estimates,
                            topic,
                            num_simulations=sims,
                            seed=self.seed,
                        )
                    self._guard("influential", influence.degree, lower=0.0)
                    self._influence_cache.put(key, influence)
        assert isinstance(influence, CommunityInfluence)
        if deadline is not None:
            deadline.check("influential ranking")
        users, user_scores = top_influential_users(
            self.estimates, influence, size=max(top_users, 1)
        )
        self._guard("influential users", user_scores)
        return {
            "topic": int(topic),
            "num_simulations": int(sims),
            "communities": influence.top(min(size, self.estimates.num_communities)),
            "degree": [round(float(d), 6) for d in influence.degree],
            "top_users": [int(u) for u in users[:top_users]],
            "user_scores": [round(float(s), 6) for s in user_scores[:top_users]],
            "cached": cached,
        }

    # -- validation ------------------------------------------------------------

    def _validate_words(self, words: list[int]) -> list[int]:
        if not words:
            raise PredictionError("post must contain at least one word")
        arr = np.asarray(words, dtype=np.int64)
        if arr.ndim != 1:
            raise PredictionError("words must be a flat id list")
        if arr.min() < 0 or arr.max() >= self.estimates.vocab_size:
            raise PredictionError(
                f"word id out of range [0, {self.estimates.vocab_size})"
            )
        return [int(w) for w in arr]

    def _validate_users(self, users, label: str) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(users, dtype=np.int64))
        if arr.size and (arr.min() < 0 or arr.max() >= self.estimates.num_users):
            raise PredictionError(
                f"{label} index out of range [0, {self.estimates.num_users})"
            )
        return arr

    # -- readiness -------------------------------------------------------------

    def self_check(self) -> dict:
        """Score one query of each family and validate the results.

        The hot-swap reload runs this against a candidate engine before
        swapping it in; any degenerate score or kernel failure raises and
        the previous model keeps serving.  Cheap by construction (a few
        milliseconds: IC runs with 10 simulations).
        """
        users = self.estimates.num_users
        if users < 2:
            raise ServingError("model must cover at least two users to serve")
        words = [0]
        retweet = self.retweet(0, [1], words)
        link = self.link([0], [1])
        slices, _scores = self.timestamp([0], [words])
        influential = self.influential(
            0, size=1, top_users=1, num_simulations=min(10, self.ic_simulations)
        )
        return {
            "retweet": float(retweet[0]),
            "link": float(link[0]),
            "timestamp": int(slices[0]),
            "influential_top": influential["communities"][0],
        }
